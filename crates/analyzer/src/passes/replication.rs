//! TA009 — replication misconfiguration.
//!
//! The runtime acknowledges a write only once a quorum of replicas holds
//! it durably, and lets a replica serve reads only within a declared
//! staleness bound (otherwise it fails closed with `StaleReplica`
//! denials). Both rules are only as good as the declared topology: a
//! quorum the replica set cannot reach stalls every commit, a quorum that
//! is not a majority lets two disjoint quorums acknowledge divergent
//! histories (split brain), and a staleness bound without any replica set
//! is dead configuration that suggests the operator believes reads are
//! replicated when they are not. Pure global configuration: the pass owns
//! only [`UnitId::Global`].

use super::Pass;
use crate::diag::{Diagnostic, LintCode, Severity};
use crate::engine::{Context, UnitId};

pub(crate) struct Replication;

impl Pass for Replication {
    fn code(&self) -> LintCode {
        LintCode::ReplicationMisconfigured
    }

    fn owners(&self, _cx: &Context<'_>) -> Vec<UnitId> {
        vec![UnitId::Global]
    }

    fn may_interact(&self, _cx: &Context<'_>, _owner: UnitId, _changed: UnitId) -> bool {
        false
    }

    fn check(&self, cx: &Context<'_>, _owner: UnitId) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let Some(spec) = &cx.corpus.replication else {
            return out;
        };
        let n = spec.replicas.len();
        if spec.staleness_bound_secs.is_some() && n == 0 {
            out.push(Diagnostic::new(
                LintCode::ReplicationMisconfigured,
                Severity::Warning,
                "/replication/staleness_bound_secs",
                "staleness bound declared but the replica set is empty: no \
                 replica exists to serve bounded-staleness reads",
            ));
        }
        if n < spec.quorum {
            out.push(Diagnostic::new(
                LintCode::ReplicationMisconfigured,
                Severity::Error,
                "/replication/replicas",
                format!(
                    "replica set of {n} cannot reach the declared commit \
                     quorum of {}: every write stalls unacknowledged",
                    spec.quorum
                ),
            ));
        } else if n > 0 && spec.quorum * 2 <= n {
            out.push(Diagnostic::new(
                LintCode::ReplicationMisconfigured,
                Severity::Error,
                "/replication/quorum",
                format!(
                    "quorum of {} over {n} replicas is not a majority: two \
                     disjoint quorums could acknowledge divergent histories \
                     (split brain)",
                    spec.quorum
                ),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use tippers_ontology::Ontology;
    use tippers_spatial::fixtures;

    use super::*;
    use crate::corpus::{DeploymentCorpus, ReplicationSpec};
    use crate::passes::collect;

    fn corpus_with(spec: ReplicationSpec) -> DeploymentCorpus {
        let dbh = fixtures::dbh();
        let mut corpus = DeploymentCorpus::new(Ontology::standard(), dbh.model);
        corpus.replication = Some(spec);
        corpus
    }

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("bms-{i}")).collect()
    }

    #[test]
    fn absent_replication_is_silent() {
        let dbh = fixtures::dbh();
        let corpus = DeploymentCorpus::new(Ontology::standard(), dbh.model);
        assert!(collect(&Replication, &corpus).is_empty());
    }

    #[test]
    fn healthy_majority_topology_is_clean() {
        let corpus = corpus_with(ReplicationSpec {
            replicas: names(3),
            quorum: 2,
            staleness_bound_secs: Some(5),
        });
        let out = collect(&Replication, &corpus);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn quorum_beyond_replica_set_is_an_error() {
        let corpus = corpus_with(ReplicationSpec {
            replicas: names(2),
            quorum: 3,
            staleness_bound_secs: None,
        });
        let out = collect(&Replication, &corpus);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, LintCode::ReplicationMisconfigured);
        assert_eq!(out[0].severity, Severity::Error);
        assert_eq!(out[0].path, "/replication/replicas");
    }

    #[test]
    fn minority_quorum_is_a_split_brain_error() {
        let corpus = corpus_with(ReplicationSpec {
            replicas: names(4),
            quorum: 2,
            staleness_bound_secs: None,
        });
        let out = collect(&Replication, &corpus);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].path, "/replication/quorum");
        assert_eq!(out[0].severity, Severity::Error);
    }

    #[test]
    fn staleness_bound_without_replicas_warns() {
        let corpus = corpus_with(ReplicationSpec {
            replicas: Vec::new(),
            quorum: 0,
            staleness_bound_secs: Some(5),
        });
        let out = collect(&Replication, &corpus);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].severity, Severity::Warning);
        assert_eq!(out[0].path, "/replication/staleness_bound_secs");
    }
}
