//! TA012 — cross-document shadowing.
//!
//! A policy is *shadowed* when another policy dominates it: broader (or
//! equal) space, data, purpose and subject scope, a superset of its
//! actions, the same retention promise, same-or-stronger modality, and a
//! condition that covers the shadowed one's. Under every reachable
//! context the dominating policy already decides identically, so the
//! shadowed document is dead weight that still has to be kept consistent
//! — heterogeneous real-world corpora (clustered preference templates
//! stamped out per space) accumulate these silently. The same reasoning
//! applies to advertised resources: an exact duplicate of a resource
//! advertised earlier informs occupants of nothing new.
//!
//! Conservative by construction: only provable domination (taxonomy
//! `is_a`, spatial containment, identical retention/conditions) counts,
//! so every report is safe to act on. Warnings, not errors — the corpus
//! still means what it says, it just says it twice.

use tippers_policy::{BuildingPolicy, Modality, SubjectScope};

use super::{document_owners, policy_owners, Pass};
use crate::corpus::DeploymentCorpus;
use crate::diag::{Diagnostic, LintCode, Severity};
use crate::engine::{Context, UnitId};

pub(crate) struct ShadowCross;

impl Pass for ShadowCross {
    fn code(&self) -> LintCode {
        LintCode::CrossDocumentShadow
    }

    fn owners(&self, cx: &Context<'_>) -> Vec<UnitId> {
        let mut owners = policy_owners(cx);
        owners.extend(document_owners(cx));
        owners
    }

    /// A policy owner only cares about policies that could dominate it
    /// (cheap pre-filter on space/data/purpose subsumption); a document
    /// owner cares about every document (duplicates are cross-document).
    fn may_interact(&self, cx: &Context<'_>, owner: UnitId, changed: UnitId) -> bool {
        match (owner, changed) {
            (UnitId::Policy(o), UnitId::Policy(c)) => cx.policy_carriers(c).any(|q| {
                cx.policy_carriers(o).any(|p| {
                    cx.corpus.model.contains(q.space, p.space)
                        && cx.corpus.ontology.data.is_a(p.data, q.data)
                        && cx.corpus.ontology.purposes.is_a(p.purpose, q.purpose)
                })
            }),
            (UnitId::Document(_), UnitId::Document(_)) => true,
            _ => false,
        }
    }

    fn check(&self, cx: &Context<'_>, owner: UnitId) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        match owner {
            UnitId::Policy(id) => {
                for p in cx.policies_with_id(id) {
                    // The lowest-id witness keeps the report independent of
                    // corpus order.
                    if let Some(q) = cx
                        .resolvable_policies()
                        .into_iter()
                        .filter(|q| dominates(cx.corpus, q, p))
                        .min_by_key(|q| q.id)
                    {
                        out.push(
                            Diagnostic::new(
                                LintCode::CrossDocumentShadow,
                                Severity::Warning,
                                format!("/policies/{}", p.id.0),
                                format!(
                                    "{} (`{}`) is shadowed: policy `{}` ({}) dominates it under every reachable context, so removing it changes no decision",
                                    p.id, p.name, q.name, q.id
                                ),
                            )
                            .with_evidence(vec![q.id.to_string()]),
                        );
                    }
                }
            }
            UnitId::Document(k) => {
                let doc = &cx.corpus.documents[k];
                for (i, r) in doc.resources.iter().enumerate() {
                    let earlier = cx
                        .corpus
                        .documents
                        .iter()
                        .enumerate()
                        .take(k + 1)
                        .flat_map(|(k2, d)| {
                            d.resources
                                .iter()
                                .enumerate()
                                .map(move |(i2, r2)| ((k2, i2), r2))
                        })
                        .filter(|&(pos, _)| pos < (k, i))
                        .find(|&(_, r2)| r2 == r);
                    if let Some(((k2, i2), _)) = earlier {
                        let original = format!("/documents/{k2}/resources/{i2}");
                        out.push(
                            Diagnostic::new(
                                LintCode::CrossDocumentShadow,
                                Severity::Warning,
                                format!("/documents/{k}/resources/{i}"),
                                format!(
                                    "resource `{}` is an exact duplicate of the resource advertised at {original}: it informs occupants of nothing new",
                                    r.info.name
                                ),
                            )
                            .with_evidence(vec![original]),
                        );
                    }
                }
            }
            _ => {}
        }
        out
    }
}

/// Strength of a modality for domination: a dominating policy must be at
/// least as hard to opt out of as the policy it shadows.
fn modality_rank(m: Modality) -> u8 {
    match m {
        Modality::Required => 2,
        Modality::OptOut => 1,
        Modality::OptIn => 0,
    }
}

/// True if `q` subsumes the subject scope of `p`.
fn subjects_cover(q: &SubjectScope, p: &SubjectScope) -> bool {
    match (q, p) {
        (SubjectScope::Everyone, _) => true,
        (SubjectScope::Users(qs), SubjectScope::Users(ps)) => ps.iter().all(|u| qs.contains(u)),
        (SubjectScope::Groups(qg), SubjectScope::Groups(pg)) => pg.iter().all(|g| qg.contains(g)),
        _ => false,
    }
}

/// True if `q` provably makes the same decision as `p` everywhere `p`
/// applies, so `p` is removable without changing any outcome.
fn dominates(corpus: &DeploymentCorpus, q: &BuildingPolicy, p: &BuildingPolicy) -> bool {
    q.id != p.id
        && corpus.model.contains(q.space, p.space)
        && corpus.ontology.data.is_a(p.data, q.data)
        && corpus.ontology.purposes.is_a(p.purpose, q.purpose)
        && q.actions.union(p.actions) == q.actions
        && subjects_cover(&q.subjects, &p.subjects)
        && (q.condition.is_always() || q.condition == p.condition)
        && q.retention.map(|r| r.as_seconds()) == p.retention.map(|r| r.as_seconds())
        && modality_rank(q.modality) >= modality_rank(p.modality)
        && p.settings.is_empty()
        && (q.service.is_none() || q.service == p.service)
        && (q.sensor_class.is_none() || q.sensor_class == p.sensor_class)
}

#[cfg(test)]
mod tests {
    use tippers_ontology::Ontology;
    use tippers_policy::{ActionSet, DataAction, PolicyId};
    use tippers_spatial::fixtures;

    use super::*;
    use crate::passes::collect;

    fn base_corpus() -> DeploymentCorpus {
        let dbh = fixtures::dbh();
        let ontology = Ontology::standard();
        let c = ontology.concepts().clone();
        let mut corpus = DeploymentCorpus::new(ontology, dbh.model.clone());
        corpus.policies = vec![
            // Broad dominator: whole building, parent category, all actions.
            BuildingPolicy::new(
                PolicyId(1),
                "building location",
                dbh.building,
                c.location,
                c.comfort,
            )
            .with_actions(ActionSet::ALL),
            // Narrow shadowed policy: one lobby, a sub-category, fewer
            // actions, same (absent) retention.
            BuildingPolicy::new(
                PolicyId(2),
                "lobby location",
                dbh.lobby,
                c.location_room,
                c.comfort,
            )
            .with_actions(ActionSet::of(&[DataAction::Collect])),
        ];
        corpus
    }

    #[test]
    fn a_dominated_policy_is_reported_with_its_witness() {
        let out = collect(&ShadowCross, &base_corpus());
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].code, LintCode::CrossDocumentShadow);
        assert_eq!(out[0].severity, Severity::Warning);
        assert_eq!(out[0].path, "/policies/2");
        assert_eq!(out[0].evidence, vec!["policy#1".to_owned()]);
    }

    #[test]
    fn different_retention_breaks_domination() {
        let mut corpus = base_corpus();
        corpus.policies[1] = corpus.policies[1]
            .clone()
            .with_retention("P30D".parse().unwrap());
        assert!(collect(&ShadowCross, &corpus).is_empty());
    }

    #[test]
    fn weaker_modality_on_the_dominator_breaks_domination() {
        let mut corpus = base_corpus();
        corpus.policies[0].modality = Modality::OptIn;
        corpus.policies[1].modality = Modality::Required;
        assert!(collect(&ShadowCross, &corpus).is_empty());
    }

    #[test]
    fn duplicate_resources_across_documents_are_reported_once() {
        let mut corpus = base_corpus();
        corpus.policies.clear();
        let doc = tippers_policy::figures::fig2_document();
        corpus.documents.push(doc.clone());
        corpus.documents.push(doc);
        let out = collect(&ShadowCross, &corpus);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].path, "/documents/1/resources/0");
        assert_eq!(out[0].evidence, vec!["/documents/0/resources/0".to_owned()]);
    }

    #[test]
    fn the_figures_corpus_has_no_shadowing() {
        assert!(collect(&ShadowCross, &DeploymentCorpus::figures()).is_empty());
    }
}
