//! TA006 — conflict pre-flight.
//!
//! Runs the runtime conflict detector ([`tippers_policy::ConflictIndex`])
//! over the corpus at lint time, so every policy/preference clash the BMS
//! would resolve (and notify users about) in production is already visible
//! in CI. Conflicts are warnings: the runtime resolves them by design, but
//! each one is a user who will be told their preference cannot be honored.
//!
//! The detector classifies every (policy, preference) pair independently,
//! so the pass decomposes exactly by policy id: the full-corpus
//! [`Pass::check_all`] runs one detector sweep and buckets conflicts by
//! policy, while the incremental [`Pass::check`] re-detects only the
//! owner's policies against all preferences — identical output either way.

use std::collections::BTreeMap;

use tippers_policy::conflict::detect_conflicts_naive;
use tippers_policy::{BuildingPolicy, Conflict, ConflictIndex, UserPreference};

use super::{policy_owners, Pass};
use crate::diag::{Diagnostic, LintCode, Severity};
use crate::engine::{Context, UnitId};

pub(crate) struct Preflight;

impl Pass for Preflight {
    fn code(&self) -> LintCode {
        LintCode::ConflictPreflight
    }

    fn owners(&self, cx: &Context<'_>) -> Vec<UnitId> {
        policy_owners(cx)
    }

    /// Any preference can conflict with the owner's policies — but only
    /// *required* policies ever appear in conflicts, so owners without a
    /// required carrier are inert. Other policies never enter the owner's
    /// (policy, preference) pairs.
    fn may_interact(&self, cx: &Context<'_>, owner: UnitId, changed: UnitId) -> bool {
        let UnitId::Policy(o) = owner else {
            return false;
        };
        matches!(changed, UnitId::Preference(_))
            && cx.policy_carriers(o).any(BuildingPolicy::is_required)
    }

    fn check(&self, cx: &Context<'_>, owner: UnitId) -> Vec<Diagnostic> {
        let UnitId::Policy(id) = owner else {
            return Vec::new();
        };
        // Only required policies conflict; for the 1–2 policies a single
        // owner carries, the pairwise detector beats building an index.
        let policies: Vec<BuildingPolicy> = cx
            .policy_carriers(id)
            .filter(|p| p.is_required())
            .cloned()
            .collect();
        if policies.is_empty() {
            return Vec::new();
        }
        let preferences: Vec<UserPreference> =
            cx.resolvable_preferences().into_iter().cloned().collect();
        if preferences.is_empty() {
            return Vec::new();
        }
        detect_conflicts_naive(
            &policies,
            &preferences,
            &cx.corpus.ontology,
            &cx.corpus.model,
            cx.corpus.strategy,
        )
        .iter()
        .map(render)
        .collect()
    }

    fn check_all(&self, cx: &Context<'_>) -> Vec<(UnitId, Vec<Diagnostic>)> {
        let mut buckets: BTreeMap<u64, Vec<Diagnostic>> = cx
            .facts
            .policy_index
            .keys()
            .map(|&id| (id, Vec::new()))
            .collect();
        let policies: Vec<BuildingPolicy> = cx.resolvable_policies().into_iter().cloned().collect();
        let preferences: Vec<UserPreference> =
            cx.resolvable_preferences().into_iter().cloned().collect();
        if !policies.is_empty() && !preferences.is_empty() {
            let index = ConflictIndex::build(&policies, &cx.corpus.ontology);
            for conflict in index.detect(
                &policies,
                &preferences,
                &cx.corpus.ontology,
                &cx.corpus.model,
                cx.corpus.strategy,
            ) {
                buckets
                    .get_mut(&conflict.policy.0)
                    .expect("conflicts involve resolvable policies")
                    .push(render(&conflict));
            }
        }
        buckets
            .into_iter()
            .map(|(id, diags)| (UnitId::Policy(id), diags))
            .collect()
    }
}

fn render(conflict: &Conflict) -> Diagnostic {
    Diagnostic::new(
        LintCode::ConflictPreflight,
        Severity::Warning,
        format!("/policies/{}", conflict.policy.0),
        conflict.notice.clone(),
    )
    .with_evidence(vec![
        conflict.policy.to_string(),
        conflict.preference.to_string(),
        format!("{:?}", conflict.kind),
    ])
}
