//! TA006 — conflict pre-flight.
//!
//! Runs the runtime conflict detector ([`tippers_policy::ConflictIndex`])
//! over the corpus at lint time, so every policy/preference clash the BMS
//! would resolve (and notify users about) in production is already visible
//! in CI. Conflicts are warnings: the runtime resolves them by design, but
//! each one is a user who will be told their preference cannot be honored.

use tippers_policy::{BuildingPolicy, ConflictIndex, UserPreference};

use crate::corpus::DeploymentCorpus;
use crate::diag::{Diagnostic, LintCode, Severity};

pub(crate) fn run(corpus: &DeploymentCorpus, out: &mut Vec<Diagnostic>) {
    let policies: Vec<BuildingPolicy> = corpus.resolvable_policies().into_iter().cloned().collect();
    let preferences: Vec<UserPreference> = corpus
        .resolvable_preferences()
        .into_iter()
        .cloned()
        .collect();
    if policies.is_empty() || preferences.is_empty() {
        return;
    }
    let index = ConflictIndex::build(&policies, &corpus.ontology);
    for conflict in index.detect(
        &policies,
        &preferences,
        &corpus.ontology,
        &corpus.model,
        corpus.strategy,
    ) {
        out.push(
            Diagnostic::new(
                LintCode::ConflictPreflight,
                Severity::Warning,
                format!("/policies/{}", conflict.policy.0),
                conflict.notice.clone(),
            )
            .with_evidence(vec![
                conflict.policy.to_string(),
                conflict.preference.to_string(),
                format!("{:?}", conflict.kind),
            ]),
        );
    }
}
