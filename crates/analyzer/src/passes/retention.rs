//! TA004 — retention contradictions.
//!
//! If a policy covering an enclosing scope caps how long some data may be
//! kept, a nested policy retaining comparable data for longer (or forever)
//! contradicts it — the deployment promises two different things about the
//! same observations. Comparability is conservative: the nested policy's
//! data category must be subsumed by the capping policy's, their action
//! sets, subjects and conditions must overlap.

use tippers_policy::BuildingPolicy;

use crate::corpus::DeploymentCorpus;
use crate::diag::{Diagnostic, LintCode, Severity};

pub(crate) fn run(corpus: &DeploymentCorpus, out: &mut Vec<Diagnostic>) {
    let policies = corpus.resolvable_policies();
    for p in &policies {
        for q in &policies {
            if let Some(d) = contradiction(corpus, p, q) {
                out.push(d);
            }
        }
    }
}

/// Reports `p` if it retains longer than the enclosing-scope cap `q` allows.
fn contradiction(
    corpus: &DeploymentCorpus,
    p: &BuildingPolicy,
    q: &BuildingPolicy,
) -> Option<Diagnostic> {
    if p.id == q.id {
        return None;
    }
    let cap = q.retention?;
    let longer = match p.retention {
        None => true,
        Some(r) => r.as_seconds() > cap.as_seconds(),
    };
    if !longer
        || !corpus.model.contains(q.space, p.space)
        || !corpus.ontology.data.is_a(p.data, q.data)
        || !p.actions.intersects(q.actions)
        || !p.subjects.may_overlap(&q.subjects)
        || !p.condition.may_overlap(&q.condition, &corpus.model)
    {
        return None;
    }
    let kept = match p.retention {
        None => "indefinitely".to_owned(),
        Some(r) => format!("for {r}"),
    };
    Some(
        Diagnostic::new(
            LintCode::RetentionContradiction,
            Severity::Error,
            format!("/policies/{}/retention", p.id.0),
            format!(
                "{} keeps data {kept} but policy `{}` ({}) covering an enclosing scope allows at most {cap}",
                p.id, q.name, q.id
            ),
        )
        .with_evidence(vec![q.id.to_string()]),
    )
}
