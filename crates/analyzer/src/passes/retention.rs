//! TA004 — retention contradictions.
//!
//! If a policy covering an enclosing scope caps how long some data may be
//! kept, a nested policy retaining comparable data for longer (or forever)
//! contradicts it — the deployment promises two different things about the
//! same observations. Comparability is conservative: the nested policy's
//! data category must be subsumed by the capping policy's, their action
//! sets, subjects and conditions must overlap.

use tippers_policy::BuildingPolicy;

use super::{policy_owners, Pass};
use crate::corpus::DeploymentCorpus;
use crate::diag::{Diagnostic, LintCode, Severity};
use crate::engine::{Context, UnitId};

pub(crate) struct Retention;

impl Pass for Retention {
    fn code(&self) -> LintCode {
        LintCode::RetentionContradiction
    }

    fn owners(&self, cx: &Context<'_>) -> Vec<UnitId> {
        policy_owners(cx)
    }

    /// Another policy matters only as a potential cap: it must declare a
    /// retention, cover an enclosing space, and subsume the data category.
    fn may_interact(&self, cx: &Context<'_>, owner: UnitId, changed: UnitId) -> bool {
        let (UnitId::Policy(o), UnitId::Policy(c)) = (owner, changed) else {
            return false;
        };
        cx.policy_carriers(c).any(|q| {
            q.retention.is_some()
                && cx.policy_carriers(o).any(|p| {
                    cx.corpus.model.contains(q.space, p.space)
                        && cx.corpus.ontology.data.is_a(p.data, q.data)
                })
        })
    }

    fn check(&self, cx: &Context<'_>, owner: UnitId) -> Vec<Diagnostic> {
        let UnitId::Policy(id) = owner else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for p in cx.policies_with_id(id) {
            for q in cx.resolvable_policies() {
                if let Some(d) = contradiction(cx.corpus, p, q) {
                    out.push(d);
                }
            }
        }
        out
    }
}

/// Reports `p` if it retains longer than the enclosing-scope cap `q` allows.
fn contradiction(
    corpus: &DeploymentCorpus,
    p: &BuildingPolicy,
    q: &BuildingPolicy,
) -> Option<Diagnostic> {
    if p.id == q.id {
        return None;
    }
    let cap = q.retention?;
    let longer = match p.retention {
        None => true,
        Some(r) => r.as_seconds() > cap.as_seconds(),
    };
    if !longer
        || !corpus.model.contains(q.space, p.space)
        || !corpus.ontology.data.is_a(p.data, q.data)
        || !p.actions.intersects(q.actions)
        || !p.subjects.may_overlap(&q.subjects)
        || !p.condition.may_overlap(&q.condition, &corpus.model)
    {
        return None;
    }
    let kept = match p.retention {
        None => "indefinitely".to_owned(),
        Some(r) => format!("for {r}"),
    };
    Some(
        Diagnostic::new(
            LintCode::RetentionContradiction,
            Severity::Error,
            format!("/policies/{}/retention", p.id.0),
            format!(
                "{} keeps data {kept} but policy `{}` ({}) covering an enclosing scope allows at most {cap}",
                p.id, q.name, q.id
            ),
        )
        .with_evidence(vec![q.id.to_string()]),
    )
}
