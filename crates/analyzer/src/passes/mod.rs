//! The analyzer's passes, one module per lint code.
//!
//! Each pass is a pure function from a [`crate::DeploymentCorpus`] to
//! diagnostics; passes never see each other's output, and the engine sorts
//! and deduplicates afterwards, so pass execution order is unobservable.

pub(crate) mod accountability;
pub(crate) mod capture;
pub(crate) mod dangling;
pub(crate) mod leak;
pub(crate) mod preflight;
pub(crate) mod priority;
pub(crate) mod replication;
pub(crate) mod retention;
pub(crate) mod shadow;
pub(crate) mod unsat;
pub(crate) mod wire;
