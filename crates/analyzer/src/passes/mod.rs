//! The analyzer's passes, one module per lint code.
//!
//! Every pass implements [`Pass`]: it names the [`UnitId`]s it *owns*
//! (the units its diagnostics are attributed to), checks one owner at a
//! time against the shared fact graph, and declares — conservatively —
//! which changed units may interact with an owner, which is what makes
//! incremental re-analysis sound. Passes never see each other's output,
//! and the engine canonicalizes afterwards, so neither pass order nor
//! owner order is observable.

pub(crate) mod accountability;
pub(crate) mod capture;
pub(crate) mod compile;
pub(crate) mod dangling;
pub(crate) mod leak;
pub(crate) mod preflight;
pub(crate) mod priority;
pub(crate) mod replication;
pub(crate) mod retention;
pub(crate) mod shadow;
pub(crate) mod shadow_cross;
pub(crate) mod sharding;
pub(crate) mod taint;
pub(crate) mod unsat;
pub(crate) mod wire;

use std::collections::BTreeSet;

use crate::diag::{Diagnostic, LintCode};
use crate::engine::{Context, UnitId};

/// One lint pass over the fact graph.
pub(crate) trait Pass: Sync {
    /// The stable code of every diagnostic this pass emits.
    fn code(&self) -> LintCode;

    /// The units this pass attributes diagnostics to, for this corpus.
    /// Each (pass, owner) cell is computed and cached independently.
    fn owners(&self, cx: &Context<'_>) -> Vec<UnitId>;

    /// Diagnostics attributed to one owner.
    fn check(&self, cx: &Context<'_>, owner: UnitId) -> Vec<Diagnostic>;

    /// Whether a change to `changed` may alter `owner`'s diagnostics.
    /// Called on both the pre- and post-edit corpus; must be conservative
    /// (`true` when unsure). Never called when `owner == changed`, when
    /// `changed` is [`UnitId::Global`], or on a document-count change —
    /// those always invalidate.
    fn may_interact(&self, _cx: &Context<'_>, _owner: UnitId, _changed: UnitId) -> bool {
        true
    }

    /// Full-corpus run, one entry per owner. Passes with cross-owner
    /// batch structure (TA006's conflict index) override this to compute
    /// all owners in one sweep; the result must equal per-owner
    /// [`Pass::check`] calls cell by cell.
    fn check_all(&self, cx: &Context<'_>) -> Vec<(UnitId, Vec<Diagnostic>)> {
        self.owners(cx)
            .into_iter()
            .map(|o| (o, self.check(cx, o)))
            .collect()
    }
}

/// Every pass, in lint-code order.
pub(crate) fn all() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(dangling::Dangling),
        Box::new(unsat::Unsat),
        Box::new(shadow::Shadow),
        Box::new(retention::Retention),
        Box::new(leak::Leak),
        Box::new(preflight::Preflight),
        Box::new(wire::Wire),
        Box::new(priority::Priority),
        Box::new(replication::Replication),
        Box::new(accountability::Accountability),
        Box::new(capture::Capture),
        Box::new(shadow_cross::ShadowCross),
        Box::new(taint::Taint),
        Box::new(compile::Compile),
        Box::new(sharding::Sharding),
    ]
}

/// Owners for a pass over every document.
fn document_owners(cx: &Context<'_>) -> Vec<UnitId> {
    (0..cx.corpus.documents.len())
        .map(UnitId::Document)
        .collect()
}

/// Owners for a pass over the resolvable policies, one per distinct id.
fn policy_owners(cx: &Context<'_>) -> Vec<UnitId> {
    cx.facts
        .policy_index
        .keys()
        .map(|&id| UnitId::Policy(id))
        .collect()
}

/// Owners for a pass over the resolvable preferences.
fn preference_owners(cx: &Context<'_>) -> Vec<UnitId> {
    cx.facts
        .preference_index
        .keys()
        .map(|&id| UnitId::Preference(id))
        .collect()
}

/// Owners covering *every* policy and preference id, resolvable or not
/// (the dangling-reference pass reports the unresolvable ones).
fn raw_unit_owners(cx: &Context<'_>) -> Vec<UnitId> {
    let mut owners = document_owners(cx);
    let policy_ids: BTreeSet<u64> = cx.corpus.policies.iter().map(|p| p.id.0).collect();
    owners.extend(policy_ids.into_iter().map(UnitId::Policy));
    let pref_ids: BTreeSet<u64> = cx.corpus.preferences.iter().map(|p| p.id.0).collect();
    owners.extend(pref_ids.into_iter().map(UnitId::Preference));
    owners
}

#[cfg(test)]
pub(crate) fn collect(
    pass: &dyn Pass,
    corpus: &crate::corpus::DeploymentCorpus,
) -> Vec<Diagnostic> {
    let mut memo = crate::engine::ClosureMemo::default();
    let facts = crate::engine::Facts::build(corpus, &mut memo);
    let cx = Context {
        corpus,
        facts: &facts,
    };
    let mut out = Vec::new();
    for owner in pass.owners(&cx) {
        out.extend(pass.check(&cx, owner));
    }
    out
}
