//! TA014 — compilability.
//!
//! The paper's enforcement path compiles policies into the IoT broker's
//! decision tables; two declarations defeat that compilation. A
//! `requester_nearby` condition ranges over *continuous requester
//! positions* — the compiler cannot flatten it into a finite table, so
//! the policy falls back to interpreted evaluation on every request
//! (correct, but it silently forfeits the compiled fast path: a
//! warning). And a rule base whose inference rules form a cycle cannot
//! be stratified at all — closure computation still terminates (updates
//! require strictly increasing confidence) but the rule set has no
//! well-founded evaluation order for a one-pass compiler, so each cycle
//! is an **error** pinned to `/ontology/rules` with the participating
//! rule names as evidence.
//!
//! Cycles are global facts (computed once by the fact builder via
//! Tarjan's SCC over the rule-dependency graph); the condition check is
//! per policy/preference and depends on nothing else, so the pass needs
//! no cross-unit invalidation.

use super::{policy_owners, preference_owners, Pass};
use crate::diag::{Diagnostic, LintCode, Severity};
use crate::engine::{Context, UnitId};

pub(crate) struct Compile;

impl Pass for Compile {
    fn code(&self) -> LintCode {
        LintCode::Uncompilable
    }

    fn owners(&self, cx: &Context<'_>) -> Vec<UnitId> {
        let mut owners = vec![UnitId::Global];
        owners.extend(policy_owners(cx));
        owners.extend(preference_owners(cx));
        owners
    }

    fn may_interact(&self, _cx: &Context<'_>, _owner: UnitId, _changed: UnitId) -> bool {
        false
    }

    fn check(&self, cx: &Context<'_>, owner: UnitId) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        match owner {
            UnitId::Global => {
                for cycle in &cx.facts.rule_cycles {
                    out.push(
                        Diagnostic::new(
                            LintCode::Uncompilable,
                            Severity::Error,
                            "/ontology/rules",
                            format!(
                                "inference rules {} form a cycle: the rule base cannot \
                                 be stratified into a one-pass compilation order",
                                cycle
                                    .iter()
                                    .map(|r| format!("`{r}`"))
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            ),
                        )
                        .with_evidence(cycle.clone()),
                    );
                }
            }
            UnitId::Policy(id) => {
                for p in cx.policies_with_id(id) {
                    if p.condition.requester_nearby {
                        out.push(Diagnostic::new(
                            LintCode::Uncompilable,
                            Severity::Warning,
                            format!("/policies/{}/condition/requester_nearby", p.id.0),
                            format!(
                                "{} (`{}`) guards on requester_nearby, which ranges over \
                                 continuous requester positions: the policy compiler \
                                 cannot flatten it into a finite decision table and falls \
                                 back to per-request interpretation",
                                p.id, p.name
                            ),
                        ));
                    }
                }
            }
            UnitId::Preference(id) => {
                for a in cx.preferences_with_id(id) {
                    if a.scope.condition.requester_nearby {
                        out.push(Diagnostic::new(
                            LintCode::Uncompilable,
                            Severity::Warning,
                            format!("/preferences/{}/scope/condition/requester_nearby", a.id.0),
                            format!(
                                "{} guards on requester_nearby, which ranges over \
                                 continuous requester positions: the policy compiler \
                                 cannot flatten it into a finite decision table and falls \
                                 back to per-request interpretation",
                                a.id
                            ),
                        ));
                    }
                }
            }
            UnitId::Document(_) => {}
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use tippers_ontology::{InferenceRule, Ontology};
    use tippers_policy::{BuildingPolicy, Condition, PolicyId};
    use tippers_spatial::fixtures;

    use super::*;
    use crate::corpus::DeploymentCorpus;
    use crate::passes::collect;

    #[test]
    fn the_standard_rule_base_compiles() {
        let dbh = fixtures::dbh();
        let corpus = DeploymentCorpus::new(Ontology::standard(), dbh.model);
        assert!(collect(&Compile, &corpus).is_empty());
    }

    #[test]
    fn a_rule_cycle_is_an_error_naming_its_members() {
        let dbh = fixtures::dbh();
        let mut ontology = Ontology::standard();
        let c = ontology.concepts().clone();
        ontology.add_rule(InferenceRule::new(
            "power-implies-temp",
            vec![c.power_consumption],
            c.ambient_temperature,
            0.5,
        ));
        ontology.add_rule(InferenceRule::new(
            "temp-implies-power",
            vec![c.ambient_temperature],
            c.power_consumption,
            0.5,
        ));
        let corpus = DeploymentCorpus::new(ontology, dbh.model);
        let out = collect(&Compile, &corpus);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].code, LintCode::Uncompilable);
        assert_eq!(out[0].severity, Severity::Error);
        assert_eq!(out[0].path, "/ontology/rules");
        assert_eq!(
            out[0].evidence,
            vec![
                "power-implies-temp".to_owned(),
                "temp-implies-power".to_owned()
            ]
        );
    }

    #[test]
    fn requester_nearby_guards_warn_on_policies() {
        let dbh = fixtures::dbh();
        let ontology = Ontology::standard();
        let c = ontology.concepts().clone();
        let mut corpus = DeploymentCorpus::new(ontology, dbh.model.clone());
        corpus.policies.push(
            BuildingPolicy::new(PolicyId(4), "nearby", dbh.lobby, c.occupancy, c.comfort)
                .with_condition(Condition::default().with_requester_nearby()),
        );
        let out = collect(&Compile, &corpus);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].severity, Severity::Warning);
        assert_eq!(out[0].path, "/policies/4/condition/requester_nearby");
    }

    #[test]
    fn the_figures_corpus_flags_policy_4() {
        // Figure 4's "share location when requester is nearby" setting
        // compiles to a requester_nearby guard.
        let corpus = DeploymentCorpus::figures();
        let out = collect(&Compile, &corpus);
        assert!(
            out.iter().all(|d| d.severity == Severity::Warning),
            "{out:?}"
        );
        assert!(
            out.iter().any(|d| d.path.starts_with("/policies/4")),
            "{out:?}"
        );
    }
}
