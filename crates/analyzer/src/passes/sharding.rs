//! TA016 — shard-topology misconfiguration.
//!
//! The sharded runtime partitions enforcement state by (zone, user-id
//! hash) over `N` crash-isolated shards, and its guarantees — fail-closed
//! routing for a down shard, WAL-partition rebuild, single-owner
//! accounting — assume the declared topology is coherent. Three ways a
//! declaration breaks them: zero shards (routing has no fail-closed
//! answer to "which shard?"; the runtime refuses to start), a zone pin
//! naming a shard outside the declared range or claimed by two different
//! shards (split ownership makes replay and denial accounting
//! ambiguous), and a declared capture zone no pin maps when the operator
//! pins zones at all (its subjectless observations fall back to hash
//! routing the audit never covered). The runtime enforces the same two
//! error rules at startup (`ShardRouter::with_zone_pins` refuses
//! out-of-range and split pins, and a pinned zone's observations really
//! do route to their pin), so a topology this pass certifies is the
//! topology that runs. Pure global configuration: the pass owns only
//! [`UnitId::Global`].

use std::collections::BTreeMap;

use super::Pass;
use crate::diag::{Diagnostic, LintCode, Severity};
use crate::engine::{Context, UnitId};

pub(crate) struct Sharding;

impl Pass for Sharding {
    fn code(&self) -> LintCode {
        LintCode::ShardTopology
    }

    fn owners(&self, _cx: &Context<'_>) -> Vec<UnitId> {
        vec![UnitId::Global]
    }

    fn may_interact(&self, _cx: &Context<'_>, _owner: UnitId, _changed: UnitId) -> bool {
        false
    }

    fn check(&self, cx: &Context<'_>, _owner: UnitId) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let Some(spec) = &cx.corpus.sharding else {
            return out;
        };
        if spec.shards == 0 {
            out.push(Diagnostic::new(
                LintCode::ShardTopology,
                Severity::Error,
                "/sharding/shards",
                "zero shards declared: routing is undefined and the sharded \
                 runtime refuses to start",
            ));
        }
        let mut owner_of: BTreeMap<&str, (usize, u64)> = BTreeMap::new();
        for (i, pin) in spec.zones.iter().enumerate() {
            if spec.shards > 0 && pin.shard >= spec.shards {
                out.push(Diagnostic::new(
                    LintCode::ShardTopology,
                    Severity::Error,
                    format!("/sharding/zones/{i}/shard"),
                    format!(
                        "zone `{}` is pinned to shard {} but only {} shard{} \
                         are declared",
                        pin.zone,
                        pin.shard,
                        spec.shards,
                        if spec.shards == 1 { "" } else { "s" },
                    ),
                ));
            }
            match owner_of.get(pin.zone.as_str()) {
                Some(&(first, shard)) if shard != pin.shard => {
                    out.push(
                        Diagnostic::new(
                            LintCode::ShardTopology,
                            Severity::Error,
                            format!("/sharding/zones/{i}"),
                            format!(
                                "zone `{}` is claimed by shard {} and shard {}: \
                                 split ownership makes WAL replay and \
                                 fail-closed accounting ambiguous",
                                pin.zone, shard, pin.shard
                            ),
                        )
                        .with_evidence(vec![format!("first pinned at /sharding/zones/{first}")]),
                    );
                }
                Some(_) => {}
                None => {
                    owner_of.insert(pin.zone.as_str(), (i, pin.shard));
                }
            }
        }
        // When the operator pins zones explicitly, every declared capture
        // zone should be covered — an unpinned capture zone silently
        // falls back to hash routing the pinned-topology audit never saw.
        if !spec.zones.is_empty() {
            if let Some(ingest) = &cx.corpus.ingest {
                for (i, zone) in ingest.capture_zones.iter().enumerate() {
                    if !owner_of.contains_key(zone.as_str()) {
                        out.push(Diagnostic::new(
                            LintCode::ShardTopology,
                            Severity::Warning,
                            format!("/ingest/capture_zones/{i}"),
                            format!(
                                "capture zone `{zone}` is mapped to no shard: \
                                 the declared pins do not cover it, so its \
                                 observations fall back to unaudited hash \
                                 routing"
                            ),
                        ));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use tippers_ontology::Ontology;
    use tippers_spatial::fixtures;

    use super::*;
    use crate::corpus::{DeploymentCorpus, IngestSpec, ShardZonePin, ShardingSpec};
    use crate::passes::collect;

    fn corpus_with(spec: ShardingSpec) -> DeploymentCorpus {
        let dbh = fixtures::dbh();
        let mut corpus = DeploymentCorpus::new(Ontology::standard(), dbh.model);
        corpus.sharding = Some(spec);
        corpus
    }

    fn pin(zone: &str, shard: u64) -> ShardZonePin {
        ShardZonePin {
            zone: zone.to_owned(),
            shard,
        }
    }

    #[test]
    fn absent_sharding_is_silent() {
        let dbh = fixtures::dbh();
        let corpus = DeploymentCorpus::new(Ontology::standard(), dbh.model);
        assert!(collect(&Sharding, &corpus).is_empty());
    }

    #[test]
    fn healthy_topology_is_clean() {
        let mut corpus = corpus_with(ShardingSpec {
            shards: 8,
            zones: vec![pin("DBH", 0), pin("Floor2", 3)],
        });
        corpus.ingest = Some(IngestSpec {
            mailbox_capacity: Some(1024),
            capture_zones: vec!["DBH".to_owned()],
        });
        let out = collect(&Sharding, &corpus);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn zero_shards_is_an_error() {
        let out = collect(&Sharding, &corpus_with(ShardingSpec::default()));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, LintCode::ShardTopology);
        assert_eq!(out[0].severity, Severity::Error);
        assert_eq!(out[0].path, "/sharding/shards");
    }

    #[test]
    fn out_of_range_pin_is_an_error() {
        let out = collect(
            &Sharding,
            &corpus_with(ShardingSpec {
                shards: 4,
                zones: vec![pin("DBH", 4)],
            }),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].path, "/sharding/zones/0/shard");
        assert_eq!(out[0].severity, Severity::Error);
    }

    #[test]
    fn split_ownership_is_an_error_with_the_first_pin_as_evidence() {
        let out = collect(
            &Sharding,
            &corpus_with(ShardingSpec {
                shards: 4,
                zones: vec![pin("DBH", 0), pin("DBH", 2)],
            }),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].path, "/sharding/zones/1");
        assert_eq!(out[0].severity, Severity::Error);
        assert_eq!(out[0].evidence, vec!["first pinned at /sharding/zones/0"]);
    }

    #[test]
    fn duplicate_pins_on_the_same_shard_are_fine() {
        let out = collect(
            &Sharding,
            &corpus_with(ShardingSpec {
                shards: 4,
                zones: vec![pin("DBH", 1), pin("DBH", 1)],
            }),
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn uncovered_capture_zone_warns_only_when_pins_exist() {
        let mut corpus = corpus_with(ShardingSpec {
            shards: 4,
            zones: vec![pin("Floor2", 0)],
        });
        corpus.ingest = Some(IngestSpec {
            mailbox_capacity: Some(1024),
            capture_zones: vec!["DBH".to_owned()],
        });
        let out = collect(&Sharding, &corpus);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].severity, Severity::Warning);
        assert_eq!(out[0].path, "/ingest/capture_zones/0");

        // Without pins, hash routing covers every zone: silent.
        let mut corpus = corpus_with(ShardingSpec {
            shards: 4,
            zones: Vec::new(),
        });
        corpus.ingest = Some(IngestSpec {
            mailbox_capacity: Some(1024),
            capture_zones: vec!["DBH".to_owned()],
        });
        assert!(collect(&Sharding, &corpus).is_empty());
    }
}
