//! TA011 — capture-enforcement gaps.
//!
//! Capture-time enforcement only holds if the declared pipeline actually
//! stands between every authorized sensor and the store. Two gaps defeat
//! it: a pipeline with no (or a zero) per-zone mailbox bound buffers a
//! sensor firehose without limit instead of backpressuring the links —
//! overload then becomes memory growth, not audited drops, so the bound
//! is an **error**; and a policy that authorizes collection or storage
//! in a space no declared capture zone covers feeds observations to the
//! store without ever passing the capture filter — the data is lawful to
//! hold but was never screened at capture, a **warning**.
//!
//! Deployments that enforce only at request time declare no `"ingest"`
//! section and the pass is silent. The mailbox bound is global; the zone
//! coverage of each policy depends only on that policy and the (global)
//! ingest spec, so no cross-unit invalidation is needed.

use tippers_policy::DataAction;

use super::{policy_owners, Pass};
use crate::diag::{Diagnostic, LintCode, Severity};
use crate::engine::{Context, UnitId};

pub(crate) struct Capture;

impl Pass for Capture {
    fn code(&self) -> LintCode {
        LintCode::CaptureGap
    }

    fn owners(&self, cx: &Context<'_>) -> Vec<UnitId> {
        let mut owners = vec![UnitId::Global];
        owners.extend(policy_owners(cx));
        owners
    }

    fn may_interact(&self, _cx: &Context<'_>, _owner: UnitId, _changed: UnitId) -> bool {
        false
    }

    fn check(&self, cx: &Context<'_>, owner: UnitId) -> Vec<Diagnostic> {
        let corpus = cx.corpus;
        let mut out = Vec::new();
        let Some(spec) = &corpus.ingest else {
            return out;
        };
        match owner {
            // Gap 1: an unbounded (or zero-bound) mailbox turns overload
            // into unbounded buffering instead of backpressure.
            UnitId::Global => match spec.mailbox_capacity {
                Some(bound) if bound > 0 => {}
                declared => {
                    let what = match declared {
                        None => "declares no mailbox bound",
                        Some(_) => "declares a zero mailbox bound",
                    };
                    out.push(Diagnostic::new(
                        LintCode::CaptureGap,
                        Severity::Error,
                        "/ingest/mailbox_capacity",
                        format!(
                            "capture pipeline {what}: a sensor firehose buffers \
                             without limit instead of backpressuring the links"
                        ),
                    ));
                }
            },
            // Gap 2: collection authorized where no capture zone screens it.
            UnitId::Policy(id) => {
                let zones: Vec<_> = spec
                    .capture_zones
                    .iter()
                    .filter_map(|name| corpus.resolve_space(name))
                    .collect();
                for p in cx.policies_with_id(id) {
                    if !p.actions.contains(DataAction::Collect)
                        && !p.actions.contains(DataAction::Store)
                    {
                        continue;
                    }
                    if zones.iter().any(|&z| corpus.model.contains(z, p.space)) {
                        continue;
                    }
                    out.push(
                        Diagnostic::new(
                            LintCode::CaptureGap,
                            Severity::Warning,
                            format!("/policies/{}/space", p.id.0),
                            format!(
                                "{} (`{}`) authorizes collection in `{}` but no capture \
                                 zone covers it: its observations reach the store without \
                                 capture-time enforcement",
                                p.id,
                                p.name,
                                corpus.model.space(p.space).name()
                            ),
                        )
                        .with_evidence(spec.capture_zones.clone()),
                    );
                }
            }
            _ => {}
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use tippers_ontology::Ontology;
    use tippers_policy::{ActionSet, BuildingPolicy, DataAction, PolicyId};
    use tippers_spatial::fixtures;

    use super::*;
    use crate::corpus::{DeploymentCorpus, IngestSpec};
    use crate::passes::collect;

    fn corpus_with(spec: IngestSpec) -> DeploymentCorpus {
        let dbh = fixtures::dbh();
        let ontology = Ontology::standard();
        let c = ontology.concepts().clone();
        let mut corpus = DeploymentCorpus::new(ontology, dbh.model.clone());
        corpus.ingest = Some(spec);
        corpus.policies = vec![
            BuildingPolicy::new(
                PolicyId(1),
                "lobby wifi",
                dbh.lobby,
                c.wifi_association,
                c.emergency_response,
            )
            .with_actions(ActionSet::COLLECT_STORE),
            BuildingPolicy::new(PolicyId(2), "campus audit", dbh.building, c.data, c.logging)
                .with_actions(ActionSet::of(&[DataAction::Share])),
        ];
        corpus
    }

    fn bounded(zones: &[&str]) -> IngestSpec {
        IngestSpec {
            mailbox_capacity: Some(64),
            capture_zones: zones.iter().map(|&z| z.to_owned()).collect(),
        }
    }

    #[test]
    fn absent_ingest_is_silent() {
        let dbh = fixtures::dbh();
        let corpus = DeploymentCorpus::new(Ontology::standard(), dbh.model);
        assert!(collect(&Capture, &corpus).is_empty());
    }

    #[test]
    fn covered_bounded_pipeline_is_clean() {
        let corpus = corpus_with(bounded(&["DBH"]));
        let out = collect(&Capture, &corpus);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn missing_mailbox_bound_is_an_error() {
        let corpus = corpus_with(IngestSpec {
            mailbox_capacity: None,
            capture_zones: vec!["DBH".into()],
        });
        let out = collect(&Capture, &corpus);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, LintCode::CaptureGap);
        assert_eq!(out[0].severity, Severity::Error);
        assert_eq!(out[0].path, "/ingest/mailbox_capacity");
    }

    #[test]
    fn zero_mailbox_bound_is_an_error() {
        let corpus = corpus_with(IngestSpec {
            mailbox_capacity: Some(0),
            capture_zones: vec!["DBH".into()],
        });
        let out = collect(&Capture, &corpus);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].severity, Severity::Error);
        assert!(out[0].message.contains("zero"), "{}", out[0].message);
    }

    #[test]
    fn uncovered_collection_zone_warns_with_the_declared_zones() {
        // The capture zone covers floor 2 only; the ground-floor lobby
        // policy collects outside it. The share-only policy never collects
        // and stays silent.
        let corpus = corpus_with(bounded(&["DBH-2"]));
        let out = collect(&Capture, &corpus);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].severity, Severity::Warning);
        assert_eq!(out[0].path, "/policies/1/space");
        assert_eq!(out[0].evidence, vec!["DBH-2".to_owned()]);
    }
}
