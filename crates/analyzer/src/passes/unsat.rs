//! TA002 — unsatisfiable and vacuous conditions.
//!
//! A condition that can never hold makes its policy dead weight (an error:
//! the author believed something is being enforced that is not), and a
//! clause with no effect (proximity without spaces) usually means the
//! author's intent was lost in translation (a warning).

use tippers_policy::Condition;
use tippers_spatial::SpaceId;

use crate::corpus::DeploymentCorpus;
use crate::diag::{Diagnostic, LintCode, Severity};

pub(crate) fn run(corpus: &DeploymentCorpus, out: &mut Vec<Diagnostic>) {
    for p in corpus.resolvable_policies() {
        check_condition(
            corpus,
            &p.condition,
            Some(p.space),
            &format!("/policies/{}", p.id.0),
            out,
        );
    }
    for p in corpus.resolvable_preferences() {
        check_condition(
            corpus,
            &p.scope.condition,
            p.scope.space,
            &format!("/preferences/{}/scope", p.id.0),
            out,
        );
    }
}

fn check_condition(
    corpus: &DeploymentCorpus,
    condition: &Condition,
    scope_space: Option<SpaceId>,
    base: &str,
    out: &mut Vec<Diagnostic>,
) {
    if let Some(w) = &condition.time {
        if w.days.is_empty() {
            out.push(Diagnostic::new(
                LintCode::UnsatisfiableCondition,
                Severity::Error,
                format!("{base}/condition/time/days"),
                "time window can never fire: its weekday set is empty",
            ));
        }
    }
    if condition.requester_nearby && condition.spaces.is_empty() {
        out.push(Diagnostic::new(
            LintCode::UnsatisfiableCondition,
            Severity::Warning,
            format!("{base}/condition/requester_nearby"),
            "requester_nearby has no effect without condition spaces",
        ));
    }
    if let Some(scope) = scope_space {
        if !condition.spaces.is_empty()
            && condition
                .spaces
                .iter()
                .all(|&s| !corpus.model.overlap(scope, s))
        {
            out.push(Diagnostic::new(
                LintCode::UnsatisfiableCondition,
                Severity::Error,
                format!("{base}/condition/spaces"),
                "condition spaces are disjoint from the scope: the rule can never apply",
            ));
        }
    }
}
