//! TA002 — unsatisfiable and vacuous conditions.
//!
//! A condition that can never hold makes its policy dead weight (an error:
//! the author believed something is being enforced that is not), and a
//! clause with no effect (proximity without spaces) usually means the
//! author's intent was lost in translation (a warning). Purely local:
//! each condition is checked against the spatial model only.

use tippers_policy::Condition;
use tippers_spatial::SpaceId;

use super::{policy_owners, preference_owners, Pass};
use crate::corpus::DeploymentCorpus;
use crate::diag::{Diagnostic, LintCode, Severity};
use crate::engine::{Context, UnitId};

pub(crate) struct Unsat;

impl Pass for Unsat {
    fn code(&self) -> LintCode {
        LintCode::UnsatisfiableCondition
    }

    fn owners(&self, cx: &Context<'_>) -> Vec<UnitId> {
        let mut owners = policy_owners(cx);
        owners.extend(preference_owners(cx));
        owners
    }

    fn may_interact(&self, _cx: &Context<'_>, _owner: UnitId, _changed: UnitId) -> bool {
        false
    }

    fn check(&self, cx: &Context<'_>, owner: UnitId) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        match owner {
            UnitId::Policy(id) => {
                for p in cx.policies_with_id(id) {
                    check_condition(
                        cx.corpus,
                        &p.condition,
                        Some(p.space),
                        &format!("/policies/{}", p.id.0),
                        &mut out,
                    );
                }
            }
            UnitId::Preference(id) => {
                for p in cx.preferences_with_id(id) {
                    check_condition(
                        cx.corpus,
                        &p.scope.condition,
                        p.scope.space,
                        &format!("/preferences/{}/scope", p.id.0),
                        &mut out,
                    );
                }
            }
            _ => {}
        }
        out
    }
}

fn check_condition(
    corpus: &DeploymentCorpus,
    condition: &Condition,
    scope_space: Option<SpaceId>,
    base: &str,
    out: &mut Vec<Diagnostic>,
) {
    if let Some(w) = &condition.time {
        if w.days.is_empty() {
            out.push(Diagnostic::new(
                LintCode::UnsatisfiableCondition,
                Severity::Error,
                format!("{base}/condition/time/days"),
                "time window can never fire: its weekday set is empty",
            ));
        }
    }
    if condition.requester_nearby && condition.spaces.is_empty() {
        out.push(Diagnostic::new(
            LintCode::UnsatisfiableCondition,
            Severity::Warning,
            format!("{base}/condition/requester_nearby"),
            "requester_nearby has no effect without condition spaces",
        ));
    }
    if let Some(scope) = scope_space {
        if !condition.spaces.is_empty()
            && condition
                .spaces
                .iter()
                .all(|&s| !corpus.model.overlap(scope, s))
        {
            out.push(Diagnostic::new(
                LintCode::UnsatisfiableCondition,
                Severity::Error,
                format!("{base}/condition/spaces"),
                "condition spaces are disjoint from the scope: the rule can never apply",
            ));
        }
    }
}
