//! TA005 — inference-leak reachability.
//!
//! §IV.B.2: users care about "the abstract information that can be inferred
//! from an observation", not just the raw observation. This pass reads each
//! resource's disclosure set and its fixpoint closure from the fact graph
//! (computed once by the engine's solver) and reports every category the
//! collected data transitively reveals that the document never discloses —
//! with the rule chain as evidence. Leaks reaching a sensitive category
//! (identity, health) are errors; the rest are warnings.

use super::{document_owners, Pass};
use crate::diag::{Diagnostic, LintCode, Severity};
use crate::engine::{Context, UnitId};

pub(crate) struct Leak;

impl Pass for Leak {
    fn code(&self) -> LintCode {
        LintCode::InferenceLeak
    }

    fn owners(&self, cx: &Context<'_>) -> Vec<UnitId> {
        document_owners(cx)
    }

    fn may_interact(&self, _cx: &Context<'_>, _owner: UnitId, _changed: UnitId) -> bool {
        false
    }

    fn check(&self, cx: &Context<'_>, owner: UnitId) -> Vec<Diagnostic> {
        let UnitId::Document(k) = owner else {
            return Vec::new();
        };
        let corpus = cx.corpus;
        let mut out = Vec::new();
        for i in 0..corpus.documents[k].resources.len() {
            let Some(disclosed) = cx.facts.disclosed.get(&(k, i)) else {
                continue;
            };
            let path = format!("/documents/{k}/resources/{i}/observations");
            for inference in &cx.facts.inferences[&(k, i)] {
                let covered = disclosed
                    .iter()
                    .any(|&d| corpus.ontology.data.is_a(inference.concept, d));
                if covered {
                    continue;
                }
                let sensitive = corpus
                    .sensitive
                    .iter()
                    .any(|&s| corpus.ontology.data.is_a(inference.concept, s));
                let severity = if sensitive {
                    Severity::Error
                } else {
                    Severity::Warning
                };
                let key = corpus.ontology.data.concept(inference.concept).key();
                let qualifier = if sensitive { " sensitive" } else { "" };
                out.push(
                    Diagnostic::new(
                        LintCode::InferenceLeak,
                        severity,
                        path.clone(),
                        format!(
                            "collected data transitively reveals{qualifier} category `{key}` \
                             (confidence {:.2}) that the document never discloses",
                            inference.confidence
                        ),
                    )
                    .with_evidence(inference.via.clone()),
                );
            }
        }
        out
    }
}
