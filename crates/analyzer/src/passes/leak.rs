//! TA005 — inference-leak reachability.
//!
//! §IV.B.2: users care about "the abstract information that can be inferred
//! from an observation", not just the raw observation. This pass runs the
//! ontology's forward-chaining closure over each document's disclosed
//! observations and reports every category the collected data transitively
//! reveals that the document never discloses — with the rule chain as
//! evidence. Leaks reaching a sensitive category (identity, health) are
//! errors; the rest are warnings.

use tippers_ontology::ConceptId;

use crate::corpus::DeploymentCorpus;
use crate::diag::{Diagnostic, LintCode, Severity};

pub(crate) fn run(corpus: &DeploymentCorpus, out: &mut Vec<Diagnostic>) {
    for (k, doc) in corpus.documents.iter().enumerate() {
        for (i, r) in doc.resources.iter().enumerate() {
            let mut disclosed: Vec<ConceptId> = r
                .observations
                .iter()
                .filter_map(|obs| corpus.observation_category(obs))
                .collect();
            if disclosed.is_empty() {
                if let Some(sensor) = &r.sensor {
                    disclosed.extend(corpus.sensor_category(&sensor.kind));
                }
            }
            disclosed.sort_unstable();
            disclosed.dedup();
            if disclosed.is_empty() {
                continue;
            }
            let path = format!("/documents/{k}/resources/{i}/observations");
            for inference in corpus.ontology.inference().closure(&disclosed) {
                let covered = disclosed
                    .iter()
                    .any(|&d| corpus.ontology.data.is_a(inference.concept, d));
                if covered {
                    continue;
                }
                let sensitive = corpus
                    .sensitive
                    .iter()
                    .any(|&s| corpus.ontology.data.is_a(inference.concept, s));
                let severity = if sensitive {
                    Severity::Error
                } else {
                    Severity::Warning
                };
                let key = corpus.ontology.data.concept(inference.concept).key();
                let qualifier = if sensitive { " sensitive" } else { "" };
                out.push(
                    Diagnostic::new(
                        LintCode::InferenceLeak,
                        severity,
                        path.clone(),
                        format!(
                            "collected data transitively reveals{qualifier} category `{key}` \
                             (confidence {:.2}) that the document never discloses",
                            inference.confidence
                        ),
                    )
                    .with_evidence(inference.via.clone()),
                );
            }
        }
    }
}
