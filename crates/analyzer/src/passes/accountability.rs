//! TA010 — accountability gaps.
//!
//! The runtime can only *prove* what the deployment *bounds*. Two gaps
//! defeat it: a policy that stores data with no (or a zero) retention
//! element gives the enforced-retention sweeper nothing to sweep — the
//! rows never expire, so no deletion certificate will ever exist for
//! them; and a purpose that policies share data under with no declared
//! disclosure quota is an unbounded query channel — nothing stops a
//! service from re-assembling a trajectory one release at a time.
//!
//! Both are warnings: the deployment works, it just cannot be held to
//! account for these flows. The per-policy retention gap is local; the
//! quota gap aggregates over every sharing policy, so it lives on the
//! global owner (recomputed on every update — it is a cheap scan).

use std::collections::BTreeMap;

use tippers_ontology::ConceptId;
use tippers_policy::validate::escape_pointer_segment;
use tippers_policy::DataAction;

use super::{policy_owners, Pass};
use crate::diag::{Diagnostic, LintCode, Severity};
use crate::engine::{Context, UnitId};

pub(crate) struct Accountability;

impl Pass for Accountability {
    fn code(&self) -> LintCode {
        LintCode::AccountabilityGap
    }

    fn owners(&self, cx: &Context<'_>) -> Vec<UnitId> {
        let mut owners = vec![UnitId::Global];
        owners.extend(policy_owners(cx));
        owners
    }

    fn may_interact(&self, _cx: &Context<'_>, _owner: UnitId, _changed: UnitId) -> bool {
        false
    }

    fn check(&self, cx: &Context<'_>, owner: UnitId) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        match owner {
            // Gap 1: stored data that never expires cannot be provably
            // deleted.
            UnitId::Policy(id) => {
                for p in cx.policies_with_id(id) {
                    if !p.actions.contains(DataAction::Store) {
                        continue;
                    }
                    let unretained = match p.retention {
                        None => true,
                        Some(r) => r.as_seconds() <= 0,
                    };
                    if !unretained {
                        continue;
                    }
                    let what = match p.retention {
                        None => "declares no retention element",
                        Some(_) => "declares a zero retention element",
                    };
                    out.push(Diagnostic::new(
                        LintCode::AccountabilityGap,
                        Severity::Warning,
                        format!("/policies/{}/retention", p.id.0),
                        format!(
                            "{} (`{}`) stores data but {what}: the retention sweeper can never certify its deletion",
                            p.id, p.name
                        ),
                    ));
                }
            }
            // Gap 2: a sharing purpose with no disclosure quota is
            // unbounded.
            UnitId::Global => {
                let mut sharing: BTreeMap<ConceptId, Vec<String>> = BTreeMap::new();
                for p in cx.resolvable_policies() {
                    if p.actions.contains(DataAction::Share) {
                        sharing.entry(p.purpose).or_default().push(p.id.to_string());
                    }
                }
                for (purpose, evidence) in sharing {
                    let key = cx.corpus.ontology.purposes.key_of(purpose);
                    if cx.corpus.quotas.contains_key(key) {
                        continue;
                    }
                    let seg = escape_pointer_segment(key);
                    out.push(
                        Diagnostic::new(
                            LintCode::AccountabilityGap,
                            Severity::Warning,
                            format!("/quotas/{seg}"),
                            format!(
                                "purpose `{key}` is shared under but has no disclosure quota: nothing bounds how often it can be queried"
                            ),
                        )
                        .with_evidence(evidence),
                    );
                }
            }
            _ => {}
        }
        out
    }
}
