//! TA008 — missing priority mapping.
//!
//! The runtime sheds load by admission class (Emergency > Interactive >
//! Batch). A service policy whose service has no declared class in the
//! corpus's priority map is classed by whatever priority the *requester*
//! self-declares under overload — the operator never said what that
//! service's traffic is worth, so a batch job can dress up as interactive.
//! Advisory rather than structural, hence a warning. The priorities map
//! itself is global state, so its sanity check lives on the global owner.

use tippers_policy::validate::escape_pointer_segment;

use super::{policy_owners, Pass};
use crate::diag::{Diagnostic, LintCode, Severity};
use crate::engine::{Context, UnitId};

/// Recognized admission class names, mirroring the runtime's
/// `Priority` ladder.
const CLASSES: [&str; 3] = ["emergency", "interactive", "batch"];

pub(crate) struct Priority;

impl Pass for Priority {
    fn code(&self) -> LintCode {
        LintCode::MissingPriorityMapping
    }

    fn owners(&self, cx: &Context<'_>) -> Vec<UnitId> {
        let mut owners = vec![UnitId::Global];
        owners.extend(policy_owners(cx));
        owners
    }

    fn may_interact(&self, _cx: &Context<'_>, _owner: UnitId, _changed: UnitId) -> bool {
        false
    }

    fn check(&self, cx: &Context<'_>, owner: UnitId) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let mut warn = |path: String, message: String| {
            out.push(Diagnostic::new(
                LintCode::MissingPriorityMapping,
                Severity::Warning,
                path,
                message,
            ));
        };
        match owner {
            UnitId::Global => {
                for (service, class) in &cx.corpus.priorities {
                    if !CLASSES.contains(&class.as_str()) {
                        let seg = escape_pointer_segment(service);
                        warn(
                            format!("/priorities/{seg}"),
                            format!(
                                "unknown priority class `{class}` for service `{service}` \
                                 (expected emergency, interactive or batch)"
                            ),
                        );
                    }
                }
            }
            UnitId::Policy(id) => {
                for p in cx.policies_with_id(id) {
                    let Some(service) = &p.service else { continue };
                    if !cx.corpus.priorities.contains_key(service.as_str()) {
                        warn(
                            format!("/policies/{}/service", p.id.0),
                            format!(
                                "service `{service}` has no declared priority mapping; \
                                 under overload its requests are shed by \
                                 requester-declared class alone"
                            ),
                        );
                    }
                }
            }
            _ => {}
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use tippers_ontology::Ontology;
    use tippers_policy::{catalog, BuildingPolicy, PolicyId, ServiceId};
    use tippers_spatial::fixtures;

    use super::*;
    use crate::corpus::DeploymentCorpus;
    use crate::passes::collect;

    fn corpus_with_service_policy(service: &str) -> DeploymentCorpus {
        let dbh = fixtures::dbh();
        let ontology = Ontology::standard();
        let c = ontology.concepts();
        let policy = BuildingPolicy::new(
            PolicyId(1),
            "telemetry".to_owned(),
            dbh.building,
            c.occupancy,
            c.comfort,
        )
        .with_service(ServiceId::new(service.to_owned()));
        let mut corpus = DeploymentCorpus::new(ontology, dbh.model);
        corpus.policies.push(policy);
        corpus
    }

    #[test]
    fn unmapped_service_warns() {
        let corpus = corpus_with_service_policy("Butler");
        let out = collect(&Priority, &corpus);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, LintCode::MissingPriorityMapping);
        assert_eq!(out[0].severity, Severity::Warning);
        assert_eq!(out[0].path, "/policies/1/service");
    }

    #[test]
    fn mapped_service_is_clean_but_bogus_class_warns() {
        let mut corpus = corpus_with_service_policy("Butler");
        corpus
            .priorities
            .insert("Butler".to_owned(), "batch".to_owned());
        let out = collect(&Priority, &corpus);
        assert!(out.is_empty(), "{out:?}");

        corpus
            .priorities
            .insert("Butler".to_owned(), "turbo".to_owned());
        let out = collect(&Priority, &corpus);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].path, "/priorities/Butler");
    }

    #[test]
    fn figures_corpus_declares_every_service_class() {
        let corpus = DeploymentCorpus::figures();
        assert_eq!(
            corpus
                .priorities
                .get(catalog::services::emergency().as_str()),
            Some(&"emergency".to_owned())
        );
        let out = collect(&Priority, &corpus);
        assert!(out.is_empty(), "{out:?}");
    }
}
