//! TA003 — dead and shadowed preferences.
//!
//! A preference is dead when removing it changes nothing: (a) a same-user
//! preference with higher precedence covers its entire scope, (b) it allows
//! flows a mandatory policy mandates anyway, or (c) it restricts flows a
//! mandatory policy overrides under the policy-prevails strategy. Scope
//! comparison is conservative — only provable subsumption (taxonomy `is_a`,
//! spatial containment, identical conditions) counts, so every report is a
//! true positive.

use tippers_policy::{
    BuildingPolicy, Effect, PreferenceScope, ResolutionStrategy, SubjectScope, UserPreference,
};

use super::{preference_owners, Pass};
use crate::corpus::DeploymentCorpus;
use crate::diag::{Diagnostic, LintCode, Severity};
use crate::engine::{Context, UnitId};

pub(crate) struct Shadow;

impl Pass for Shadow {
    fn code(&self) -> LintCode {
        LintCode::DeadPreference
    }

    fn owners(&self, cx: &Context<'_>) -> Vec<UnitId> {
        preference_owners(cx)
    }

    /// A preference's verdict depends on same-user preferences (shadowing)
    /// and on mandatory policies (coverage); anything else is irrelevant.
    fn may_interact(&self, cx: &Context<'_>, owner: UnitId, changed: UnitId) -> bool {
        match changed {
            UnitId::Policy(c) => cx.policies_with_id(c).iter().any(|p| p.is_required()),
            UnitId::Preference(c) => {
                let UnitId::Preference(o) = owner else {
                    return false;
                };
                let users: Vec<_> = cx.preferences_with_id(o).iter().map(|a| a.user).collect();
                cx.preferences_with_id(c)
                    .iter()
                    .any(|b| users.contains(&b.user))
            }
            _ => false,
        }
    }

    fn check(&self, cx: &Context<'_>, owner: UnitId) -> Vec<Diagnostic> {
        let UnitId::Preference(id) = owner else {
            return Vec::new();
        };
        let corpus = cx.corpus;
        let prefs = cx.resolvable_preferences();
        let policies = cx.resolvable_policies();
        let mut out = Vec::new();

        for a in cx.preferences_with_id(id) {
            let base = format!("/preferences/{}", a.id.0);
            // The lowest-id witness keeps the report independent of the order
            // preferences were supplied in.
            if let Some(b) = prefs
                .iter()
                .filter(|b| b.user == a.user && b.id != a.id)
                .filter(|b| scope_subsumes(corpus, &b.scope, &a.scope))
                .filter(|b| takes_precedence(b, a))
                .min_by_key(|b| b.id)
            {
                out.push(
                    Diagnostic::new(
                        LintCode::DeadPreference,
                        Severity::Warning,
                        base.clone(),
                        format!(
                            "{} is never effective: {} covers its entire scope with higher precedence",
                            a.id, b.id
                        ),
                    )
                    .with_evidence(vec![b.id.to_string()]),
                );
            }

            let covering_required = policies
                .iter()
                .filter(|p| p.is_required() && policy_covers(corpus, p, a))
                .min_by_key(|p| p.id);
            if let Some(p) = covering_required {
                if a.effect == Effect::Allow {
                    out.push(
                        Diagnostic::new(
                            LintCode::DeadPreference,
                            Severity::Warning,
                            base.clone(),
                            format!(
                                "{} is redundant: mandatory policy `{}` ({}) already mandates every flow it allows",
                                a.id, p.name, p.id
                            ),
                        )
                        .with_evidence(vec![p.id.to_string()]),
                    );
                } else if corpus.strategy == ResolutionStrategy::PolicyPrevails {
                    out.push(
                        Diagnostic::new(
                            LintCode::DeadPreference,
                            Severity::Warning,
                            base.clone(),
                            format!(
                                "{} is never honored: mandatory policy `{}` ({}) overrides it everywhere under the policy-prevails strategy",
                                a.id, p.name, p.id
                            ),
                        )
                        .with_evidence(vec![p.id.to_string()]),
                    );
                }
            }
        }
        out
    }
}

/// True if `b` wins over `a` for every flow both cover. On fully equal
/// precedence (same priority, same effect) the lower id is kept and the
/// higher id reported, so the verdict is order-independent.
fn takes_precedence(b: &UserPreference, a: &UserPreference) -> bool {
    if b.priority != a.priority {
        return b.priority > a.priority;
    }
    if b.effect.strictness() != a.effect.strictness() {
        return b.effect.strictness() > a.effect.strictness();
    }
    b.effect == a.effect && b.id < a.id
}

/// True if `outer` provably covers every flow `inner` covers.
fn scope_subsumes(
    corpus: &DeploymentCorpus,
    outer: &PreferenceScope,
    inner: &PreferenceScope,
) -> bool {
    let ont = &corpus.ontology;
    let data_ok = match (outer.data, inner.data) {
        (None, _) => true,
        (Some(_), None) => false,
        (Some(o), Some(i)) => ont.data.is_a(i, o),
    };
    let purpose_ok = match (outer.purpose, inner.purpose) {
        (None, _) => true,
        (Some(_), None) => false,
        (Some(o), Some(i)) => ont.purposes.is_a(i, o),
    };
    let service_ok = match (&outer.service, &inner.service) {
        (None, _) => true,
        (Some(_), None) => false,
        (Some(o), Some(i)) => o == i,
    };
    let space_ok = match (outer.space, inner.space) {
        (None, _) => true,
        (Some(_), None) => false,
        (Some(o), Some(i)) => corpus.model.contains(o, i),
    };
    let condition_ok = outer.condition.is_always() || outer.condition == inner.condition;
    data_ok && purpose_ok && service_ok && space_ok && condition_ok
}

/// True if the mandatory policy provably governs every flow the preference
/// covers.
fn policy_covers(
    corpus: &DeploymentCorpus,
    policy: &BuildingPolicy,
    pref: &UserPreference,
) -> bool {
    let ont = &corpus.ontology;
    let data_ok = pref
        .scope
        .data
        .is_some_and(|d| ont.data.is_a(d, policy.data));
    let purpose_ok = pref
        .scope
        .purpose
        .is_some_and(|p| ont.purposes.is_a(p, policy.purpose));
    let service_ok = match &policy.service {
        None => true,
        Some(ps) => pref.scope.service.as_ref() == Some(ps),
    };
    let space_ok = match pref.scope.space {
        Some(s) => corpus.model.contains(policy.space, s),
        None => policy.space == corpus.model.root(),
    };
    let subjects_ok = match &policy.subjects {
        SubjectScope::Everyone => true,
        SubjectScope::Users(users) => users.contains(&pref.user),
        // A user's group membership is unknown statically; never claim
        // coverage through a group scope.
        SubjectScope::Groups(_) => false,
    };
    let condition_ok = policy.condition.is_always() || policy.condition == pref.scope.condition;
    data_ok && purpose_ok && service_ok && space_ok && subjects_ok && condition_ok
}
