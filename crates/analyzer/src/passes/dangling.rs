//! TA001 — dangling references.
//!
//! Cross-checks every name and id the corpus mentions against the spatial
//! model, the taxonomies, and the service catalog. A policy over a space
//! that does not exist silently protects nobody, so these are errors.
//! Purely local: each unit is checked against global configuration only,
//! so no other unit's change can alter its verdict.

use tippers_policy::validate::escape_pointer_segment;

use super::{raw_unit_owners, Pass};
use crate::diag::{Diagnostic, LintCode, Severity};
use crate::engine::{Context, UnitId};

pub(crate) struct Dangling;

impl Pass for Dangling {
    fn code(&self) -> LintCode {
        LintCode::DanglingReference
    }

    fn owners(&self, cx: &Context<'_>) -> Vec<UnitId> {
        raw_unit_owners(cx)
    }

    fn may_interact(&self, _cx: &Context<'_>, _owner: UnitId, _changed: UnitId) -> bool {
        false
    }

    fn check(&self, cx: &Context<'_>, owner: UnitId) -> Vec<Diagnostic> {
        let corpus = cx.corpus;
        let mut out = Vec::new();
        let mut error = |path: String, message: String| {
            out.push(Diagnostic::new(
                LintCode::DanglingReference,
                Severity::Error,
                path,
                message,
            ));
        };

        match owner {
            UnitId::Global => {}
            UnitId::Document(k) => {
                let doc = &corpus.documents[k];
                for (i, r) in doc.resources.iter().enumerate() {
                    let base = format!("/documents/{k}/resources/{i}");
                    if let Some(spatial) = r
                        .context
                        .as_ref()
                        .and_then(|c| c.location.as_ref())
                        .and_then(|l| l.spatial.as_ref())
                    {
                        if corpus.resolve_space(&spatial.name).is_none() {
                            error(
                                format!("{base}/context/location/spatial/name"),
                                format!("unknown space `{}`", spatial.name),
                            );
                        }
                    }
                    for (j, obs) in r.observations.iter().enumerate() {
                        if let Some(key) = &obs.category {
                            if corpus.ontology.data.id(key).is_none() {
                                error(
                                    format!("{base}/observations/{j}/category"),
                                    format!("unknown data category `{key}`"),
                                );
                            }
                        }
                    }
                    if let Some(service) = &r.purpose.service_id {
                        if !corpus.services.is_empty() && !corpus.services.contains(service) {
                            error(
                                format!("{base}/purpose/service_id"),
                                format!("unknown service `{service}`"),
                            );
                        }
                    }
                }
            }
            UnitId::Policy(id) => {
                for p in corpus.policies.iter().filter(|p| p.id.0 == id) {
                    let base = format!("/policies/{}", p.id.0);
                    if p.space.index() >= corpus.model.len() {
                        error(
                            format!("{base}/space"),
                            format!("{} references a space outside the spatial model", p.id),
                        );
                    }
                    for &s in &p.condition.spaces {
                        if s.index() >= corpus.model.len() {
                            error(
                                format!("{base}/condition/spaces"),
                                format!("{} conditions on a space outside the spatial model", p.id),
                            );
                        }
                    }
                    if p.data.index() >= corpus.ontology.data.len() {
                        error(
                            format!("{base}/data"),
                            format!("{} references a data category outside the ontology", p.id),
                        );
                    }
                    if p.purpose.index() >= corpus.ontology.purposes.len() {
                        error(
                            format!("{base}/purpose"),
                            format!("{} references a purpose outside the ontology", p.id),
                        );
                    }
                    if let Some(sc) = p.sensor_class {
                        if sc.index() >= corpus.ontology.sensors.len() {
                            error(
                                format!("{base}/sensor_class"),
                                format!("{} references a sensor class outside the ontology", p.id),
                            );
                        }
                    }
                    if let Some(service) = &p.service {
                        if !corpus.services.is_empty()
                            && !corpus.services.contains(service.as_str())
                        {
                            let seg = escape_pointer_segment(service.as_str());
                            error(
                                format!("{base}/service/{seg}"),
                                format!("unknown service `{service}`"),
                            );
                        }
                    }
                }
            }
            UnitId::Preference(id) => {
                for p in corpus.preferences.iter().filter(|p| p.id.0 == id) {
                    let base = format!("/preferences/{}", p.id.0);
                    if let Some(s) = p.scope.space {
                        if s.index() >= corpus.model.len() {
                            error(
                                format!("{base}/scope/space"),
                                format!("{} references a space outside the spatial model", p.id),
                            );
                        }
                    }
                    for &s in &p.scope.condition.spaces {
                        if s.index() >= corpus.model.len() {
                            error(
                                format!("{base}/scope/condition/spaces"),
                                format!("{} conditions on a space outside the spatial model", p.id),
                            );
                        }
                    }
                    if let Some(d) = p.scope.data {
                        if d.index() >= corpus.ontology.data.len() {
                            error(
                                format!("{base}/scope/data"),
                                format!("{} references a data category outside the ontology", p.id),
                            );
                        }
                    }
                    if let Some(pp) = p.scope.purpose {
                        if pp.index() >= corpus.ontology.purposes.len() {
                            error(
                                format!("{base}/scope/purpose"),
                                format!("{} references a purpose outside the ontology", p.id),
                            );
                        }
                    }
                    if let Some(service) = &p.scope.service {
                        if !corpus.services.is_empty()
                            && !corpus.services.contains(service.as_str())
                        {
                            let seg = escape_pointer_segment(service.as_str());
                            error(
                                format!("{base}/scope/service/{seg}"),
                                format!("unknown service `{service}`"),
                            );
                        }
                    }
                }
            }
        }
        out
    }
}
