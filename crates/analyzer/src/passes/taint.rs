//! TA013 — purpose-flow taint.
//!
//! A disclosure is only *informed* if the occupant could have learned
//! about it: the paper's capture documents advertise what each space
//! senses and **for which purposes**. This pass taints every category a
//! resolvable Collect policy or an advertised document brings into the
//! deployment, propagates the taint through the ontology's inference
//! rules (wifi association → occupancy → location trace, …), and flags
//! any Share policy whose disclosure purpose no advertised document
//! declares — data flows out of the building under a purpose occupants
//! were never told about.
//!
//! A purpose counts as declared if the sharing purpose is subsumed by
//! (is a sub-concept of) any purpose named in a document's purpose
//! section: advertising `comfort` informs occupants about sharing for
//! `hvac-optimization`. The diagnostic carries a *witness path* — the
//! collecting source, the inference chain (if any), and the sharing
//! sink — so the operator can see exactly how the tainted category
//! reaches the undeclared disclosure. No flow, no report: a Share
//! policy over a category nothing collects or discloses is dead
//! (TA001/TA012 territory), not a taint leak.

use tippers_ontology::ConceptId;
use tippers_policy::{BuildingPolicy, DataAction};

use super::{policy_owners, Pass};
use crate::diag::{Diagnostic, LintCode, Severity};
use crate::engine::{Context, UnitId};

pub(crate) struct Taint;

impl Pass for Taint {
    fn code(&self) -> LintCode {
        LintCode::UndeclaredPurposeFlow
    }

    fn owners(&self, cx: &Context<'_>) -> Vec<UnitId> {
        policy_owners(cx)
    }

    /// Documents feed both the taint sources and the declared-purpose
    /// set, so they matter to every owner that shares anything. A changed
    /// policy matters only if it collects a category that *reaches* one of
    /// the owner's shared categories (it could be, or displace, the
    /// witness source). Share-only and preference edits cannot move the
    /// verdict; neither can a source whose taint never arrives at the
    /// owner's sink.
    fn may_interact(&self, cx: &Context<'_>, owner: UnitId, changed: UnitId) -> bool {
        let UnitId::Policy(o) = owner else {
            return false;
        };
        match changed {
            UnitId::Document(_) => cx
                .policy_carriers(o)
                .any(|p| p.actions.contains(DataAction::Share)),
            UnitId::Policy(c) => cx.policy_carriers(c).any(|src| {
                src.actions.contains(DataAction::Collect)
                    && cx.policy_carriers(o).any(|snk| {
                        snk.actions.contains(DataAction::Share) && reaches(cx, src.data, snk.data)
                    })
            }),
            _ => false,
        }
    }

    fn check(&self, cx: &Context<'_>, owner: UnitId) -> Vec<Diagnostic> {
        let UnitId::Policy(id) = owner else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for q in cx.policies_with_id(id) {
            if !q.actions.contains(DataAction::Share) {
                continue;
            }
            let declared = cx
                .facts
                .declared_purposes
                .iter()
                .any(|&d| cx.corpus.ontology.purposes.is_a(q.purpose, d));
            if declared {
                continue;
            }
            if let Some(witness) = witness_path(cx, q) {
                let purpose_key = cx.corpus.ontology.purposes.key_of(q.purpose);
                let data_key = cx.corpus.ontology.data.key_of(q.data);
                out.push(
                    Diagnostic::new(
                        LintCode::UndeclaredPurposeFlow,
                        Severity::Warning,
                        format!("/policies/{}/purpose", q.id.0),
                        format!(
                            "{} (`{}`) shares `{data_key}` for purpose `{purpose_key}`, \
                             which no advertised capture document declares: the flow \
                             reaches occupants' data without informed notice",
                            q.id, q.name
                        ),
                    )
                    .with_evidence(witness),
                );
            }
        }
        out
    }
}

/// Finds the first taint source whose category reaches `q.data`, either
/// directly (taxonomy `is_a`) or through the ontology's inference
/// closure, and renders the full source → rules → sink path. Sources
/// are scanned deterministically: resolvable Collect policies in corpus
/// order, then document disclosures in `(document, resource, concept)`
/// order.
fn witness_path(cx: &Context<'_>, q: &BuildingPolicy) -> Option<Vec<String>> {
    let data = &cx.corpus.ontology.data;
    let sink = format!(
        "{} shares `{}` for purpose `{}`",
        q.id,
        data.key_of(q.data),
        cx.corpus.ontology.purposes.key_of(q.purpose)
    );
    for p in cx.resolvable_policies() {
        if !p.actions.contains(DataAction::Collect) {
            continue;
        }
        if let Some(mut path) = reach(cx, p.data, q.data) {
            let mut witness = vec![format!("{} collects `{}`", p.id, data.key_of(p.data))];
            witness.append(&mut path);
            witness.push(sink);
            return Some(witness);
        }
    }
    for ((k, i), categories) in &cx.facts.disclosed {
        for &c in categories {
            if let Some(mut path) = reach(cx, c, q.data) {
                let mut witness = vec![format!(
                    "document {k} resource {i} discloses `{}`",
                    data.key_of(c)
                )];
                witness.append(&mut path);
                witness.push(sink.clone());
                return Some(witness);
            }
        }
    }
    None
}

/// Allocation-free reachability test matching [`reach`]'s verdict, for
/// the hot `may_interact` scans.
fn reaches(cx: &Context<'_>, source: ConceptId, target: ConceptId) -> bool {
    let data = &cx.corpus.ontology.data;
    data.is_a(source, target)
        || cx
            .corpus
            .ontology
            .inferable_from(source)
            .iter()
            .any(|inf| data.is_a(inf.concept, target))
}

/// Rule steps (possibly empty, for a direct taxonomy hit) taking
/// `source` to a category subsumed by `target`, or `None` if
/// unreachable.
fn reach(cx: &Context<'_>, source: ConceptId, target: ConceptId) -> Option<Vec<String>> {
    let data = &cx.corpus.ontology.data;
    if data.is_a(source, target) {
        return Some(Vec::new());
    }
    let inf = cx
        .corpus
        .ontology
        .inferable_from(source)
        .iter()
        .find(|inf| data.is_a(inf.concept, target))?;
    let mut path: Vec<String> = inf.via.iter().map(|r| format!("rule `{r}`")).collect();
    path.push(format!(
        "infers `{}` at confidence {:.2}",
        data.key_of(inf.concept),
        inf.confidence
    ));
    Some(path)
}

#[cfg(test)]
mod tests {
    use tippers_ontology::Ontology;
    use tippers_policy::{ActionSet, PolicyId};
    use tippers_spatial::fixtures;

    use super::*;
    use crate::corpus::DeploymentCorpus;
    use crate::passes::collect;

    /// One Collect policy over wifi association, one Share policy over
    /// occupancy (reachable from wifi via the standard inference rules)
    /// for an undeclared purpose, no documents.
    fn base_corpus() -> DeploymentCorpus {
        let dbh = fixtures::dbh();
        let ontology = Ontology::standard();
        let c = ontology.concepts().clone();
        let mut corpus = DeploymentCorpus::new(ontology, dbh.model.clone());
        corpus.policies = vec![
            BuildingPolicy::new(
                PolicyId(1),
                "lobby wifi",
                dbh.lobby,
                c.wifi_association,
                c.comfort,
            )
            .with_actions(ActionSet::of(&[DataAction::Collect])),
            BuildingPolicy::new(
                PolicyId(2),
                "occupancy feed",
                dbh.building,
                c.occupancy,
                c.marketing,
            )
            .with_actions(ActionSet::of(&[DataAction::Share])),
        ];
        corpus
    }

    #[test]
    fn an_undeclared_share_reached_by_inference_carries_its_witness() {
        let out = collect(&Taint, &base_corpus());
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].code, LintCode::UndeclaredPurposeFlow);
        assert_eq!(out[0].severity, Severity::Warning);
        assert_eq!(out[0].path, "/policies/2/purpose");
        let witness = out[0].evidence.join(" -> ");
        assert!(witness.contains("wifi-association"), "{witness}");
        assert!(witness.contains("rule `"), "{witness}");
        assert!(
            witness.contains("shares `data/presence/occupancy`"),
            "{witness}"
        );
    }

    #[test]
    fn declaring_the_purpose_in_a_document_silences_the_pass() {
        let mut corpus = base_corpus();
        corpus
            .documents
            .push(tippers_policy::figures::fig2_document());
        // fig2 declares emergency-response; marketing is still undeclared.
        let out = collect(&Taint, &corpus);
        assert_eq!(out.len(), 1, "{out:?}");

        let c = corpus.ontology.concepts().clone();
        corpus.policies[1].purpose = c.emergency_response;
        let out = collect(&Taint, &corpus);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn a_share_with_no_reaching_flow_is_silent() {
        let mut corpus = base_corpus();
        let c = corpus.ontology.concepts().clone();
        // Nothing collects energy data and no document discloses it.
        corpus.policies[1].data = c.power_consumption;
        assert!(collect(&Taint, &corpus).is_empty());
    }

    #[test]
    fn a_declared_sub_purpose_counts_as_declared() {
        let mut corpus = base_corpus();
        let mut doc = tippers_policy::figures::fig2_document();
        let section = &mut doc.resources[0].purpose;
        let block = section.purposes.values().next().unwrap().clone();
        section
            .purposes
            .insert("providing_service".to_owned(), block);
        corpus.documents.push(doc);
        let c = corpus.ontology.concepts().clone();
        // Navigation is a sub-purpose of the declared providing-service.
        corpus.policies[1].purpose = c.navigation;
        let out = collect(&Taint, &corpus);
        assert!(out.is_empty(), "{out:?}");
    }
}
