//! TA007 — wire-format validation.
//!
//! Wraps [`tippers_policy::validate_document`] so structural problems in
//! advertised documents surface through the same diagnostics pipeline
//! (stable code, corpus-relative path, suppression) as every other finding.

use tippers_policy::validate_document;

use crate::corpus::DeploymentCorpus;
use crate::diag::{Diagnostic, LintCode};

pub(crate) fn run(corpus: &DeploymentCorpus, out: &mut Vec<Diagnostic>) {
    for (k, doc) in corpus.documents.iter().enumerate() {
        for issue in validate_document(doc) {
            out.push(Diagnostic::new(
                LintCode::WireFormat,
                issue.severity,
                format!("/documents/{k}{}", issue.path),
                issue.message,
            ));
        }
    }
}
