//! TA007 — wire-format validation.
//!
//! Wraps [`tippers_policy::validate_document`] so structural problems in
//! advertised documents surface through the same diagnostics pipeline
//! (stable code, corpus-relative path, suppression) as every other finding.
//! Purely local to each document.

use tippers_policy::validate_document;

use super::{document_owners, Pass};
use crate::diag::{Diagnostic, LintCode};
use crate::engine::{Context, UnitId};

pub(crate) struct Wire;

impl Pass for Wire {
    fn code(&self) -> LintCode {
        LintCode::WireFormat
    }

    fn owners(&self, cx: &Context<'_>) -> Vec<UnitId> {
        document_owners(cx)
    }

    fn may_interact(&self, _cx: &Context<'_>, _owner: UnitId, _changed: UnitId) -> bool {
        false
    }

    fn check(&self, cx: &Context<'_>, owner: UnitId) -> Vec<Diagnostic> {
        let UnitId::Document(k) = owner else {
            return Vec::new();
        };
        validate_document(&cx.corpus.documents[k])
            .into_iter()
            .map(|issue| {
                Diagnostic::new(
                    LintCode::WireFormat,
                    issue.severity,
                    format!("/documents/{k}{}", issue.path),
                    issue.message,
                )
            })
            .collect()
    }
}
