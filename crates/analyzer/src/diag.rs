//! Diagnostics: stable lint codes, severities, and JSON-pointer locations.
//!
//! Every finding the analyzer emits is a [`Diagnostic`] carrying a stable
//! [`LintCode`] (`TA001`–`TA011`), a [`Severity`] reused from the wire-format
//! validator, a JSON-pointer-style path identifying *where* in the corpus the
//! problem lives, and free-form evidence strings (rule chains, counterpart
//! ids) that make the finding actionable.

use std::fmt;

use serde::{de, Deserialize, Serialize, Value};

pub use tippers_policy::validate::Severity;

/// Stable identifier of one analyzer finding kind.
///
/// Codes are append-only: once published, a code never changes meaning, so
/// suppressions (`"lint-allow": ["TA004"]`) stay valid across versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// `TA001` — dangling reference: a policy, preference or document names
    /// a space, data category, sensor class or service that does not exist.
    DanglingReference,
    /// `TA002` — unsatisfiable condition: a guard that can never hold, such
    /// as a time window over an empty weekday set.
    UnsatisfiableCondition,
    /// `TA003` — dead preference: fully subsumed by a stricter preference of
    /// the same user, or by a mandatory policy.
    DeadPreference,
    /// `TA004` — retention contradiction: a policy retains data longer than
    /// a stricter policy covering an enclosing scope allows.
    RetentionContradiction,
    /// `TA005` — inference leak: collected data transitively reveals a
    /// category the document's disclosures never mention.
    InferenceLeak,
    /// `TA006` — conflict pre-flight: a policy/preference conflict that will
    /// surface at runtime.
    ConflictPreflight,
    /// `TA007` — wire-format issue found by structural validation.
    WireFormat,
    /// `TA008` — missing priority mapping: a policy names a service whose
    /// admission class (emergency/interactive/batch) is never declared, so
    /// overload shedding falls back to requester-declared priorities.
    MissingPriorityMapping,
    /// `TA009` — replication misconfiguration: a replica set smaller than
    /// the declared commit quorum (every commit stalls), a quorum that is
    /// not a majority (two disjoint quorums could acknowledge divergent
    /// histories), or a bounded-staleness read window with no replica set
    /// to serve it.
    ReplicationMisconfigured,
    /// `TA010` — accountability gap: a policy that stores data but declares
    /// no (or a zero) retention, so the enforced-retention sweeper can
    /// never certify its deletion; or a sharing purpose with no disclosure
    /// quota configured, so nothing bounds how often it can be queried.
    AccountabilityGap,
    /// `TA011` — capture-enforcement gap: the declared ingest pipeline has
    /// no (or a zero) mailbox bound, so a sensor firehose buffers without
    /// limit instead of backpressuring the links; or a policy authorizes
    /// collection/storage in a space no capture zone covers, so its
    /// observations reach the store without passing the capture-time
    /// filter.
    CaptureGap,
    /// `TA012` — cross-document shadowing: a policy whose effective decision
    /// is identical under every reachable context because another policy
    /// dominates it (broader space/data/purpose/subjects, same-or-stronger
    /// modality, identical retention), or an advertised resource that is an
    /// exact duplicate of one advertised earlier. Removing the shadowed
    /// document changes nothing, so it is dead weight that still has to be
    /// kept consistent.
    CrossDocumentShadow,
    /// `TA013` — undeclared purpose flow: a collected data category
    /// transitively reaches (via taxonomy subsumption and the ontology's
    /// inference rules) a policy that shares data under a purpose no
    /// advertised document ever declares to occupants. The diagnostic
    /// carries a witness path: the collecting source, the rule chain, and
    /// the sharing sink.
    UndeclaredPurposeFlow,
    /// `TA014` — uncompilable construct: something the upcoming policy
    /// compiler cannot flatten into finite decision tables — an unbounded
    /// runtime-context guard (`requester_nearby` ranges over continuous
    /// positions), or a cycle in the ontology's inference rules (the
    /// compiler cannot stratify them).
    Uncompilable,
    /// `TA015` — unused suppression: a `"lint-allow"` entry (per-document)
    /// or corpus/CLI `--allow` code that suppressed nothing in this run.
    /// Stale suppressions silently mask future regressions, mirroring
    /// rustc's `unused_allow`.
    UnusedAllow,
    /// `TA016` — shard-topology misconfiguration: a sharded deployment
    /// declaring zero shards (routing is undefined and the runtime
    /// refuses to start), a zone pinned to a shard index outside the
    /// declared range, a zone claimed by two different shards (split
    /// ownership makes replay and fail-closed accounting ambiguous), or
    /// a capture zone the declared topology maps to no shard — its
    /// subjectless observations would have no owner to enforce them.
    ShardTopology,
}

impl LintCode {
    /// All codes, in numeric order.
    pub const ALL: [LintCode; 16] = [
        LintCode::DanglingReference,
        LintCode::UnsatisfiableCondition,
        LintCode::DeadPreference,
        LintCode::RetentionContradiction,
        LintCode::InferenceLeak,
        LintCode::ConflictPreflight,
        LintCode::WireFormat,
        LintCode::MissingPriorityMapping,
        LintCode::ReplicationMisconfigured,
        LintCode::AccountabilityGap,
        LintCode::CaptureGap,
        LintCode::CrossDocumentShadow,
        LintCode::UndeclaredPurposeFlow,
        LintCode::Uncompilable,
        LintCode::UnusedAllow,
        LintCode::ShardTopology,
    ];

    /// The stable textual code.
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::DanglingReference => "TA001",
            LintCode::UnsatisfiableCondition => "TA002",
            LintCode::DeadPreference => "TA003",
            LintCode::RetentionContradiction => "TA004",
            LintCode::InferenceLeak => "TA005",
            LintCode::ConflictPreflight => "TA006",
            LintCode::WireFormat => "TA007",
            LintCode::MissingPriorityMapping => "TA008",
            LintCode::ReplicationMisconfigured => "TA009",
            LintCode::AccountabilityGap => "TA010",
            LintCode::CaptureGap => "TA011",
            LintCode::CrossDocumentShadow => "TA012",
            LintCode::UndeclaredPurposeFlow => "TA013",
            LintCode::Uncompilable => "TA014",
            LintCode::UnusedAllow => "TA015",
            LintCode::ShardTopology => "TA016",
        }
    }

    /// Short human-readable name of the pass behind the code.
    pub fn name(self) -> &'static str {
        match self {
            LintCode::DanglingReference => "dangling-reference",
            LintCode::UnsatisfiableCondition => "unsatisfiable-condition",
            LintCode::DeadPreference => "dead-preference",
            LintCode::RetentionContradiction => "retention-contradiction",
            LintCode::InferenceLeak => "inference-leak",
            LintCode::ConflictPreflight => "conflict-preflight",
            LintCode::WireFormat => "wire-format",
            LintCode::MissingPriorityMapping => "priority-mapping",
            LintCode::ReplicationMisconfigured => "replication",
            LintCode::AccountabilityGap => "accountability",
            LintCode::CaptureGap => "capture",
            LintCode::CrossDocumentShadow => "cross-document-shadow",
            LintCode::UndeclaredPurposeFlow => "purpose-flow",
            LintCode::Uncompilable => "compilability",
            LintCode::UnusedAllow => "unused-allow",
            LintCode::ShardTopology => "shard-topology",
        }
    }

    /// Parses a textual code (`"TA003"`).
    pub fn parse(text: &str) -> Option<LintCode> {
        LintCode::ALL.into_iter().find(|c| c.as_str() == text)
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for LintCode {
    fn serialize_value(&self) -> Value {
        Value::String(self.as_str().to_owned())
    }
}

impl Deserialize for LintCode {
    fn deserialize_value(v: Value) -> Result<Self, de::Error> {
        let text = String::deserialize_value(v)?;
        LintCode::parse(&text).ok_or_else(|| de::Error::custom(format!("unknown lint code {text}")))
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Which pass fired.
    pub code: LintCode,
    /// How bad it is.
    pub severity: Severity,
    /// JSON-pointer-style location; policies and preferences are addressed
    /// by their stable ids (`/policies/7/retention`), documents by their
    /// position in the corpus (`/documents/0/resources/1/observations`).
    pub path: String,
    /// What is wrong.
    pub message: String,
    /// Supporting facts: inference-rule chains, counterpart policy ids, …
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub evidence: Vec<String>,
}

impl Diagnostic {
    /// A diagnostic with no evidence attached.
    pub fn new(
        code: LintCode,
        severity: Severity,
        path: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            path: path.into(),
            message: message.into(),
            evidence: Vec::new(),
        }
    }

    /// Attaches evidence strings.
    #[must_use]
    pub fn with_evidence(mut self, evidence: Vec<String>) -> Diagnostic {
        self.evidence = evidence;
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "{sev}[{}] {}: {}", self.code, self.path, self.message)
    }
}

/// The canonical ordering key: (path, code, severity, message, evidence).
/// Borrowing lets callers sort `&Diagnostic` slices without moving the
/// fat owned structs around.
pub(crate) fn sort_key(d: &Diagnostic) -> (&str, LintCode, Severity, &str, &[String]) {
    (&d.path, d.code, d.severity, &d.message, &d.evidence)
}

/// Sorts diagnostics into the canonical order (path, code, severity,
/// message, evidence) and removes exact duplicates. Every reporter and
/// every test relies on this order, which is independent of the order in
/// which passes ran or corpus items were supplied.
pub fn canonicalize(diagnostics: &mut Vec<Diagnostic>) {
    diagnostics.sort_by(|a, b| sort_key(a).cmp(&sort_key(b)));
    diagnostics.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_text() {
        for code in LintCode::ALL {
            assert_eq!(LintCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(LintCode::parse("TA999"), None);
        assert_eq!(LintCode::DeadPreference.to_string(), "TA003");
    }

    #[test]
    fn codes_serialize_as_strings() {
        let json = serde_json::to_string(&LintCode::InferenceLeak).unwrap();
        assert_eq!(json, "\"TA005\"");
        let back: LintCode = serde_json::from_str(&json).unwrap();
        assert_eq!(back, LintCode::InferenceLeak);
        assert!(serde_json::from_str::<LintCode>("\"TA042\"").is_err());
    }

    #[test]
    fn canonicalize_sorts_and_dedups() {
        let d = |path: &str, code| Diagnostic::new(code, Severity::Warning, path, "m");
        let mut all = vec![
            d("/b", LintCode::WireFormat),
            d("/a", LintCode::DeadPreference),
            d("/a", LintCode::DanglingReference),
            d("/a", LintCode::DeadPreference),
        ];
        canonicalize(&mut all);
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].path, "/a");
        assert_eq!(all[0].code, LintCode::DanglingReference);
        assert_eq!(all[2].path, "/b");
    }

    #[test]
    fn diagnostics_display_nicely() {
        let diag = Diagnostic::new(
            LintCode::RetentionContradiction,
            Severity::Error,
            "/policies/2/retention",
            "too long",
        );
        assert_eq!(
            diag.to_string(),
            "error[TA004] /policies/2/retention: too long"
        );
    }
}
