//! `tippers-lint` — static analysis over policy deployments.
//!
//! ```text
//! usage: tippers-lint [OPTIONS] [DOCUMENT.json ...]
//!
//!   --figures            lint the paper's Figure 2-4 corpus
//!   --deployment FILE    lint a JSON deployment spec
//!   --format FMT         output format: text (default), json, sarif
//!   --json               shorthand for --format json
//!   --deny-warnings      exit non-zero on warnings too
//!   --allow CODE         suppress a lint code globally (repeatable)
//!   --threads N          fan pass work across N worker threads
//!   --cache FILE         persist/reuse the per-unit diagnostic cache
//!   --changed IDS        comma-separated changed units (policy:7,doc:0,
//!                        pref:2,global); requires --cache
//!
//! exit status: 0 clean, 1 diagnostics at gating severity, 2 usage/IO error
//! ```
//!
//! Positional arguments are wire-format policy documents, linted against
//! the standard ontology and the DBH spatial model.
//!
//! Incremental mode: with `--cache FILE`, the previous run's deployment
//! spec and per-(pass, unit) diagnostics are stored alongside the report.
//! On the next run the analyzer re-checks only units that a changed unit
//! may interact with — the changed set comes from `--changed` (e.g. fed
//! by a WAL settings-mutation tail) or, absent that, from content-hash
//! diffing of the stored spec against the current one. The report is
//! byte-identical to a full re-analysis either way.

use std::process::ExitCode;

use serde::{Deserialize as _, Serialize as _};
use tippers_analyzer::{analyze_parallel, report, Analyzer, DeploymentCorpus, LintCode, UnitId};
use tippers_ontology::Ontology;
use tippers_spatial::fixtures;

/// Bumped whenever the cache layout changes; stale versions are ignored.
const CACHE_VERSION: u64 = 1;

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

struct Options {
    figures: bool,
    deployment: Option<String>,
    format: Format,
    deny_warnings: bool,
    allow: Vec<String>,
    threads: usize,
    cache: Option<String>,
    changed: Option<Vec<UnitId>>,
    documents: Vec<String>,
}

const USAGE: &str = "usage: tippers-lint [--figures] [--deployment FILE] \
                     [--format text|json|sarif] [--json] [--deny-warnings] \
                     [--allow CODE]... [--threads N] [--cache FILE] \
                     [--changed IDS] [DOCUMENT.json ...]";

fn parse_args(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut opts = Options {
        figures: false,
        deployment: None,
        format: Format::Text,
        deny_warnings: false,
        allow: Vec::new(),
        threads: 1,
        cache: None,
        changed: None,
        documents: Vec::new(),
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--figures" => opts.figures = true,
            "--deployment" => {
                opts.deployment = Some(args.next().ok_or("--deployment needs a file argument")?);
            }
            "--format" => {
                let fmt = args.next().ok_or("--format needs an argument")?;
                opts.format = match fmt.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--json" => opts.format = Format::Json,
            "--deny-warnings" => opts.deny_warnings = true,
            "--allow" => {
                let code = args.next().ok_or("--allow needs a lint-code argument")?;
                if LintCode::parse(&code).is_none() {
                    return Err(format!("unknown lint code `{code}`"));
                }
                opts.allow.push(code);
            }
            "--threads" => {
                let n = args.next().ok_or("--threads needs a count argument")?;
                opts.threads = n
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("invalid thread count `{n}`"))?;
            }
            "--cache" => {
                opts.cache = Some(args.next().ok_or("--cache needs a file argument")?);
            }
            "--changed" => {
                let ids = args.next().ok_or("--changed needs a unit-list argument")?;
                let mut units = Vec::new();
                for key in ids.split(',').filter(|k| !k.is_empty()) {
                    units.push(
                        UnitId::parse(key).ok_or_else(|| format!("unknown unit id `{key}`"))?,
                    );
                }
                opts.changed = Some(units);
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            _ => opts.documents.push(arg),
        }
    }
    if opts.figures && opts.deployment.is_some() {
        return Err("--figures and --deployment are mutually exclusive".into());
    }
    if opts.cache.is_some() && opts.deployment.is_none() {
        return Err("--cache requires --deployment".into());
    }
    if opts.changed.is_some() && opts.cache.is_none() {
        return Err("--changed requires --cache".into());
    }
    Ok(opts)
}

fn load_spec(text: &str, path: &str) -> Result<DeploymentCorpus, String> {
    DeploymentCorpus::from_spec_str(text, Ontology::standard(), fixtures::dbh().model)
        .map_err(|e| format!("cannot parse {path}: {e}"))
}

fn build_corpus(opts: &Options, spec_text: Option<&str>) -> Result<DeploymentCorpus, String> {
    let mut corpus = if opts.figures {
        DeploymentCorpus::figures()
    } else if let (Some(path), Some(text)) = (&opts.deployment, spec_text) {
        load_spec(text, path)?
    } else {
        DeploymentCorpus::new(Ontology::standard(), fixtures::dbh().model)
    };
    for path in &opts.documents {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let doc = serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
        corpus.documents.push(doc);
    }
    corpus.allow.extend(opts.allow.iter().cloned());
    Ok(corpus)
}

/// The persisted shape of `--cache FILE`: the previous run's spec text
/// (so the old corpus can be rebuilt for dependency evaluation) plus the
/// per-(pass, unit) diagnostic entries.
fn render_cache(spec_text: &str, analyzer: &Analyzer) -> serde_json::Value {
    let entries: Vec<serde_json::Value> = analyzer
        .entries()
        .into_iter()
        .map(|((code, unit), diags)| {
            let mut m = serde_json::Map::new();
            m.insert("code".into(), code.serialize_value());
            m.insert("unit".into(), unit.key().serialize_value());
            m.insert("diagnostics".into(), diags.serialize_value());
            serde_json::Value::Object(m)
        })
        .collect();
    let mut out = serde_json::Map::new();
    out.insert("version".into(), CACHE_VERSION.serialize_value());
    out.insert("spec".into(), spec_text.serialize_value());
    out.insert("entries".into(), serde_json::Value::Array(entries));
    serde_json::Value::Object(out)
}

type CacheEntries = Vec<((LintCode, UnitId), Vec<tippers_analyzer::Diagnostic>)>;

/// Parses a cache file written by [`render_cache`]. `None` (not an
/// error) on version drift so stale caches fall back to a full run.
fn parse_cache(text: &str) -> Result<Option<(String, CacheEntries)>, String> {
    let v: serde_json::Value =
        serde_json::from_str(text).map_err(|e| format!("cannot parse cache: {e}"))?;
    if v["version"] != CACHE_VERSION.serialize_value() {
        return Ok(None);
    }
    let spec =
        String::deserialize_value(v["spec"].clone()).map_err(|e| format!("cache spec: {e:?}"))?;
    let mut entries = Vec::new();
    let serde_json::Value::Array(items) = &v["entries"] else {
        return Err("cache entries is not an array".into());
    };
    for item in items {
        let code = LintCode::deserialize_value(item["code"].clone())
            .map_err(|e| format!("cache entry code: {e:?}"))?;
        let key = String::deserialize_value(item["unit"].clone())
            .map_err(|e| format!("cache entry unit: {e:?}"))?;
        let unit = UnitId::parse(&key).ok_or_else(|| format!("unknown cached unit `{key}`"))?;
        let diags = Vec::deserialize_value(item["diagnostics"].clone())
            .map_err(|e| format!("cache entry diagnostics: {e:?}"))?;
        entries.push(((code, unit), diags));
    }
    Ok(Some((spec, entries)))
}

fn run(opts: &Options) -> Result<tippers_analyzer::AnalysisReport, String> {
    let spec_text = match &opts.deployment {
        Some(path) => {
            Some(std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?)
        }
        None => None,
    };
    let corpus = build_corpus(opts, spec_text.as_deref())?;

    let Some(cache_path) = &opts.cache else {
        return Ok(analyze_parallel(&corpus, opts.threads));
    };
    let spec_text = spec_text.expect("--cache requires --deployment");
    let prior = match std::fs::read_to_string(cache_path) {
        Ok(text) => parse_cache(&text)?,
        Err(_) => None, // first run: no cache yet
    };
    let analyzer = match prior {
        Some((old_spec, entries)) => {
            let old_corpus = build_corpus(opts, Some(old_spec.as_str()))?;
            let mut analyzer = Analyzer::resume(old_corpus, entries);
            match &opts.changed {
                Some(units) => analyzer.update(corpus, units),
                None => analyzer.update_auto(corpus),
            };
            analyzer
        }
        None => Analyzer::with_threads(corpus, opts.threads),
    };
    let payload =
        serde_json::to_string_pretty(&render_cache(&spec_text, &analyzer)).expect("serializable");
    std::fs::write(cache_path, payload).map_err(|e| format!("cannot write {cache_path}: {e}"))?;
    Ok(analyzer.report().clone())
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("tippers-lint: {message}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let report = match run(&opts) {
        Ok(report) => report,
        Err(message) => {
            eprintln!("tippers-lint: {message}");
            return ExitCode::from(2);
        }
    };
    match opts.format {
        Format::Json => println!(
            "{}",
            serde_json::to_string_pretty(&report::render_json(&report)).expect("serializable")
        ),
        Format::Sarif => println!(
            "{}",
            serde_json::to_string_pretty(&report::render_sarif(&report)).expect("serializable")
        ),
        Format::Text => print!("{}", report::render_text(&report)),
    }
    let failing = report.has_errors() || (opts.deny_warnings && report.warning_count() > 0);
    if failing {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
