//! `tippers-lint` — static analysis over policy deployments.
//!
//! ```text
//! usage: tippers-lint [OPTIONS] [DOCUMENT.json ...]
//!
//!   --figures            lint the paper's Figure 2-4 corpus
//!   --deployment FILE    lint a JSON deployment spec
//!   --json               machine-readable output
//!   --deny-warnings      exit non-zero on warnings too
//!   --allow CODE         suppress a lint code globally (repeatable)
//!
//! exit status: 0 clean, 1 diagnostics at gating severity, 2 usage/IO error
//! ```
//!
//! Positional arguments are wire-format policy documents, linted against
//! the standard ontology and the DBH spatial model.

use std::process::ExitCode;

use tippers_analyzer::{analyze, report, DeploymentCorpus, LintCode};
use tippers_ontology::Ontology;
use tippers_spatial::fixtures;

struct Options {
    figures: bool,
    deployment: Option<String>,
    json: bool,
    deny_warnings: bool,
    allow: Vec<String>,
    documents: Vec<String>,
}

const USAGE: &str = "usage: tippers-lint [--figures] [--deployment FILE] [--json] \
                     [--deny-warnings] [--allow CODE]... [DOCUMENT.json ...]";

fn parse_args(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut opts = Options {
        figures: false,
        deployment: None,
        json: false,
        deny_warnings: false,
        allow: Vec::new(),
        documents: Vec::new(),
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--figures" => opts.figures = true,
            "--deployment" => {
                opts.deployment = Some(args.next().ok_or("--deployment needs a file argument")?);
            }
            "--json" => opts.json = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--allow" => {
                let code = args.next().ok_or("--allow needs a lint-code argument")?;
                if LintCode::parse(&code).is_none() {
                    return Err(format!("unknown lint code `{code}`"));
                }
                opts.allow.push(code);
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            _ => opts.documents.push(arg),
        }
    }
    if opts.figures && opts.deployment.is_some() {
        return Err("--figures and --deployment are mutually exclusive".into());
    }
    Ok(opts)
}

fn build_corpus(opts: &Options) -> Result<DeploymentCorpus, String> {
    let mut corpus = if opts.figures {
        DeploymentCorpus::figures()
    } else if let Some(path) = &opts.deployment {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        DeploymentCorpus::from_spec_str(&text, Ontology::standard(), fixtures::dbh().model)
            .map_err(|e| format!("cannot parse {path}: {e}"))?
    } else {
        DeploymentCorpus::new(Ontology::standard(), fixtures::dbh().model)
    };
    for path in &opts.documents {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let doc = serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
        corpus.documents.push(doc);
    }
    corpus.allow.extend(opts.allow.iter().cloned());
    Ok(corpus)
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("tippers-lint: {message}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let corpus = match build_corpus(&opts) {
        Ok(corpus) => corpus,
        Err(message) => {
            eprintln!("tippers-lint: {message}");
            return ExitCode::from(2);
        }
    };
    let report = analyze(&corpus);
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report::render_json(&report)).expect("serializable")
        );
    } else {
        print!("{}", report::render_text(&report));
    }
    let failing = report.has_errors() || (opts.deny_warnings && report.warning_count() > 0);
    if failing {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
