//! Static analysis over smart-building policy deployments.
//!
//! §III.B asks for a "policy reasoner" that finds problems *before*
//! enforcement. This crate is that reasoner's ahead-of-time half: a
//! multi-pass lint engine over a whole [`DeploymentCorpus`] — wire-format
//! documents, normalized policies, user preferences, the spatial model and
//! the ontology — emitting [`Diagnostic`]s with stable `TA0xx` codes.
//!
//! | Code  | Pass | Worst severity |
//! |-------|------|----------------|
//! | TA001 | dangling references (spaces, categories, services) | Error |
//! | TA002 | unsatisfiable / vacuous conditions | Error |
//! | TA003 | dead or shadowed preferences | Warning |
//! | TA004 | retention contradictions across nested scopes | Error |
//! | TA005 | inference-leak reachability (rule chain as evidence) | Error |
//! | TA006 | conflict pre-flight (runtime conflicts at lint time) | Warning |
//! | TA007 | wire-format validation | Error |
//! | TA008 | service without a declared admission-priority mapping | Warning |
//! | TA009 | replication topology (quorum vs replica set, staleness bound) | Error |
//! | TA010 | accountability gaps (unsweepable retention, unquota'd sharing purpose) | Warning |
//! | TA011 | capture-enforcement gaps (unbounded ingest mailbox, uncaptured collection zone) | Error |
//!
//! Output is canonical: diagnostics are sorted by (path, code, severity,
//! message, evidence) and deduplicated, so shuffling the corpus never
//! changes the report byte-for-byte. Suppression is two-level: a document
//! can carry `"lint-allow": ["TA004"]` to accept findings under its own
//! path, and the corpus-level [`DeploymentCorpus::allow`] set (the CLI's
//! `--allow`) suppresses codes globally.
//!
//! # Examples
//!
//! ```
//! use tippers_analyzer::{analyze, DeploymentCorpus};
//!
//! let report = analyze(&DeploymentCorpus::figures());
//! // The paper's own corpus is deployable: findings, but no errors.
//! assert!(!report.has_errors());
//! // Figure 2's WiFi document leaks inferable categories (TA005 warnings).
//! assert!(report.diagnostics.iter().any(|d| d.code.as_str() == "TA005"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
pub mod diag;
mod passes;
pub mod report;

pub use corpus::{DeploymentCorpus, IngestSpec, ReplicationSpec};
pub use diag::{Diagnostic, LintCode, Severity};

/// The outcome of one analysis run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisReport {
    /// Surviving diagnostics, in canonical order.
    pub diagnostics: Vec<Diagnostic>,
    /// Diagnostics removed by document- or corpus-level suppression.
    pub suppressed: usize,
}

/// Runs every pass over the corpus and returns the canonical report.
pub fn analyze(corpus: &DeploymentCorpus) -> AnalysisReport {
    let mut diagnostics = corpus.load_diagnostics.clone();
    passes::dangling::run(corpus, &mut diagnostics);
    passes::unsat::run(corpus, &mut diagnostics);
    passes::shadow::run(corpus, &mut diagnostics);
    passes::retention::run(corpus, &mut diagnostics);
    passes::leak::run(corpus, &mut diagnostics);
    passes::preflight::run(corpus, &mut diagnostics);
    passes::wire::run(corpus, &mut diagnostics);
    passes::priority::run(corpus, &mut diagnostics);
    passes::replication::run(corpus, &mut diagnostics);
    passes::accountability::run(corpus, &mut diagnostics);
    passes::capture::run(corpus, &mut diagnostics);
    diag::canonicalize(&mut diagnostics);

    let before = diagnostics.len();
    diagnostics.retain(|d| !is_suppressed(corpus, d));
    AnalysisReport {
        suppressed: before - diagnostics.len(),
        diagnostics,
    }
}

fn is_suppressed(corpus: &DeploymentCorpus, d: &Diagnostic) -> bool {
    if corpus.allow.contains(d.code.as_str()) {
        return true;
    }
    for (k, doc) in corpus.documents.iter().enumerate() {
        if doc.lint_allow.iter().any(|c| c == d.code.as_str()) {
            let prefix = format!("/documents/{k}");
            if d.path == prefix || d.path.starts_with(&format!("{prefix}/")) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figures_corpus_has_findings_but_no_errors() {
        let report = analyze(&DeploymentCorpus::figures());
        assert!(!report.has_errors(), "unexpected errors: {report:#?}");
        // Figure 2 leaks inferable categories; the catalog's Preference 1/2
        // conflict with mandatory Policy 2 (the paper's worked example).
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::InferenceLeak));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::ConflictPreflight));
    }

    #[test]
    fn global_allow_suppresses() {
        let mut corpus = DeploymentCorpus::figures();
        let baseline = analyze(&corpus);
        let leaks = baseline
            .diagnostics
            .iter()
            .filter(|d| d.code == LintCode::InferenceLeak)
            .count();
        assert!(leaks > 0);
        corpus.allow.insert("TA005".into());
        let report = analyze(&corpus);
        assert!(report
            .diagnostics
            .iter()
            .all(|d| d.code != LintCode::InferenceLeak));
        assert_eq!(report.suppressed, leaks);
    }

    #[test]
    fn document_lint_allow_is_scoped_to_the_document() {
        let mut corpus = DeploymentCorpus::figures();
        // Both documents produce TA005 findings; suppressing on document 0
        // must keep document 1's.
        corpus.documents[0].lint_allow = vec!["TA005".into()];
        let report = analyze(&corpus);
        assert!(report.suppressed > 0);
        assert!(report
            .diagnostics
            .iter()
            .filter(|d| d.code == LintCode::InferenceLeak)
            .all(|d| d.path.starts_with("/documents/1/")));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::InferenceLeak));
    }
}
