//! Static analysis over smart-building policy deployments.
//!
//! §III.B asks for a "policy reasoner" that finds problems *before*
//! enforcement. This crate is that reasoner's ahead-of-time half: a
//! multi-pass lint engine over a whole [`DeploymentCorpus`] — wire-format
//! documents, normalized policies, user preferences, the spatial model and
//! the ontology — emitting [`Diagnostic`]s with stable `TA0xx` codes.
//!
//! Architecture: a single lowering step builds a typed fact graph
//! ([`engine`]) — resolvable units, disclosed categories, inference
//! closures (computed once by a deterministic worklist solver), declared
//! purposes, rule cycles — and every pass queries those shared facts.
//! Passes declare which *units* they own and when a changed unit may
//! interact with an owned one, which is what makes the incremental
//! [`Analyzer`] and the parallel [`analyze_parallel`] mode possible
//! without any pass-specific replumbing.
//!
//! | Code  | Pass | Worst severity |
//! |-------|------|----------------|
//! | TA001 | dangling references (spaces, categories, services) | Error |
//! | TA002 | unsatisfiable / vacuous conditions | Error |
//! | TA003 | dead or shadowed preferences | Warning |
//! | TA004 | retention contradictions across nested scopes | Error |
//! | TA005 | inference-leak reachability (rule chain as evidence) | Error |
//! | TA006 | conflict pre-flight (runtime conflicts at lint time) | Warning |
//! | TA007 | wire-format validation | Error |
//! | TA008 | service without a declared admission-priority mapping | Warning |
//! | TA009 | replication topology (quorum vs replica set, staleness bound) | Error |
//! | TA010 | accountability gaps (unsweepable retention, unquota'd sharing purpose) | Warning |
//! | TA011 | capture-enforcement gaps (unbounded ingest mailbox, uncaptured collection zone) | Error |
//! | TA012 | cross-document shadowing (dominated policies, duplicate resources) | Warning |
//! | TA013 | purpose-flow taint (undeclared disclosure purpose, witness path) | Warning |
//! | TA014 | compilability (requester_nearby guards, cyclic inference rules) | Error |
//! | TA015 | unused suppressions (`--allow` / `"lint-allow"` hygiene) | Warning |
//! | TA016 | shard topology (zero shards, split zone ownership, unmapped capture zone) | Error |
//!
//! Output is canonical: diagnostics are sorted by (path, code, severity,
//! message, evidence) and deduplicated, so shuffling the corpus — or the
//! thread count — never changes the report byte-for-byte. Suppression is
//! two-level: a document can carry `"lint-allow": ["TA004"]` to accept
//! findings under its own path, and the corpus-level
//! [`DeploymentCorpus::allow`] set (the CLI's `--allow`) suppresses codes
//! globally. Suppressions that suppress nothing are themselves reported
//! (TA015) so reviewed-and-accepted lists cannot rot silently.
//!
//! # Examples
//!
//! ```
//! use tippers_analyzer::{analyze, DeploymentCorpus};
//!
//! let report = analyze(&DeploymentCorpus::figures());
//! // The paper's own corpus is deployable: findings, but no errors.
//! assert!(!report.has_errors());
//! // Figure 2's WiFi document leaks inferable categories (TA005 warnings).
//! assert!(report.diagnostics.iter().any(|d| d.code.as_str() == "TA005"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
pub mod diag;
pub mod engine;
mod passes;
pub mod report;

use std::collections::BTreeSet;

use tippers_policy::validate::escape_pointer_segment;

pub use corpus::{DeploymentCorpus, IngestSpec, ReplicationSpec, ShardZonePin, ShardingSpec};
pub use diag::{Diagnostic, LintCode, Severity};
pub use engine::{Analyzer, UnitId};

/// The outcome of one analysis run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisReport {
    /// Surviving diagnostics, in canonical order.
    pub diagnostics: Vec<Diagnostic>,
    /// Diagnostics removed by document- or corpus-level suppression.
    pub suppressed: usize,
}

/// Runs every pass over the corpus and returns the canonical report.
pub fn analyze(corpus: &DeploymentCorpus) -> AnalysisReport {
    analyze_parallel(corpus, 1)
}

/// [`analyze`] with the (pass, owner) work items fanned across `threads`
/// workers. The report is byte-identical at any thread count: each cell
/// of the diagnostic map is computed independently, merged into an
/// ordered map, and canonicalized.
pub fn analyze_parallel(corpus: &DeploymentCorpus, threads: usize) -> AnalysisReport {
    let mut memo = engine::ClosureMemo::default();
    let facts = engine::Facts::build(corpus, &mut memo);
    let cache = engine::run_all(
        &engine::Context {
            corpus,
            facts: &facts,
        },
        threads,
    );
    finalize(corpus, &cache)
}

/// Assembles the canonical report from the per-(pass, owner) diagnostic
/// cache: load diagnostics + cached findings, canonicalized, suppressed
/// with usage tracking, and topped up with TA015 findings for
/// suppressions that suppressed nothing.
pub(crate) fn finalize(corpus: &DeploymentCorpus, cache: &engine::DiagMap) -> AnalysisReport {
    // Sort, dedup and suppress by reference: diagnostics are fat structs
    // (two Strings and an evidence Vec each), so ordering pointers and
    // cloning only the survivors — once — is markedly cheaper than
    // cloning everything up front and sorting the owned vec.
    let mut refs: Vec<&Diagnostic> = corpus
        .load_diagnostics
        .iter()
        .chain(cache.values().flatten())
        .collect();
    refs.sort_unstable_by(|a, b| diag::sort_key(a).cmp(&diag::sort_key(b)));
    refs.dedup();

    // Suppression with usage tracking: which allow entries actually
    // removed at least one finding.
    let mut used_corpus: BTreeSet<String> = BTreeSet::new();
    let mut used_doc: BTreeSet<(usize, String)> = BTreeSet::new();
    let before = refs.len();
    refs.retain(|d| {
        if corpus.allow.contains(d.code.as_str()) {
            used_corpus.insert(d.code.as_str().to_owned());
            return false;
        }
        if let Some(k) = suppressing_document(corpus, d) {
            used_doc.insert((k, d.code.as_str().to_owned()));
            return false;
        }
        true
    });
    let mut suppressed = before - refs.len();
    let diagnostics: Vec<Diagnostic> = refs.into_iter().cloned().collect();

    // TA015: suppressions that earned their keep are fine; the rest are
    // stale review decisions. "TA015" entries are exempt — they are how
    // an operator opts out of this very check.
    let mut hygiene = Vec::new();
    for code in &corpus.allow {
        if code == "TA015" || used_corpus.contains(code) {
            continue;
        }
        hygiene.push(Diagnostic::new(
            LintCode::UnusedAllow,
            Severity::Warning,
            format!("/allow/{code}"),
            format!("`--allow {code}` suppresses nothing: no surviving pass emits {code} here"),
        ));
    }
    for (k, doc) in corpus.documents.iter().enumerate() {
        for code in &doc.lint_allow {
            if code == "TA015" || used_doc.contains(&(k, code.clone())) {
                continue;
            }
            let seg = escape_pointer_segment(code);
            hygiene.push(Diagnostic::new(
                LintCode::UnusedAllow,
                Severity::Warning,
                format!("/documents/{k}/lint-allow/{seg}"),
                format!(
                    "\"lint-allow\": [\"{code}\"] suppresses nothing: document {k} has no {code} finding"
                ),
            ));
        }
    }
    // Hygiene findings get one plain suppression round of their own (an
    // operator can `--allow TA015`), without counting toward usage.
    hygiene.retain(|d| {
        let drop =
            corpus.allow.contains(d.code.as_str()) || suppressing_document(corpus, d).is_some();
        if drop {
            suppressed += 1;
        }
        !drop
    });
    // Both sides are already in canonical order, so a linear merge (with
    // adjacent dedup) replaces the former full re-sort.
    diag::canonicalize(&mut hygiene);
    let diagnostics = merge_sorted(diagnostics, hygiene);
    AnalysisReport {
        diagnostics,
        suppressed,
    }
}

/// Merges two canonically sorted diagnostic vecs, dropping exact
/// duplicates, preserving canonical order.
fn merge_sorted(a: Vec<Diagnostic>, b: Vec<Diagnostic>) -> Vec<Diagnostic> {
    if b.is_empty() {
        return a;
    }
    let mut merged = Vec::with_capacity(a.len() + b.len());
    let mut a = a.into_iter().peekable();
    let mut b = b.into_iter().peekable();
    loop {
        let take_a = match (a.peek(), b.peek()) {
            (Some(x), Some(y)) => diag::sort_key(x) <= diag::sort_key(y),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        let d = if take_a {
            a.next().expect("peeked")
        } else {
            b.next().expect("peeked")
        };
        if merged.last() != Some(&d) {
            merged.push(d);
        }
    }
    merged
}

/// Patches the previous canonical report in place of a full [`finalize`]:
/// `removed` holds the old diagnostics of every re-checked or dropped
/// (pass, owner) cell, `added` the fresh ones. Only valid when no
/// suppression config exists (the caller falls back to `finalize`
/// otherwise), so the report is exactly the sorted, deduped union of the
/// cache and the load diagnostics — which makes the patch a set splice:
/// cancel unchanged pairs, keep "removed" diagnostics another cell still
/// emits, and linearly merge the small net delta into the old order.
/// O(report) moves, O(delta · log) comparisons, no re-sort, no re-clone.
pub(crate) fn splice_diagnostics(
    old: Vec<Diagnostic>,
    mut removed: Vec<Diagnostic>,
    mut added: Vec<Diagnostic>,
    cache: &engine::DiagMap,
    load: &[Diagnostic],
) -> Vec<Diagnostic> {
    removed.sort_unstable_by(|a, b| diag::sort_key(a).cmp(&diag::sort_key(b)));
    removed.dedup();
    added.sort_unstable_by(|a, b| diag::sort_key(a).cmp(&diag::sort_key(b)));
    added.dedup();

    // Cancel diagnostics both lists agree on (a re-checked cell usually
    // re-emits almost everything verbatim).
    let (removed, added) = set_difference_both(removed, added);

    // A "removed" diagnostic stays in the report if any surviving cell —
    // or the load phase — still emits the identical finding.
    let removed = drop_still_emitted(removed, cache, load);

    // Three-way linear merge: old order minus `removed` plus `added`.
    let mut out = Vec::with_capacity(old.len() + added.len());
    let mut rem = removed.iter().peekable();
    let mut add = added.into_iter().peekable();
    for d in old {
        while add
            .peek()
            .is_some_and(|a| diag::sort_key(a) < diag::sort_key(&d))
        {
            let a = add.next().expect("peeked");
            if out.last() != Some(&a) {
                out.push(a);
            }
        }
        if add.peek().is_some_and(|a| *a == d) {
            add.next();
        }
        if rem.peek().is_some_and(|r| **r == d) {
            rem.next();
            continue;
        }
        if out.last() != Some(&d) {
            out.push(d);
        }
    }
    for a in add {
        if out.last() != Some(&a) {
            out.push(a);
        }
    }
    out
}

/// Returns (a \ b, b \ a) for two canonically sorted, deduped vecs.
fn set_difference_both(
    a: Vec<Diagnostic>,
    b: Vec<Diagnostic>,
) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
    let mut only_a = Vec::new();
    let mut only_b = Vec::new();
    let mut a = a.into_iter().peekable();
    let mut b = b.into_iter().peekable();
    loop {
        match (a.peek(), b.peek()) {
            (Some(x), Some(y)) => match diag::sort_key(x).cmp(&diag::sort_key(y)) {
                std::cmp::Ordering::Less => only_a.push(a.next().expect("peeked")),
                std::cmp::Ordering::Greater => only_b.push(b.next().expect("peeked")),
                std::cmp::Ordering::Equal => {
                    a.next();
                    b.next();
                }
            },
            (Some(_), None) => only_a.push(a.next().expect("peeked")),
            (None, Some(_)) => only_b.push(b.next().expect("peeked")),
            (None, None) => break,
        }
    }
    (only_a, only_b)
}

/// Filters removal candidates down to those no longer emitted anywhere:
/// one sweep over the candidate codes' cache cells (binary-searching the
/// sorted candidate list per cached diagnostic) instead of one cache scan
/// per candidate.
fn drop_still_emitted(
    cands: Vec<Diagnostic>,
    cache: &engine::DiagMap,
    load: &[Diagnostic],
) -> Vec<Diagnostic> {
    if cands.is_empty() {
        return cands;
    }
    let mut alive = vec![false; cands.len()];
    let locate = |x: &Diagnostic| {
        cands
            .binary_search_by(|c| diag::sort_key(c).cmp(&diag::sort_key(x)))
            .ok()
    };
    let codes: BTreeSet<LintCode> = cands.iter().map(|d| d.code).collect();
    for code in codes {
        let range = (code, UnitId::Global)..=(code, UnitId::Preference(u64::MAX));
        for (_, cell) in cache.range(range) {
            for x in cell {
                if let Some(i) = locate(x) {
                    alive[i] = true;
                }
            }
        }
    }
    for x in load {
        if let Some(i) = locate(x) {
            alive[i] = true;
        }
    }
    let mut i = 0;
    let mut cands = cands;
    cands.retain(|_| {
        let dead = !alive[i];
        i += 1;
        dead
    });
    cands
}

/// The document whose `"lint-allow"` list suppresses this diagnostic, if
/// any: the code is listed and the diagnostic's path falls under the
/// document's own subtree.
fn suppressing_document(corpus: &DeploymentCorpus, d: &Diagnostic) -> Option<usize> {
    for (k, doc) in corpus.documents.iter().enumerate() {
        if doc.lint_allow.iter().any(|c| c == d.code.as_str()) {
            let prefix = format!("/documents/{k}");
            if d.path == prefix || d.path.starts_with(&format!("{prefix}/")) {
                return Some(k);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figures_corpus_has_findings_but_no_errors() {
        let report = analyze(&DeploymentCorpus::figures());
        assert!(!report.has_errors(), "unexpected errors: {report:#?}");
        // Figure 2 leaks inferable categories; the catalog's Preference 1/2
        // conflict with mandatory Policy 2 (the paper's worked example).
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::InferenceLeak));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::ConflictPreflight));
    }

    #[test]
    fn global_allow_suppresses() {
        let mut corpus = DeploymentCorpus::figures();
        let baseline = analyze(&corpus);
        let leaks = baseline
            .diagnostics
            .iter()
            .filter(|d| d.code == LintCode::InferenceLeak)
            .count();
        assert!(leaks > 0);
        corpus.allow.insert("TA005".into());
        let report = analyze(&corpus);
        assert!(report
            .diagnostics
            .iter()
            .all(|d| d.code != LintCode::InferenceLeak));
        assert_eq!(report.suppressed, leaks);
    }

    #[test]
    fn document_lint_allow_is_scoped_to_the_document() {
        let mut corpus = DeploymentCorpus::figures();
        // Both documents produce TA005 findings; suppressing on document 0
        // must keep document 1's.
        corpus.documents[0].lint_allow = vec!["TA005".into()];
        let report = analyze(&corpus);
        assert!(report.suppressed > 0);
        assert!(report
            .diagnostics
            .iter()
            .filter(|d| d.code == LintCode::InferenceLeak)
            .all(|d| d.path.starts_with("/documents/1/")));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::InferenceLeak));
    }

    #[test]
    fn an_unused_allow_is_reported_and_a_used_one_is_not() {
        let mut corpus = DeploymentCorpus::figures();
        corpus.allow.insert("TA005".into()); // used: figures has leaks
        corpus.allow.insert("TA009".into()); // unused: no replication config
        let report = analyze(&corpus);
        let hygiene: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == LintCode::UnusedAllow)
            .collect();
        assert_eq!(hygiene.len(), 1, "{hygiene:?}");
        assert_eq!(hygiene[0].path, "/allow/TA009");
    }

    #[test]
    fn an_unused_document_lint_allow_is_reported_in_place() {
        let mut corpus = DeploymentCorpus::figures();
        corpus.documents[0].lint_allow = vec!["TA009".into()];
        let report = analyze(&corpus);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::UnusedAllow && d.path == "/documents/0/lint-allow/TA009"));
    }

    #[test]
    fn allowing_ta015_silences_the_hygiene_pass() {
        let mut corpus = DeploymentCorpus::figures();
        corpus.allow.insert("TA009".into());
        corpus.allow.insert("TA015".into());
        let report = analyze(&corpus);
        assert!(report
            .diagnostics
            .iter()
            .all(|d| d.code != LintCode::UnusedAllow));
    }

    #[test]
    fn parallel_analysis_is_byte_identical() {
        let corpus = DeploymentCorpus::figures();
        let one = analyze_parallel(&corpus, 1);
        for threads in [2, 4, 8] {
            assert_eq!(one, analyze_parallel(&corpus, threads), "threads={threads}");
        }
    }
}
