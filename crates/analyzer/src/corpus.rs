//! The unit of analysis: a whole deployment.
//!
//! A [`DeploymentCorpus`] bundles everything the building knows ahead of
//! enforcement — wire-format documents, normalized policies, user
//! preferences, the spatial model, the ontology, the service catalog — so
//! passes can cross-check the pieces against each other. Corpora come from
//! three places: programmatic construction ([`DeploymentCorpus::new`]), the
//! paper's Figure 2–4 examples ([`DeploymentCorpus::figures`]), and JSON
//! deployment specs ([`DeploymentCorpus::from_spec_str`], what the
//! `tippers-lint` CLI loads).

use std::collections::{BTreeMap, BTreeSet};

use serde::Deserialize;
use tippers_ontology::{ConceptId, InferenceRule, Ontology};
use tippers_policy::validate::escape_pointer_segment;
use tippers_policy::{
    catalog, figures, ActionSet, BuildingPolicy, Condition, DataAction, Effect, Modality,
    PolicyDocument, PolicyId, PreferenceId, PreferenceScope, ResolutionStrategy, ServiceId,
    SubjectScope, TimeOfDay, TimeWindow, UserGroup, UserId, UserPreference, Weekday, WeekdaySet,
};
use tippers_spatial::{fixtures, Granularity, SpaceId, SpatialModel};

use crate::diag::{Diagnostic, LintCode, Severity};

/// Everything the analyzer looks at in one run.
#[derive(Debug, Clone)]
pub struct DeploymentCorpus {
    /// The vocabulary (data/purpose/sensor taxonomies + inference rules).
    pub ontology: Ontology,
    /// The building's spatial model.
    pub model: SpatialModel,
    /// Wire-format documents as IRRs would advertise them.
    pub documents: Vec<PolicyDocument>,
    /// Normalized building policies.
    pub policies: Vec<BuildingPolicy>,
    /// User preferences.
    pub preferences: Vec<UserPreference>,
    /// Known service ids. Empty = the catalog is unknown, so service
    /// references are not checked.
    pub services: BTreeSet<String>,
    /// Declared admission class per service (`"emergency"`, `"interactive"`
    /// or `"batch"`). A service policy whose service has no entry here is
    /// shed by requester-declared priority alone under overload, which the
    /// priority-mapping pass reports.
    pub priorities: BTreeMap<String, String>,
    /// Declared replication topology, when the deployment replicates its
    /// enforcement state (`None` = single-node; the replication pass is
    /// silent). Checked by the TA009 pass against the runtime's
    /// quorum-commit and bounded-staleness rules.
    pub replication: Option<ReplicationSpec>,
    /// Declared disclosure budgets per purpose key (`"purpose/..."` →
    /// releases per window). A sharing purpose with no entry here is an
    /// unbounded disclosure channel, which the accountability pass (TA010)
    /// reports.
    pub quotas: BTreeMap<String, u64>,
    /// Declared capture-time ingest pipeline, when the deployment enforces
    /// at capture (`None` = request-time enforcement only; the capture pass
    /// is silent). Checked by the TA011 pass against the runtime's bounded
    /// mailboxes and per-zone capture filters.
    pub ingest: Option<IngestSpec>,
    /// Declared shard topology, when the deployment partitions enforcement
    /// state across crash-isolated shards (`None` = unsharded; the
    /// shard-topology pass is silent). Checked by the TA016 pass against
    /// the sharded runtime's routing rules.
    pub sharding: Option<ShardingSpec>,
    /// Data categories considered sensitive: an inference leak reaching one
    /// of these is an error rather than a warning.
    pub sensitive: Vec<ConceptId>,
    /// Alternate space names (e.g. `"Donald Bren Hall"` → `"DBH"`), applied
    /// before [`SpatialModel::by_name`] lookup.
    pub space_aliases: BTreeMap<String, String>,
    /// Strategy assumed by strategy-dependent passes (dead preferences).
    pub strategy: ResolutionStrategy,
    /// Globally suppressed lint codes (CLI `--allow`).
    pub allow: BTreeSet<String>,
    /// Diagnostics produced while loading a spec (unresolvable names,
    /// unparseable values); merged into every analysis of this corpus.
    pub load_diagnostics: Vec<Diagnostic>,
}

impl DeploymentCorpus {
    /// An empty corpus over the given vocabulary and building.
    ///
    /// Sensitive categories default to personal identity and health; the
    /// paper's `"Donald Bren Hall"` → `"DBH"` space alias is pre-seeded.
    pub fn new(ontology: Ontology, model: SpatialModel) -> DeploymentCorpus {
        let c = ontology.concepts();
        let sensitive = vec![c.person_identity, c.health];
        let mut space_aliases = BTreeMap::new();
        space_aliases.insert("Donald Bren Hall".to_owned(), "DBH".to_owned());
        DeploymentCorpus {
            ontology,
            model,
            documents: Vec::new(),
            policies: Vec::new(),
            preferences: Vec::new(),
            services: BTreeSet::new(),
            priorities: BTreeMap::new(),
            replication: None,
            quotas: BTreeMap::new(),
            ingest: None,
            sharding: None,
            sensitive,
            space_aliases,
            strategy: ResolutionStrategy::default(),
            allow: BTreeSet::new(),
            load_diagnostics: Vec::new(),
        }
    }

    /// The paper's worked corpus: the Figure 2 document (with Figure 4's
    /// settings attached to its resource), the Figure 3 service policy as a
    /// document, Policies 1–4 and Preferences 1–4 from the catalog, and the
    /// four well-known services.
    pub fn figures() -> DeploymentCorpus {
        let dbh = fixtures::dbh();
        let ontology = Ontology::standard();
        let mut corpus = DeploymentCorpus::new(ontology, dbh.model.clone());

        let mut fig2 = figures::fig2_document();
        fig2.resources[0]
            .settings
            .extend(figures::fig4_document().settings);
        corpus.documents.push(fig2);

        // Figure 3 is a service policy; re-shape it as a resource document
        // so document passes see the Concierge's practices too.
        let fig3 = figures::fig3_document();
        corpus.documents.push(PolicyDocument {
            resources: vec![tippers_policy::ResourceBlock {
                info: tippers_policy::document::InfoBlock {
                    name: "Smart Concierge".into(),
                    description: None,
                },
                purpose: fig3.purpose,
                observations: fig3.observations,
                ..Default::default()
            }],
            lint_allow: Vec::new(),
        });

        let ont = &corpus.ontology.clone();
        corpus.policies = vec![
            catalog::policy1_thermostat(PolicyId(1), dbh.building, ont),
            catalog::policy2_emergency_location(PolicyId(2), dbh.building, ont),
            catalog::policy3_meeting_room_access(
                PolicyId(3),
                dbh.building,
                dbh.meeting_rooms.clone(),
                ont,
            ),
            catalog::policy4_event_proximity(PolicyId(4), vec![dbh.lobby], ont),
        ];
        let mary = UserId(1);
        corpus.preferences = vec![
            catalog::preference1_afterhours_occupancy(PreferenceId(1), mary, dbh.offices[0], ont),
            catalog::preference2_no_location(PreferenceId(2), mary, ont),
            catalog::preference3_concierge_location(PreferenceId(3), mary, ont),
            catalog::preference4_smart_meeting(PreferenceId(4), mary, ont),
        ];
        corpus.services = [
            catalog::services::concierge(),
            catalog::services::smart_meeting(),
            catalog::services::food_delivery(),
            catalog::services::emergency(),
        ]
        .iter()
        .map(|s| s.as_str().to_owned())
        .collect();
        corpus.priorities = [
            (catalog::services::concierge(), "interactive"),
            (catalog::services::smart_meeting(), "interactive"),
            (catalog::services::food_delivery(), "batch"),
            (catalog::services::emergency(), "emergency"),
        ]
        .iter()
        .map(|(s, class)| (s.as_str().to_owned(), (*class).to_owned()))
        .collect();
        corpus
    }

    /// Loads a JSON deployment spec (see `fixtures/broken.json` for the
    /// shape) against the given vocabulary and building.
    ///
    /// Unresolvable names and unparseable values become
    /// [`Self::load_diagnostics`] and the offending item is skipped, so one
    /// bad entry cannot hide findings in the rest of the corpus.
    pub fn from_spec_str(
        json: &str,
        ontology: Ontology,
        model: SpatialModel,
    ) -> Result<DeploymentCorpus, serde_json::Error> {
        let spec: DeploymentSpec = serde_json::from_str(json)?;
        let mut corpus = DeploymentCorpus::new(ontology, model);
        corpus.space_aliases.extend(spec.space_aliases);
        corpus.services.extend(spec.services);
        corpus.priorities.extend(spec.priorities);
        corpus.replication = spec.replication;
        if let Some(ingest) = spec.ingest {
            for name in &ingest.capture_zones {
                if corpus.resolve_space(name).is_none() {
                    let seg = escape_pointer_segment(name);
                    corpus.error(
                        format!("/ingest/capture_zones/{seg}"),
                        format!("unknown space `{name}`"),
                    );
                }
            }
            corpus.ingest = Some(ingest);
        }
        if let Some(sharding) = spec.sharding {
            for (i, pin) in sharding.zones.iter().enumerate() {
                if corpus.resolve_space(&pin.zone).is_none() {
                    corpus.error(
                        format!("/sharding/zones/{i}/zone"),
                        format!("unknown space `{}`", pin.zone),
                    );
                }
            }
            corpus.sharding = Some(sharding);
        }
        for (key, budget) in spec.quotas {
            if corpus.ontology.purposes.id(&key).is_none() {
                let seg = escape_pointer_segment(&key);
                corpus.error(format!("/quotas/{seg}"), format!("unknown purpose `{key}`"));
                continue;
            }
            corpus.quotas.insert(key, budget);
        }
        corpus.documents = spec.documents;
        if let Some(s) = spec.strategy {
            match s.as_str() {
                "policy-prevails" => corpus.strategy = ResolutionStrategy::PolicyPrevails,
                "preference-prevails" => corpus.strategy = ResolutionStrategy::PreferencePrevails,
                "strictest" => corpus.strategy = ResolutionStrategy::Strictest,
                other => corpus.error("/strategy", format!("unknown strategy `{other}`")),
            }
        }
        for key in &spec.sensitive {
            match corpus.ontology.data.id(key) {
                Some(id) => corpus.sensitive.push(id),
                None => {
                    let seg = escape_pointer_segment(key);
                    corpus.error(
                        format!("/sensitive/{seg}"),
                        format!("unknown data category `{key}`"),
                    );
                }
            }
        }
        corpus.sensitive.sort_unstable();
        corpus.sensitive.dedup();
        for (i, rule) in spec.inference_rules.iter().enumerate() {
            corpus.add_inference_rule(i, rule);
        }
        for p in &spec.policies {
            if let Some(policy) = corpus.resolve_policy(p) {
                corpus.policies.push(policy);
            }
        }
        for p in &spec.preferences {
            if let Some(pref) = corpus.resolve_preference(p) {
                corpus.preferences.push(pref);
            }
        }
        Ok(corpus)
    }

    /// Resolves and installs one deployment-declared inference rule.
    /// Invalid entries (unknown categories, empty premises, confidence
    /// outside `(0, 1]`) become load diagnostics and are skipped —
    /// [`InferenceRule::new`] panics on them, so everything is validated
    /// here first.
    fn add_inference_rule(&mut self, i: usize, spec: &InferenceRuleSpec) {
        let base = format!("/inference_rules/{i}");
        let mut ok = true;
        let mut premises = Vec::new();
        for key in &spec.premises {
            match self.ontology.data.id(key) {
                Some(id) => premises.push(id),
                None => {
                    self.error(
                        format!("{base}/premises"),
                        format!("unknown data category `{key}`"),
                    );
                    ok = false;
                }
            }
        }
        let conclusion = match self.ontology.data.id(&spec.conclusion) {
            Some(id) => Some(id),
            None => {
                self.error(
                    format!("{base}/conclusion"),
                    format!("unknown data category `{}`", spec.conclusion),
                );
                ok = false;
                None
            }
        };
        if spec.premises.is_empty() {
            self.error(
                format!("{base}/premises"),
                "an inference rule needs at least one premise",
            );
            ok = false;
        }
        if !(spec.confidence > 0.0 && spec.confidence <= 1.0) {
            self.error(
                format!("{base}/confidence"),
                format!("confidence {} is outside (0, 1]", spec.confidence),
            );
            ok = false;
        }
        if ok {
            self.ontology.add_rule(InferenceRule::new(
                spec.name.clone(),
                premises,
                conclusion.expect("validated above"),
                spec.confidence,
            ));
        }
    }

    /// Resolves a space name through the alias table, then the model.
    pub fn resolve_space(&self, name: &str) -> Option<SpaceId> {
        let canonical = self.space_aliases.get(name).map_or(name, String::as_str);
        self.model.by_name(canonical)
    }

    /// True if every id the policy carries is in range for this corpus's
    /// model and taxonomies (passes skip out-of-range policies; the
    /// dangling-reference pass reports them).
    pub fn policy_is_resolvable(&self, policy: &BuildingPolicy) -> bool {
        self.space_in_range(policy.space)
            && policy
                .condition
                .spaces
                .iter()
                .all(|&s| self.space_in_range(s))
            && policy.data.index() < self.ontology.data.len()
            && policy.purpose.index() < self.ontology.purposes.len()
            && policy
                .sensor_class
                .is_none_or(|s| s.index() < self.ontology.sensors.len())
    }

    /// True if every id the preference carries is in range.
    pub fn preference_is_resolvable(&self, pref: &UserPreference) -> bool {
        pref.scope.space.is_none_or(|s| self.space_in_range(s))
            && pref
                .scope
                .condition
                .spaces
                .iter()
                .all(|&s| self.space_in_range(s))
            && pref
                .scope
                .data
                .is_none_or(|d| d.index() < self.ontology.data.len())
            && pref
                .scope
                .purpose
                .is_none_or(|p| p.index() < self.ontology.purposes.len())
    }

    /// The policies all cross-item passes run over.
    pub fn resolvable_policies(&self) -> Vec<&BuildingPolicy> {
        self.policies
            .iter()
            .filter(|p| self.policy_is_resolvable(p))
            .collect()
    }

    /// The preferences all cross-item passes run over.
    pub fn resolvable_preferences(&self) -> Vec<&UserPreference> {
        self.preferences
            .iter()
            .filter(|p| self.preference_is_resolvable(p))
            .collect()
    }

    fn space_in_range(&self, space: SpaceId) -> bool {
        space.index() < self.model.len()
    }

    /// The data category one observation discloses, if resolvable: an
    /// explicit `category` key wins, otherwise the same name heuristics the
    /// codec applies. Unknown `category` keys are reported by the
    /// dangling-reference pass, not here.
    pub fn observation_category(
        &self,
        obs: &tippers_policy::document::ObservationBlock,
    ) -> Option<ConceptId> {
        if let Some(key) = &obs.category {
            return self.ontology.data.id(key);
        }
        let c = self.ontology.concepts();
        let n = obs.name.to_lowercase();
        if n.contains("wifi") || n.contains("mac address") {
            Some(c.wifi_association)
        } else if n.contains("bluetooth") || n.contains("beacon") {
            Some(c.bluetooth_sighting)
        } else if n.contains("location") {
            Some(c.location_room)
        } else if n.contains("occupancy") {
            Some(c.occupancy)
        } else {
            None
        }
    }

    /// The data category a sensor kind implies (resource-level fallback when
    /// no observation resolves), mirroring the codec's heuristics.
    pub fn sensor_category(&self, kind: &str) -> Option<ConceptId> {
        let c = self.ontology.concepts();
        let k = kind.to_lowercase();
        if k.contains("wifi") {
            Some(c.wifi_association)
        } else if k.contains("bluetooth") || k.contains("beacon") {
            Some(c.bluetooth_sighting)
        } else if k.contains("camera") {
            Some(c.image)
        } else if k.contains("power") {
            Some(c.power_consumption)
        } else if k.contains("temperature") {
            Some(c.ambient_temperature)
        } else if k.contains("motion") {
            Some(c.occupancy)
        } else {
            None
        }
    }

    fn error(&mut self, path: impl Into<String>, message: impl Into<String>) {
        self.load_diagnostics.push(Diagnostic::new(
            LintCode::DanglingReference,
            Severity::Error,
            path,
            message,
        ));
    }

    fn resolve_policy(&mut self, spec: &PolicySpec) -> Option<BuildingPolicy> {
        let base = format!("/policies/{}", spec.id.0);
        let mut ok = true;
        let space = match self.resolve_space(&spec.space) {
            Some(s) => s,
            None => {
                self.error(
                    format!("{base}/space"),
                    format!("unknown space `{}`", spec.space),
                );
                ok = false;
                self.model.root()
            }
        };
        let data = self.lookup(
            &self.ontology.data.clone(),
            &spec.data,
            &base,
            "data",
            &mut ok,
        );
        let purpose = self.lookup(
            &self.ontology.purposes.clone(),
            &spec.purpose,
            &base,
            "purpose",
            &mut ok,
        );
        let condition = spec
            .condition
            .as_ref()
            .map(|c| self.resolve_condition(c, &base, &mut ok))
            .unwrap_or_default();
        let retention = match &spec.retention {
            None => None,
            Some(text) => match text.parse() {
                Ok(d) => Some(d),
                Err(_) => {
                    self.error(
                        format!("{base}/retention"),
                        format!("unparseable ISO-8601 duration `{text}`"),
                    );
                    ok = false;
                    None
                }
            },
        };
        let modality = match spec.modality.as_deref() {
            None => Modality::OptOut,
            Some("required") => Modality::Required,
            Some("opt-out") => Modality::OptOut,
            Some("opt-in") => Modality::OptIn,
            Some(other) => {
                self.error(
                    format!("{base}/modality"),
                    format!("unknown modality `{other}`"),
                );
                ok = false;
                Modality::OptOut
            }
        };
        let actions = match &spec.actions {
            None => ActionSet::default(),
            Some(names) => {
                let mut set = Vec::new();
                for name in names {
                    match parse_action(name) {
                        Some(a) => set.push(a),
                        None => {
                            self.error(
                                format!("{base}/actions"),
                                format!("unknown action `{name}`"),
                            );
                            ok = false;
                        }
                    }
                }
                ActionSet::of(&set)
            }
        };
        let subjects = match &spec.subjects {
            None => SubjectScope::Everyone,
            Some(s) => self.resolve_subjects(s, &base, &mut ok),
        };
        if !ok {
            return None;
        }
        let (data, purpose) = (data?, purpose?);
        let mut policy = BuildingPolicy::new(spec.id, spec.name.clone(), space, data, purpose)
            .with_condition(condition)
            .with_modality(modality)
            .with_actions(actions)
            .with_subjects(subjects);
        if let Some(d) = &spec.description {
            policy = policy.with_description(d.clone());
        }
        if let Some(r) = retention {
            policy = policy.with_retention(r);
        }
        if let Some(svc) = &spec.service {
            policy = policy.with_service(ServiceId::new(svc.clone()));
        }
        Some(policy)
    }

    fn resolve_preference(&mut self, spec: &PreferenceSpec) -> Option<UserPreference> {
        let base = format!("/preferences/{}", spec.id.0);
        let mut ok = true;
        let data = match &spec.scope.data {
            None => None,
            Some(key) => Some(self.lookup(
                &self.ontology.data.clone(),
                key,
                &base,
                "scope/data",
                &mut ok,
            )?),
        };
        let purpose = match &spec.scope.purpose {
            None => None,
            Some(key) => Some(self.lookup(
                &self.ontology.purposes.clone(),
                key,
                &base,
                "scope/purpose",
                &mut ok,
            )?),
        };
        let space = match &spec.scope.space {
            None => None,
            Some(name) => match self.resolve_space(name) {
                Some(s) => Some(s),
                None => {
                    self.error(
                        format!("{base}/scope/space"),
                        format!("unknown space `{name}`"),
                    );
                    ok = false;
                    None
                }
            },
        };
        let condition = spec
            .scope
            .condition
            .as_ref()
            .map(|c| self.resolve_condition(c, &base, &mut ok))
            .unwrap_or_default();
        let effect = match self.resolve_effect(&spec.effect, &base) {
            Some(e) => e,
            None => {
                ok = false;
                Effect::Deny
            }
        };
        if !ok {
            return None;
        }
        let scope = PreferenceScope {
            data,
            purpose,
            service: spec.scope.service.as_deref().map(ServiceId::new),
            space,
            condition,
        };
        let mut pref =
            UserPreference::new(spec.id, spec.user, scope, effect).with_priority(spec.priority);
        if let Some(n) = &spec.note {
            pref = pref.with_note(n.clone());
        }
        Some(pref)
    }

    fn resolve_effect(&mut self, spec: &EffectSpec, base: &str) -> Option<Effect> {
        match spec {
            EffectSpec::Simple(s) if s == "allow" => Some(Effect::Allow),
            EffectSpec::Simple(s) if s == "deny" => Some(Effect::Deny),
            EffectSpec::Simple(other) => {
                self.error(
                    format!("{base}/effect"),
                    format!("unknown effect `{other}`"),
                );
                None
            }
            EffectSpec::Degrade { degrade } => match degrade.as_str() {
                "exact" => Some(Effect::Degrade(Granularity::Exact)),
                "room" => Some(Effect::Degrade(Granularity::Room)),
                "floor" => Some(Effect::Degrade(Granularity::Floor)),
                "building" => Some(Effect::Degrade(Granularity::Building)),
                "campus" => Some(Effect::Degrade(Granularity::Campus)),
                "suppressed" => Some(Effect::Degrade(Granularity::Suppressed)),
                other => {
                    self.error(
                        format!("{base}/effect/degrade"),
                        format!("unknown granularity `{other}`"),
                    );
                    None
                }
            },
            EffectSpec::Noise { noise } => Some(Effect::Noise { sigma: *noise }),
        }
    }

    fn resolve_condition(&mut self, spec: &ConditionSpec, base: &str, ok: &mut bool) -> Condition {
        let mut condition = Condition::always();
        if let Some(w) = &spec.time {
            match self.resolve_window(w, base) {
                Some(window) => condition = condition.with_time(window),
                None => *ok = false,
            }
        }
        let mut spaces = Vec::new();
        for name in &spec.spaces {
            match self.resolve_space(name) {
                Some(s) => spaces.push(s),
                None => {
                    // Kept as a load diagnostic only; the unsatisfiable-
                    // condition pass reports when *no* space resolves.
                    let seg = escape_pointer_segment(name);
                    self.error(
                        format!("{base}/condition/spaces/{seg}"),
                        format!("unknown space `{name}`"),
                    );
                }
            }
        }
        if !spec.spaces.is_empty() && spaces.is_empty() {
            *ok = false;
        }
        condition = condition.with_spaces(spaces);
        if spec.requester_nearby {
            condition = condition.with_requester_nearby();
        }
        if spec.requires_occupied {
            condition = condition.with_occupied();
        }
        condition
    }

    fn resolve_window(&mut self, spec: &TimeWindowSpec, base: &str) -> Option<TimeWindow> {
        let start = parse_hhmm(&spec.start);
        let end = parse_hhmm(&spec.end);
        let (Some(start), Some(end)) = (start, end) else {
            self.error(
                format!("{base}/condition/time"),
                format!(
                    "unparseable time window `{}`–`{}` (expected HH:MM)",
                    spec.start, spec.end
                ),
            );
            return None;
        };
        let days = match &spec.days {
            None => WeekdaySet::ALL,
            Some(names) => {
                let mut days = Vec::new();
                for name in names {
                    match parse_weekday(name) {
                        Some(d) => days.push(d),
                        None => {
                            self.error(
                                format!("{base}/condition/time/days"),
                                format!("unknown weekday `{name}`"),
                            );
                            return None;
                        }
                    }
                }
                WeekdaySet::of(&days)
            }
        };
        Some(TimeWindow { start, end, days })
    }

    fn resolve_subjects(&mut self, spec: &SubjectSpec, base: &str, ok: &mut bool) -> SubjectScope {
        if let Some(users) = &spec.users {
            return SubjectScope::Users(users.iter().map(|&u| UserId(u)).collect());
        }
        if let Some(groups) = &spec.groups {
            let mut out = Vec::new();
            for name in groups {
                match parse_group(name) {
                    Some(g) => out.push(g),
                    None => {
                        self.error(
                            format!("{base}/subjects/groups"),
                            format!("unknown group `{name}`"),
                        );
                        *ok = false;
                    }
                }
            }
            return SubjectScope::Groups(out);
        }
        SubjectScope::Everyone
    }

    fn lookup(
        &mut self,
        taxonomy: &tippers_ontology::Taxonomy,
        key: &str,
        base: &str,
        field: &str,
        ok: &mut bool,
    ) -> Option<ConceptId> {
        match taxonomy.id(key) {
            Some(id) => Some(id),
            None => {
                self.error(
                    format!("{base}/{field}"),
                    format!("unknown concept `{key}`"),
                );
                *ok = false;
                None
            }
        }
    }
}

fn parse_action(name: &str) -> Option<DataAction> {
    match name {
        "collect" => Some(DataAction::Collect),
        "store" => Some(DataAction::Store),
        "infer" => Some(DataAction::Infer),
        "share" => Some(DataAction::Share),
        "actuate" => Some(DataAction::Actuate),
        _ => None,
    }
}

fn parse_weekday(name: &str) -> Option<Weekday> {
    match name {
        "Mon" => Some(Weekday::Mon),
        "Tue" => Some(Weekday::Tue),
        "Wed" => Some(Weekday::Wed),
        "Thu" => Some(Weekday::Thu),
        "Fri" => Some(Weekday::Fri),
        "Sat" => Some(Weekday::Sat),
        "Sun" => Some(Weekday::Sun),
        _ => None,
    }
}

fn parse_group(name: &str) -> Option<UserGroup> {
    match name {
        "faculty" => Some(UserGroup::Faculty),
        "staff" => Some(UserGroup::Staff),
        "grad" => Some(UserGroup::GradStudent),
        "undergrad" => Some(UserGroup::Undergrad),
        "visitor" => Some(UserGroup::Visitor),
        _ => None,
    }
}

fn parse_hhmm(text: &str) -> Option<TimeOfDay> {
    let (h, m) = text.split_once(':')?;
    let hour: u32 = h.parse().ok()?;
    let minute: u32 = m.parse().ok()?;
    if hour > 23 || minute > 59 {
        return None;
    }
    Some(TimeOfDay::new(hour, minute))
}

/// Declared replication topology of a deployment (the `"replication"` key
/// of a deployment spec): the named replica nodes, the commit quorum and
/// the bounded-staleness read window replicas are allowed to serve.
#[derive(Debug, Clone, Deserialize, Default)]
pub struct ReplicationSpec {
    /// Named replica nodes (including the primary).
    #[serde(default)]
    pub replicas: Vec<String>,
    /// Writes are acknowledged once this many nodes hold them durably.
    #[serde(default)]
    pub quorum: usize,
    /// How stale a replica-served read may be, in seconds. `None` = the
    /// deployment never serves reads from replicas.
    #[serde(default)]
    pub staleness_bound_secs: Option<u64>,
}

/// Declared capture-time ingest pipeline of a deployment (the `"ingest"`
/// key of a deployment spec): the per-zone mailbox bound and the spaces
/// whose sensors feed through the capture filter. Checked by the TA011
/// pass.
#[derive(Debug, Clone, Deserialize, Default)]
pub struct IngestSpec {
    /// Bounded depth of each capture zone's mailbox. `None` or `Some(0)`
    /// means the pipeline buffers without bound, which the capture pass
    /// reports as an error.
    #[serde(default)]
    pub mailbox_capacity: Option<u64>,
    /// Space names whose subtrees enforce at capture. A policy authorizing
    /// collection outside every capture zone is a capture-enforcement gap.
    #[serde(default)]
    pub capture_zones: Vec<String>,
}

/// Declared shard topology of a deployment (the `"sharding"` key of a
/// deployment spec): how many crash-isolated shards enforcement state is
/// partitioned over, and any explicit capture-zone pins. Checked by the
/// TA016 pass.
#[derive(Debug, Clone, Deserialize, Default)]
pub struct ShardingSpec {
    /// Number of shards state is partitioned over. Zero is a hard error:
    /// routing has no fail-closed answer to "which shard?" with no
    /// shards, and the sharded runtime refuses to start.
    #[serde(default)]
    pub shards: u64,
    /// Explicit zone → shard pins, overriding hash routing for audited
    /// capture zones.
    #[serde(default)]
    pub zones: Vec<ShardZonePin>,
}

/// One explicit capture-zone ownership pin (`{"zone": name, "shard": k}`).
#[derive(Debug, Clone, Deserialize)]
pub struct ShardZonePin {
    /// The pinned space's name.
    pub zone: String,
    /// The owning shard's index (must be `< shards`).
    pub shard: u64,
}

/// The JSON shape `tippers-lint --deployment` loads.
#[derive(Debug, Clone, Deserialize, Default)]
struct DeploymentSpec {
    #[serde(default)]
    services: Vec<String>,
    #[serde(default)]
    sensitive: Vec<String>,
    #[serde(default)]
    strategy: Option<String>,
    #[serde(default)]
    space_aliases: BTreeMap<String, String>,
    #[serde(default)]
    priorities: BTreeMap<String, String>,
    #[serde(default)]
    replication: Option<ReplicationSpec>,
    #[serde(default)]
    quotas: BTreeMap<String, u64>,
    #[serde(default)]
    ingest: Option<IngestSpec>,
    #[serde(default)]
    sharding: Option<ShardingSpec>,
    #[serde(default)]
    documents: Vec<PolicyDocument>,
    #[serde(default)]
    inference_rules: Vec<InferenceRuleSpec>,
    #[serde(default)]
    policies: Vec<PolicySpec>,
    #[serde(default)]
    preferences: Vec<PreferenceSpec>,
}

/// A deployment-declared inference rule: extra background knowledge the
/// operator knows attackers hold, folded into the ontology's rule base
/// before analysis (`{"name": ..., "premises": [...], "conclusion": ...,
/// "confidence": 0.5}`).
#[derive(Debug, Clone, Deserialize)]
struct InferenceRuleSpec {
    name: String,
    #[serde(default)]
    premises: Vec<String>,
    conclusion: String,
    confidence: f64,
}

#[derive(Debug, Clone, Deserialize)]
struct PolicySpec {
    id: PolicyId,
    name: String,
    space: String,
    data: String,
    purpose: String,
    #[serde(default)]
    description: Option<String>,
    #[serde(default)]
    modality: Option<String>,
    #[serde(default)]
    retention: Option<String>,
    #[serde(default)]
    actions: Option<Vec<String>>,
    #[serde(default)]
    service: Option<String>,
    #[serde(default)]
    subjects: Option<SubjectSpec>,
    #[serde(default)]
    condition: Option<ConditionSpec>,
}

#[derive(Debug, Clone, Deserialize)]
struct PreferenceSpec {
    id: PreferenceId,
    user: UserId,
    effect: EffectSpec,
    #[serde(default)]
    priority: u8,
    #[serde(default)]
    scope: ScopeSpec,
    #[serde(default)]
    note: Option<String>,
}

#[derive(Debug, Clone, Deserialize, Default)]
struct ScopeSpec {
    #[serde(default)]
    data: Option<String>,
    #[serde(default)]
    purpose: Option<String>,
    #[serde(default)]
    service: Option<String>,
    #[serde(default)]
    space: Option<String>,
    #[serde(default)]
    condition: Option<ConditionSpec>,
}

/// Subject scope: `{"users": [1, 2]}` or `{"groups": ["faculty"]}`; both
/// absent means everyone.
#[derive(Debug, Clone, Deserialize, Default)]
struct SubjectSpec {
    #[serde(default)]
    users: Option<Vec<u64>>,
    #[serde(default)]
    groups: Option<Vec<String>>,
}

/// Untagged effect shape: `"allow"`, `"deny"`, `{"degrade": "..."}` or
/// `{"noise": 0.5}`. Hand-rolled because the vendored serde derive does not
/// support `#[serde(untagged)]`.
#[derive(Debug, Clone)]
enum EffectSpec {
    Simple(String),
    Degrade { degrade: String },
    Noise { noise: f64 },
}

impl Deserialize for EffectSpec {
    fn deserialize_value(v: serde::Value) -> Result<Self, serde::de::Error> {
        match v {
            serde::Value::String(s) => Ok(EffectSpec::Simple(s)),
            serde::Value::Object(m) => {
                if let Some(d) = m.get("degrade") {
                    Ok(EffectSpec::Degrade {
                        degrade: String::deserialize_value(d.clone())?,
                    })
                } else if let Some(n) = m.get("noise") {
                    Ok(EffectSpec::Noise {
                        noise: f64::deserialize_value(n.clone())?,
                    })
                } else {
                    Err(serde::de::Error::custom(
                        "effect must be \"allow\", \"deny\", {\"degrade\": ...} or {\"noise\": ...}",
                    ))
                }
            }
            other => Err(serde::de::Error::custom(format!(
                "expected effect, found {}",
                other.kind()
            ))),
        }
    }
}

#[derive(Debug, Clone, Deserialize, Default)]
struct ConditionSpec {
    #[serde(default)]
    time: Option<TimeWindowSpec>,
    #[serde(default)]
    spaces: Vec<String>,
    #[serde(default)]
    requester_nearby: bool,
    #[serde(default)]
    requires_occupied: bool,
}

#[derive(Debug, Clone, Deserialize)]
struct TimeWindowSpec {
    start: String,
    end: String,
    #[serde(default)]
    days: Option<Vec<String>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figures_corpus_is_complete() {
        let corpus = DeploymentCorpus::figures();
        assert_eq!(corpus.documents.len(), 2);
        assert_eq!(corpus.policies.len(), 4);
        assert_eq!(corpus.preferences.len(), 4);
        assert!(corpus.services.contains("Concierge"));
        assert!(corpus.load_diagnostics.is_empty());
        // Figure 4's settings rode along on the Figure 2 resource.
        assert_eq!(corpus.documents[0].resources[0].settings.len(), 1);
    }

    #[test]
    fn space_aliases_resolve() {
        let corpus = DeploymentCorpus::figures();
        let direct = corpus.resolve_space("DBH").unwrap();
        let aliased = corpus.resolve_space("Donald Bren Hall").unwrap();
        assert_eq!(direct, aliased);
        assert!(corpus.resolve_space("Atlantis Hall").is_none());
    }

    #[test]
    fn spec_round_trip_minimal() {
        let dbh = fixtures::dbh();
        let json = r#"{
            "services": ["Concierge"],
            "policies": [{
                "id": 1, "name": "wifi log", "space": "DBH",
                "data": "data/network/wifi-association",
                "purpose": "purpose/safety/emergency-response",
                "modality": "required", "retention": "P6M"
            }],
            "preferences": [{
                "id": 1, "user": 7, "effect": "deny",
                "scope": {"data": "data/location"}
            }]
        }"#;
        let corpus =
            DeploymentCorpus::from_spec_str(json, Ontology::standard(), dbh.model).unwrap();
        assert!(
            corpus.load_diagnostics.is_empty(),
            "{:?}",
            corpus.load_diagnostics
        );
        assert_eq!(corpus.policies.len(), 1);
        assert!(corpus.policies[0].is_required());
        assert_eq!(corpus.policies[0].retention.unwrap().months, 6);
        assert_eq!(corpus.preferences.len(), 1);
        assert_eq!(corpus.preferences[0].effect, Effect::Deny);
    }

    #[test]
    fn spec_bad_names_become_load_diagnostics() {
        let dbh = fixtures::dbh();
        let json = r#"{
            "policies": [{
                "id": 3, "name": "ghost", "space": "DBH-9",
                "data": "data/unknown", "purpose": "purpose/safety/emergency-response"
            }],
            "preferences": [{
                "id": 9, "user": 1, "effect": "maybe", "scope": {}
            }]
        }"#;
        let corpus =
            DeploymentCorpus::from_spec_str(json, Ontology::standard(), dbh.model).unwrap();
        assert!(corpus.policies.is_empty());
        assert!(corpus.preferences.is_empty());
        let paths: Vec<_> = corpus
            .load_diagnostics
            .iter()
            .map(|d| d.path.as_str())
            .collect();
        assert!(paths.contains(&"/policies/3/space"));
        assert!(paths.contains(&"/policies/3/data"));
        assert!(paths.contains(&"/preferences/9/effect"));
    }

    #[test]
    fn spec_parses_rich_fields() {
        let dbh = fixtures::dbh();
        let json = r#"{
            "policies": [{
                "id": 5, "name": "weekend sensing", "space": "DBH",
                "data": "data/presence/occupancy", "purpose": "purpose/operations/comfort",
                "actions": ["collect", "actuate"],
                "subjects": {"groups": ["staff", "faculty"]},
                "condition": {
                    "time": {"start": "08:00", "end": "18:00", "days": ["Sat", "Sun"]},
                    "spaces": ["DBH-1"],
                    "requires_occupied": true
                }
            }],
            "preferences": [{
                "id": 2, "user": 3, "effect": {"degrade": "floor"}, "priority": 4,
                "scope": {"space": "DBH-2", "service": "Concierge"}
            }]
        }"#;
        let corpus =
            DeploymentCorpus::from_spec_str(json, Ontology::standard(), dbh.model).unwrap();
        assert!(
            corpus.load_diagnostics.is_empty(),
            "{:?}",
            corpus.load_diagnostics
        );
        let p = &corpus.policies[0];
        assert!(p.actions.contains(DataAction::Actuate));
        assert!(matches!(p.subjects, SubjectScope::Groups(ref g) if g.len() == 2));
        assert!(p.condition.requires_occupied);
        assert_eq!(p.condition.spaces.len(), 1);
        let pref = &corpus.preferences[0];
        assert_eq!(pref.effect, Effect::Degrade(Granularity::Floor));
        assert_eq!(pref.priority, 4);
        assert_eq!(pref.scope.service.as_ref().unwrap().as_str(), "Concierge");
    }
}
