//! The shared semantic dataflow engine.
//!
//! One lowering step ([`Facts::build`]) turns a [`DeploymentCorpus`] into a
//! typed fact graph — resolvable policies and preferences, per-resource
//! disclosed categories and their inference closures, declared purposes,
//! inference-rule cycles — and every pass queries those facts instead of
//! re-deriving them. The module also owns the analysis *units*
//! ([`UnitId`]), content hashing ([`hash`]), and the incremental
//! [`Analyzer`] that re-solves only the dirty region after an edit.

pub(crate) mod facts;
pub mod hash;
pub mod solver;

use std::collections::BTreeMap;

use tippers_policy::{BuildingPolicy, UserPreference};

pub(crate) use facts::{ClosureMemo, Facts};

use crate::corpus::DeploymentCorpus;
use crate::diag::{Diagnostic, LintCode};
use crate::{finalize, passes, AnalysisReport};

/// One independently-invalidatable unit of the corpus.
///
/// Documents are identified by their position (the wire format carries no
/// stable id), policies and preferences by their stable numeric ids.
/// `Global` stands for everything else: the ontology, the spatial model,
/// the service catalog, priorities, quotas, replication and ingest config,
/// sensitivity list, aliases, strategy. A `Global` change invalidates the
/// whole cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UnitId {
    /// Configuration shared by every pass (ontology, model, catalogs, …).
    Global,
    /// The `k`-th wire-format document.
    Document(usize),
    /// The policy with this id.
    Policy(u64),
    /// The preference with this id.
    Preference(u64),
}

impl UnitId {
    /// Stable textual key (`"global"`, `"doc:0"`, `"policy:7"`,
    /// `"pref:2"`), used by the CLI cache file and `--changed`.
    pub fn key(self) -> String {
        match self {
            UnitId::Global => "global".to_owned(),
            UnitId::Document(k) => format!("doc:{k}"),
            UnitId::Policy(id) => format!("policy:{id}"),
            UnitId::Preference(id) => format!("pref:{id}"),
        }
    }

    /// Parses a textual key produced by [`UnitId::key`].
    pub fn parse(text: &str) -> Option<UnitId> {
        if text == "global" {
            return Some(UnitId::Global);
        }
        let (kind, rest) = text.split_once(':')?;
        match kind {
            "doc" => rest.parse().ok().map(UnitId::Document),
            "policy" => rest.parse().ok().map(UnitId::Policy),
            "pref" => rest.parse().ok().map(UnitId::Preference),
            _ => None,
        }
    }
}

/// What passes see: the corpus plus the lowered fact graph.
pub(crate) struct Context<'a> {
    pub corpus: &'a DeploymentCorpus,
    pub facts: &'a Facts,
}

impl Context<'_> {
    /// All resolvable policies carrying the given id (duplicate ids are
    /// legal in a corpus; passes handle every carrier).
    pub fn policies_with_id(&self, id: u64) -> Vec<&BuildingPolicy> {
        self.facts
            .policy_index
            .get(&id)
            .map(|ixs| ixs.iter().map(|&i| &self.corpus.policies[i]).collect())
            .unwrap_or_default()
    }

    /// All resolvable preferences carrying the given id.
    pub fn preferences_with_id(&self, id: u64) -> Vec<&UserPreference> {
        self.facts
            .preference_index
            .get(&id)
            .map(|ixs| ixs.iter().map(|&i| &self.corpus.preferences[i]).collect())
            .unwrap_or_default()
    }

    /// The resolvable policies, in corpus order.
    pub fn resolvable_policies(&self) -> Vec<&BuildingPolicy> {
        self.facts
            .resolvable_policies
            .iter()
            .map(|&i| &self.corpus.policies[i])
            .collect()
    }

    /// The resolvable preferences, in corpus order.
    pub fn resolvable_preferences(&self) -> Vec<&UserPreference> {
        self.facts
            .resolvable_preferences
            .iter()
            .map(|&i| &self.corpus.preferences[i])
            .collect()
    }

    /// Allocation-free carrier iteration, for the hot `may_interact`
    /// scans: every resolvable policy carrying the given id.
    pub fn policy_carriers(&self, id: u64) -> impl Iterator<Item = &BuildingPolicy> + '_ {
        let ixs: &[usize] = match self.facts.policy_index.get(&id) {
            Some(v) => v,
            None => &[],
        };
        ixs.iter().map(move |&i| &self.corpus.policies[i])
    }
}

/// Per-(pass, owner) diagnostics: the unit of incremental caching.
pub(crate) type DiagMap = BTreeMap<(LintCode, UnitId), Vec<Diagnostic>>;

/// Runs every pass over the context, optionally fanning the (pass, owner)
/// work items across `threads` workers. The merged map is identical at any
/// thread count: each (pass, owner) cell is computed independently and the
/// merge target is an ordered map.
pub(crate) fn run_all(cx: &Context<'_>, threads: usize) -> DiagMap {
    let passes = passes::all();
    if threads <= 1 {
        let mut map = DiagMap::new();
        for pass in &passes {
            for (owner, diags) in pass.check_all(cx) {
                map.insert((pass.code(), owner), diags);
            }
        }
        return map;
    }
    let items: Vec<(usize, UnitId)> = passes
        .iter()
        .enumerate()
        .flat_map(|(i, p)| p.owners(cx).into_iter().map(move |o| (i, o)))
        .collect();
    let items = &items;
    let passes = &passes;
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut idx = t;
                    while idx < items.len() {
                        let (pi, owner) = items[idx];
                        out.push(((passes[pi].code(), owner), passes[pi].check(cx, owner)));
                        idx += threads;
                    }
                    out
                })
            })
            .collect();
        let mut map = DiagMap::new();
        for worker in workers {
            for (key, diags) in worker.join().expect("analysis worker panicked") {
                map.insert(key, diags);
            }
        }
        map
    })
}

/// Incremental analyzer: retains the corpus, the fact graph, and the
/// per-(pass, owner) diagnostic cache so that after an edit only the dirty
/// region is re-solved and everything else is spliced from cache.
///
/// The caller names what changed via [`UnitId`]s (from `--changed`, from a
/// WAL settings-mutation feed, or from content-hash diffing via
/// [`Analyzer::update_auto`]). The contract: any mutation outside
/// documents/policies/preferences — ontology, model, catalogs, quotas,
/// replication, ingest, strategy, sensitivity, aliases — must be reported
/// as [`UnitId::Global`], which falls back to a full re-analysis.
/// Suppression (`allow` sets) needs no invalidation: it is applied at
/// report-assembly time on every call.
///
/// ```
/// use tippers_analyzer::{analyze, Analyzer, DeploymentCorpus, UnitId};
///
/// let corpus = DeploymentCorpus::figures();
/// let mut analyzer = Analyzer::new(corpus.clone());
/// let mut edited = corpus.clone();
/// edited.policies[0].name = "renamed".into();
/// let incremental = analyzer.update(edited.clone(), &[UnitId::Policy(1)]).clone();
/// assert_eq!(incremental, analyze(&edited));
/// ```
pub struct Analyzer {
    corpus: DeploymentCorpus,
    facts: Facts,
    memo: ClosureMemo,
    cache: DiagMap,
    report: AnalysisReport,
}

impl Analyzer {
    /// Full analysis; the result is retained for incremental updates.
    pub fn new(corpus: DeploymentCorpus) -> Analyzer {
        Analyzer::with_threads(corpus, 1)
    }

    /// Full analysis with the (pass, owner) work items fanned across
    /// `threads` workers. The report is byte-identical at any thread count.
    pub fn with_threads(corpus: DeploymentCorpus, threads: usize) -> Analyzer {
        let mut memo = ClosureMemo::default();
        let facts = Facts::build(&corpus, &mut memo);
        let cache = run_all(
            &Context {
                corpus: &corpus,
                facts: &facts,
            },
            threads,
        );
        let report = finalize(&corpus, &cache);
        Analyzer {
            corpus,
            facts,
            memo,
            cache,
            report,
        }
    }

    /// Rebuilds an analyzer from a previous run's diagnostic cache without
    /// re-running any pass (the `tippers-lint --cache` resume path). The
    /// entries must come from an earlier [`Analyzer::entries`] of the same
    /// corpus; a stale or fabricated cache yields a stale report.
    pub fn resume(
        corpus: DeploymentCorpus,
        entries: Vec<((LintCode, UnitId), Vec<Diagnostic>)>,
    ) -> Analyzer {
        let mut memo = ClosureMemo::default();
        let facts = Facts::build(&corpus, &mut memo);
        let cache: DiagMap = entries.into_iter().collect();
        let report = finalize(&corpus, &cache);
        Analyzer {
            corpus,
            facts,
            memo,
            cache,
            report,
        }
    }

    /// The current canonical report.
    pub fn report(&self) -> &AnalysisReport {
        &self.report
    }

    /// The corpus the current report describes.
    pub fn corpus(&self) -> &DeploymentCorpus {
        &self.corpus
    }

    /// Number of facts in the lowered graph (resolvable units, disclosed
    /// categories, closure inferences, declared purposes, rules). The
    /// denominator for facts/sec throughput reporting.
    pub fn fact_count(&self) -> usize {
        self.facts.fact_count
    }

    /// The per-(pass, owner) diagnostic cache, for external persistence.
    pub fn entries(&self) -> Vec<((LintCode, UnitId), Vec<Diagnostic>)> {
        self.cache.iter().map(|(k, v)| (*k, v.clone())).collect()
    }

    /// Re-analyzes after an edit, re-running a pass on an owner only when
    /// the owner itself changed, the owner is new, or a changed unit *may
    /// interact* with it under the pass's conservative dependency
    /// predicate — evaluated against both the old and the new corpus, so
    /// an interaction that only held before the edit (say, a policy that
    /// stopped being mandatory) still invalidates.
    pub fn update(&mut self, corpus: DeploymentCorpus, changed: &[UnitId]) -> &AnalysisReport {
        let full = changed.contains(&UnitId::Global)
            || corpus.documents.len() != self.corpus.documents.len();
        let facts = Facts::build(&corpus, &mut self.memo);
        if full {
            let cache = {
                let cx = Context {
                    corpus: &corpus,
                    facts: &facts,
                };
                run_all(&cx, 1)
            };
            self.corpus = corpus;
            self.facts = facts;
            self.cache = cache;
            self.report = finalize(&self.corpus, &self.cache);
            return &self.report;
        }

        // Splice the cache in place: re-check only dirty owners, drop
        // stale ones, keep everything else untouched (no clones). For
        // each pass, a two-pointer walk over the sorted owner set and the
        // sorted cached-key range classifies every owner as kept, dirty,
        // or new, and every leftover cached key as stale.
        let passes = passes::all();
        let mut fresh: Vec<((LintCode, UnitId), Vec<Diagnostic>)> = Vec::new();
        let mut stale: Vec<(LintCode, UnitId)> = Vec::new();
        {
            let old_cx = Context {
                corpus: &self.corpus,
                facts: &self.facts,
            };
            let new_cx = Context {
                corpus: &corpus,
                facts: &facts,
            };
            for pass in &passes {
                let code = pass.code();
                let mut owners = pass.owners(&new_cx);
                owners.sort_unstable();
                owners.dedup();
                let cached: Vec<UnitId> = self
                    .cache
                    .range((code, UnitId::Global)..=(code, UnitId::Preference(u64::MAX)))
                    .map(|(&(_, o), _)| o)
                    .collect();
                let (mut i, mut j) = (0, 0);
                while i < owners.len() || j < cached.len() {
                    let owner = owners.get(i);
                    let key = cached.get(j);
                    match (owner, key) {
                        (Some(&o), Some(&k)) if o == k => {
                            i += 1;
                            j += 1;
                            let dirty = o == UnitId::Global
                                || changed.contains(&o)
                                || changed.iter().any(|&c| {
                                    pass.may_interact(&old_cx, o, c)
                                        || pass.may_interact(&new_cx, o, c)
                                });
                            if dirty {
                                fresh.push(((code, o), pass.check(&new_cx, o)));
                            }
                        }
                        (Some(&o), Some(&k)) if o < k => {
                            i += 1;
                            fresh.push(((code, o), pass.check(&new_cx, o)));
                        }
                        (Some(_), Some(&k)) => {
                            j += 1;
                            stale.push((code, k));
                        }
                        (Some(&o), None) => {
                            i += 1;
                            fresh.push(((code, o), pass.check(&new_cx, o)));
                        }
                        (None, Some(&k)) => {
                            j += 1;
                            stale.push((code, k));
                        }
                        (None, None) => unreachable!(),
                    }
                }
            }
        }

        // With no suppression config in play, the canonical report is
        // exactly the sorted, deduped union of the cells — so it can be
        // patched from the cell delta instead of rebuilt, keeping the
        // update cost proportional to the dirty region rather than to the
        // total diagnostic count. Any allow list (either corpus) forces
        // the full finalize, which also owns usage tracking and TA015.
        let fast = corpus.allow.is_empty()
            && self.corpus.allow.is_empty()
            && corpus.documents.iter().all(|d| d.lint_allow.is_empty())
            && self
                .corpus
                .documents
                .iter()
                .all(|d| d.lint_allow.is_empty())
            && corpus.load_diagnostics == self.corpus.load_diagnostics
            && self.report.suppressed == 0;
        let mut removed: Vec<Diagnostic> = Vec::new();
        let mut added: Vec<Diagnostic> = Vec::new();
        if fast {
            for key in &stale {
                if let Some(old) = self.cache.get(key) {
                    removed.extend(old.iter().cloned());
                }
            }
            for (key, diags) in &fresh {
                if let Some(old) = self.cache.get(key) {
                    removed.extend(old.iter().cloned());
                }
                added.extend(diags.iter().cloned());
            }
        }

        self.corpus = corpus;
        self.facts = facts;
        for key in stale {
            self.cache.remove(&key);
        }
        for (key, diags) in fresh {
            self.cache.insert(key, diags);
        }
        if fast {
            let old = std::mem::take(&mut self.report.diagnostics);
            self.report.diagnostics = crate::splice_diagnostics(
                old,
                removed,
                added,
                &self.cache,
                &self.corpus.load_diagnostics,
            );
        } else {
            self.report = finalize(&self.corpus, &self.cache);
        }
        &self.report
    }

    /// [`Analyzer::update`] with the changed set derived by content-hash
    /// diffing: units whose serialized form differs, plus additions,
    /// removals, and any global-configuration drift.
    pub fn update_auto(&mut self, corpus: DeploymentCorpus) -> &AnalysisReport {
        let changed = hash::diff(&self.corpus, &corpus);
        self.update(corpus, &changed)
    }
}
