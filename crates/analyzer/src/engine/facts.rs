//! The lowering step: one typed fact graph per corpus.
//!
//! [`Facts::build`] derives, once, everything the passes used to re-derive
//! independently: which policies and preferences are resolvable (and an
//! id → carriers index over them), what each document resource discloses,
//! the inference closure of each disclosure set, which purposes the
//! documents declare to occupants, and whether the rule base is cyclic.
//! Passes query this graph through [`super::Context`]; none of them walk
//! the raw corpus for semantic facts again.

use std::collections::{BTreeMap, BTreeSet};

use tippers_ontology::{ConceptId, Inference};

use super::{hash, solver};
use crate::corpus::DeploymentCorpus;

/// Memoized inference closures, keyed by the disclosed-concept set.
///
/// The memo is keyed to a fingerprint of the vocabulary (data taxonomy +
/// rule base); when the vocabulary drifts the memo self-clears, so entries
/// can never leak across ontologies. Shared across incremental updates:
/// an unchanged document's closure is a lookup, not a fixpoint.
#[derive(Debug, Default)]
pub struct ClosureMemo {
    fingerprint: u64,
    entries: BTreeMap<Vec<ConceptId>, Vec<Inference>>,
}

impl ClosureMemo {
    fn closure(&mut self, corpus: &DeploymentCorpus, disclosed: &[ConceptId]) -> Vec<Inference> {
        if let Some(hit) = self.entries.get(disclosed) {
            return hit.clone();
        }
        let out = solver::closure(&corpus.ontology.data, corpus.ontology.rules(), disclosed);
        self.entries.insert(disclosed.to_vec(), out.clone());
        out
    }

    fn rekey(&mut self, corpus: &DeploymentCorpus) {
        let mut text = String::new();
        for concept in corpus.ontology.data.iter() {
            text.push_str(concept.key());
            text.push('\x1f');
            for &p in concept.parents() {
                text.push_str(&p.index().to_string());
                text.push(',');
            }
            text.push('\x1e');
        }
        for rule in corpus.ontology.rules() {
            text.push_str(&serde_json::to_string(rule).unwrap_or_default());
            text.push('\x1e');
        }
        let fingerprint = hash::fnv64(text.as_bytes());
        if fingerprint != self.fingerprint {
            self.fingerprint = fingerprint;
            self.entries.clear();
        }
    }
}

/// The lowered fact graph of one corpus.
#[derive(Debug, Clone)]
pub struct Facts {
    /// Indices into `corpus.policies` of the resolvable policies, in order.
    pub resolvable_policies: Vec<usize>,
    /// Indices into `corpus.preferences` of the resolvable preferences.
    pub resolvable_preferences: Vec<usize>,
    /// Resolvable-policy carriers per policy id (ids may be duplicated).
    pub policy_index: BTreeMap<u64, Vec<usize>>,
    /// Resolvable-preference carriers per preference id.
    pub preference_index: BTreeMap<u64, Vec<usize>>,
    /// Disclosed data categories per document resource `(doc, resource)`,
    /// sorted and deduplicated; absent when the resource discloses nothing.
    pub disclosed: BTreeMap<(usize, usize), Vec<ConceptId>>,
    /// Inference closure of each disclosure set, byte-identical to the
    /// ontology engine's output on the same inputs.
    pub inferences: BTreeMap<(usize, usize), Vec<Inference>>,
    /// Purpose concepts the documents declare to occupants (resolved from
    /// purpose-section names by the same normalization the codec uses).
    pub declared_purposes: BTreeSet<ConceptId>,
    /// Cycles in the inference-rule dependency graph (sorted rule names
    /// per cycle); non-empty means the rule base cannot be stratified.
    pub rule_cycles: Vec<Vec<String>>,
    /// Total fact count, the denominator for facts/sec throughput.
    pub fact_count: usize,
}

impl Facts {
    /// Lowers the corpus into its fact graph, reusing `memo` for closures.
    pub fn build(corpus: &DeploymentCorpus, memo: &mut ClosureMemo) -> Facts {
        memo.rekey(corpus);

        let resolvable_policies: Vec<usize> = corpus
            .policies
            .iter()
            .enumerate()
            .filter(|(_, p)| corpus.policy_is_resolvable(p))
            .map(|(i, _)| i)
            .collect();
        let resolvable_preferences: Vec<usize> = corpus
            .preferences
            .iter()
            .enumerate()
            .filter(|(_, p)| corpus.preference_is_resolvable(p))
            .map(|(i, _)| i)
            .collect();
        let mut policy_index: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for &i in &resolvable_policies {
            policy_index
                .entry(corpus.policies[i].id.0)
                .or_default()
                .push(i);
        }
        let mut preference_index: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for &i in &resolvable_preferences {
            preference_index
                .entry(corpus.preferences[i].id.0)
                .or_default()
                .push(i);
        }

        let mut disclosed = BTreeMap::new();
        let mut inferences = BTreeMap::new();
        let mut declared_purposes = BTreeSet::new();
        for (k, doc) in corpus.documents.iter().enumerate() {
            for (i, r) in doc.resources.iter().enumerate() {
                let mut categories: Vec<ConceptId> = r
                    .observations
                    .iter()
                    .filter_map(|obs| corpus.observation_category(obs))
                    .collect();
                if categories.is_empty() {
                    if let Some(sensor) = &r.sensor {
                        categories.extend(corpus.sensor_category(&sensor.kind));
                    }
                }
                categories.sort_unstable();
                categories.dedup();
                for name in r.purpose.purposes.keys() {
                    declared_purposes.extend(declared_purpose(corpus, name));
                }
                if categories.is_empty() {
                    continue;
                }
                inferences.insert((k, i), memo.closure(corpus, &categories));
                disclosed.insert((k, i), categories);
            }
        }

        let rule_cycles = solver::rule_cycles(&corpus.ontology.data, corpus.ontology.rules());

        let fact_count = resolvable_policies.len()
            + resolvable_preferences.len()
            + disclosed.values().map(Vec::len).sum::<usize>()
            + inferences.values().map(Vec::len).sum::<usize>()
            + declared_purposes.len()
            + corpus.ontology.rules().len();

        Facts {
            resolvable_policies,
            resolvable_preferences,
            policy_index,
            preference_index,
            disclosed,
            inferences,
            declared_purposes,
            rule_cycles,
            fact_count,
        }
    }
}

/// Resolves a document purpose-section name (`"emergency response"`) to a
/// purpose concept: the name is normalized to kebab case and matched
/// against the final segment of each taxonomy key.
pub fn declared_purpose(corpus: &DeploymentCorpus, name: &str) -> Option<ConceptId> {
    let mut slug = String::new();
    for ch in name.trim().chars() {
        if ch.is_ascii_alphanumeric() {
            slug.push(ch.to_ascii_lowercase());
        } else if !slug.ends_with('-') {
            slug.push('-');
        }
    }
    let slug = slug.trim_matches('-');
    if slug.is_empty() {
        return None;
    }
    corpus
        .ontology
        .purposes
        .iter()
        .find(|c| c.key().rsplit('/').next() == Some(slug))
        .map(tippers_ontology::Concept::id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figures_facts_cover_the_corpus() {
        let corpus = DeploymentCorpus::figures();
        let mut memo = ClosureMemo::default();
        let facts = Facts::build(&corpus, &mut memo);
        assert_eq!(facts.resolvable_policies.len(), 4);
        assert_eq!(facts.resolvable_preferences.len(), 4);
        // Figure 2's WiFi resource and Figure 3's concierge resource both
        // disclose categories, and both closures are non-trivial.
        assert!(facts.disclosed.contains_key(&(0, 0)));
        assert!(facts.disclosed.contains_key(&(1, 0)));
        assert!(!facts.inferences[&(0, 0)].is_empty());
        // Figure 2 declares "emergency response".
        let c = corpus.ontology.concepts();
        assert!(facts.declared_purposes.contains(&c.emergency_response));
        assert!(facts.rule_cycles.is_empty());
        assert!(facts.fact_count > 10);
    }

    #[test]
    fn closures_match_the_ontology_engine() {
        let corpus = DeploymentCorpus::figures();
        let mut memo = ClosureMemo::default();
        let facts = Facts::build(&corpus, &mut memo);
        let engine = corpus.ontology.inference();
        for (key, categories) in &facts.disclosed {
            assert_eq!(facts.inferences[key], engine.closure(categories));
        }
        // Second build hits the memo and stays identical.
        let again = Facts::build(&corpus, &mut memo);
        assert_eq!(facts.inferences, again.inferences);
    }

    #[test]
    fn purpose_names_resolve_by_slug() {
        let corpus = DeploymentCorpus::figures();
        let c = corpus.ontology.concepts();
        assert_eq!(
            declared_purpose(&corpus, "Emergency Response"),
            Some(c.emergency_response)
        );
        assert_eq!(declared_purpose(&corpus, "time travel"), None);
        assert_eq!(declared_purpose(&corpus, "  "), None);
    }
}
