//! Deterministic worklist fixpoint solver over the inference-rule base.
//!
//! [`closure`] computes the same least fixpoint as the ontology's chaotic
//! [`tippers_ontology::InferenceEngine::closure`] sweep — byte-identical
//! output, including best-chain `via` evidence — but only re-evaluates a
//! rule when a concept one of its premises can match has actually gained
//! confidence. The equivalence argument: in the chaotic sweep, a rule none
//! of whose premise-matching concepts changed since its last evaluation
//! recomputes the same `rule_conf`, and updates require *strictly greater*
//! confidence, so the evaluation is a no-op; the worklist schedules every
//! non-no-op evaluation at exactly the position the chaotic sweep would
//! have run it (same-sweep for watchers later in rule order, next-sweep
//! for earlier ones), so every state transition happens in the identical
//! order with identical inputs.
//!
//! The solver also derives the rule *dependency graph* (rule → rule when
//! one's conclusion can feed the other's premise) and reports its cycles,
//! which the TA014 compilability pass turns into diagnostics: a cyclic
//! rule base cannot be stratified into the decision tables ROADMAP item 2
//! wants to compile policies into.

use std::collections::BTreeSet;

use tippers_ontology::{Concept, ConceptId, Inference, InferenceRule, Taxonomy};

/// Everything inferable from `collected`, byte-identical to
/// [`tippers_ontology::InferenceEngine::closure`] on the same inputs.
pub fn closure(
    taxonomy: &Taxonomy,
    rules: &[InferenceRule],
    collected: &[ConceptId],
) -> Vec<Inference> {
    let n = taxonomy.len();
    let ids: Vec<ConceptId> = taxonomy.iter().map(Concept::id).collect();
    let mut conf: Vec<f64> = vec![0.0; n];
    let mut via: Vec<Vec<String>> = vec![Vec::new(); n];
    for &c in collected {
        conf[c.index()] = 1.0;
    }

    // watchers[i] = rules with a premise that concept i can satisfy.
    let mut watchers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (r, rule) in rules.iter().enumerate() {
        for i in 0..n {
            if rule.premises.iter().any(|&p| taxonomy.is_a(ids[i], p)) {
                watchers[i].push(r);
            }
        }
    }

    // Worklist of rule indices, round-structured to mirror chaotic sweeps:
    // an update notifies watchers *later in rule order* within the current
    // round (the chaotic sweep would reach them this sweep) and the rest in
    // the next round.
    let mut current: BTreeSet<usize> = collected
        .iter()
        .flat_map(|c| watchers[c.index()].iter().copied())
        .collect();
    let mut next: BTreeSet<usize> = BTreeSet::new();
    while !current.is_empty() {
        let mut cursor = current.iter().next().copied();
        while let Some(r) = cursor {
            current.remove(&r);
            let rule = &rules[r];
            let mut rule_conf = rule.confidence;
            let mut chain: Vec<String> = Vec::new();
            let mut ok = true;
            for &prem in &rule.premises {
                // A premise is satisfied by any held concept subsumed by
                // it; the best support wins (last max in index order, as
                // the chaotic sweep picks).
                let best = (0..n)
                    .filter(|&i| conf[i] > 0.0)
                    .filter(|&i| taxonomy.is_a(ids[i], prem))
                    .map(|i| (conf[i], i))
                    .max_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN"));
                match best {
                    Some((c, i)) => {
                        rule_conf *= c;
                        for v in &via[i] {
                            if !chain.contains(v) {
                                chain.push(v.clone());
                            }
                        }
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                let idx = rule.conclusion.index();
                if rule_conf > conf[idx] + 1e-12 {
                    conf[idx] = rule_conf;
                    chain.push(rule.name.clone());
                    via[idx] = chain;
                    for &w in &watchers[idx] {
                        if w > r {
                            current.insert(w);
                        } else {
                            next.insert(w);
                        }
                    }
                }
            }
            cursor = current
                .range((std::ops::Bound::Excluded(r), std::ops::Bound::Unbounded))
                .next()
                .copied();
        }
        std::mem::swap(&mut current, &mut next);
    }

    let inputs: Vec<usize> = collected.iter().map(|c| c.index()).collect();
    (0..n)
        .filter(|i| conf[*i] > 0.0 && !inputs.contains(i))
        .map(|i| Inference {
            concept: ids[i],
            confidence: conf[i],
            via: via[i].clone(),
        })
        .collect()
}

/// Cycles in the rule dependency graph, each as the sorted names of the
/// rules on it. Edge `r → s` when `r`'s conclusion can satisfy one of
/// `s`'s premises (taxonomy-subsumption-aware, like premise matching).
/// Cycles are strongly connected components of size > 1 plus self-loops,
/// reported in ascending order of their smallest rule index.
pub fn rule_cycles(taxonomy: &Taxonomy, rules: &[InferenceRule]) -> Vec<Vec<String>> {
    let n = rules.len();
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (r, rule) in rules.iter().enumerate() {
        for (s, other) in rules.iter().enumerate() {
            if other
                .premises
                .iter()
                .any(|&p| taxonomy.is_a(rule.conclusion, p))
            {
                edges[r].push(s);
            }
        }
    }

    // Iterative Tarjan SCC; nodes visited in index order, so component
    // output is deterministic.
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut counter = 0usize;
    let mut components: Vec<Vec<usize>> = Vec::new();

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        // (node, next-edge cursor)
        let mut work: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut cursor)) = work.last_mut() {
            if *cursor == 0 {
                index[v] = counter;
                low[v] = counter;
                counter += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = edges[v].get(*cursor) {
                *cursor += 1;
                if index[w] == usize::MAX {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    component.sort_unstable();
                    components.push(component);
                }
            }
        }
    }

    let mut cycles: Vec<Vec<usize>> = components
        .into_iter()
        .filter(|c| c.len() > 1 || edges[c[0]].contains(&c[0]))
        .collect();
    cycles.sort_unstable();
    cycles
        .into_iter()
        .map(|c| {
            let mut names: Vec<String> = c.iter().map(|&r| rules[r].name.clone()).collect();
            names.sort_unstable();
            names
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use tippers_ontology::Ontology;

    use super::*;

    #[test]
    fn matches_the_chaotic_engine_on_the_standard_ontology() {
        let ontology = Ontology::standard();
        let engine = ontology.inference();
        for concept in ontology.data.iter() {
            let sources = vec![concept.id()];
            assert_eq!(
                closure(&ontology.data, ontology.rules(), &sources),
                engine.closure(&sources),
                "diverged on single source {}",
                concept.key()
            );
        }
        // A multi-source set exercising chained and multi-premise rules.
        let c = ontology.concepts();
        let sources = vec![c.wifi_association, c.public_schedule, c.image];
        assert_eq!(
            closure(&ontology.data, ontology.rules(), &sources),
            engine.closure(&sources)
        );
    }

    #[test]
    fn the_standard_rule_base_is_acyclic() {
        let ontology = Ontology::standard();
        assert_eq!(
            rule_cycles(&ontology.data, ontology.rules()),
            Vec::<Vec<String>>::new()
        );
    }

    #[test]
    fn a_two_rule_loop_is_a_cycle() {
        let mut ontology = Ontology::standard();
        let c = ontology.concepts().clone();
        ontology.add_rule(InferenceRule::new(
            "power-temp",
            vec![c.power_consumption],
            c.ambient_temperature,
            0.5,
        ));
        ontology.add_rule(InferenceRule::new(
            "temp-power",
            vec![c.ambient_temperature],
            c.power_consumption,
            0.5,
        ));
        let cycles = rule_cycles(&ontology.data, ontology.rules());
        assert_eq!(
            cycles,
            vec![vec!["power-temp".to_owned(), "temp-power".to_owned()]]
        );
        // The closure still terminates on a cyclic base (confidence decays).
        let out = closure(&ontology.data, ontology.rules(), &[c.power_consumption]);
        assert!(out
            .iter()
            .any(|i| i.concept == c.ambient_temperature && (i.confidence - 0.5).abs() < 1e-9));
    }

    #[test]
    fn a_self_loop_is_a_cycle() {
        let mut ontology = Ontology::standard();
        let c = ontology.concepts().clone();
        ontology.add_rule(InferenceRule::new(
            "occ-occ",
            vec![c.occupancy],
            c.occupancy,
            0.9,
        ));
        let cycles = rule_cycles(&ontology.data, ontology.rules());
        assert_eq!(cycles, vec![vec!["occ-occ".to_owned()]]);
    }
}
