//! Content hashing for incremental invalidation.
//!
//! Units (documents, policies, preferences) are hashed over their
//! canonical JSON serialization with FNV-1a 64; the global configuration
//! (everything that is not a unit) is folded into a single hash. Two
//! corpora whose unit hashes match produce identical per-unit analysis
//! facts, so diffing hashes yields a sound changed-set for
//! [`crate::Analyzer::update`].

use std::collections::BTreeMap;

use serde::Serialize;

use super::UnitId;
use crate::corpus::DeploymentCorpus;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over raw bytes.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// FNV-1a 64 over a value's JSON serialization.
pub fn hash_json<T: Serialize>(value: &T) -> u64 {
    let text = serde_json::to_string(value).unwrap_or_default();
    fnv64(text.as_bytes())
}

fn fold(hash: u64, piece: u64) -> u64 {
    let mut h = hash;
    for b in piece.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Per-unit content hashes. A policy id carried by several policies hashes
/// all carriers together, so duplicate-id corpora stay sound.
pub fn unit_hashes(corpus: &DeploymentCorpus) -> BTreeMap<UnitId, u64> {
    let mut out: BTreeMap<UnitId, u64> = BTreeMap::new();
    for (k, doc) in corpus.documents.iter().enumerate() {
        out.insert(UnitId::Document(k), hash_json(doc));
    }
    for p in &corpus.policies {
        let unit = UnitId::Policy(p.id.0);
        let h = fold(out.get(&unit).copied().unwrap_or(FNV_OFFSET), hash_json(p));
        out.insert(unit, h);
    }
    for p in &corpus.preferences {
        let unit = UnitId::Preference(p.id.0);
        let h = fold(out.get(&unit).copied().unwrap_or(FNV_OFFSET), hash_json(p));
        out.insert(unit, h);
    }
    out
}

/// One hash over everything that is not a unit: taxonomies, inference
/// rules, the spatial model, catalogs, quotas, replication and ingest
/// config, sensitivity, aliases, strategy, and load diagnostics. (The
/// suppression `allow` set is deliberately excluded — it is applied at
/// report-assembly time and needs no pass invalidation.)
pub fn global_hash(corpus: &DeploymentCorpus) -> u64 {
    let mut text = String::new();
    for taxonomy in [
        &corpus.ontology.sensors,
        &corpus.ontology.data,
        &corpus.ontology.purposes,
    ] {
        for concept in taxonomy.iter() {
            text.push_str(concept.key());
            text.push('\x1f');
            for &p in concept.parents() {
                text.push_str(&p.index().to_string());
                text.push(',');
            }
            text.push('\x1e');
        }
        text.push('\x1d');
    }
    for rule in corpus.ontology.rules() {
        text.push_str(&serde_json::to_string(rule).unwrap_or_default());
        text.push('\x1e');
    }
    for space in corpus.model.iter() {
        text.push_str(space.name());
        text.push('\x1f');
        if let Some(parent) = space.parent() {
            text.push_str(&parent.index().to_string());
        }
        text.push('\x1e');
    }
    for s in &corpus.services {
        text.push_str(s);
        text.push('\x1e');
    }
    for (k, v) in &corpus.priorities {
        text.push_str(k);
        text.push('\x1f');
        text.push_str(v);
        text.push('\x1e');
    }
    if let Some(r) = &corpus.replication {
        text.push_str(&format!(
            "repl:{:?}:{}:{:?}",
            r.replicas, r.quorum, r.staleness_bound_secs
        ));
    }
    for (k, v) in &corpus.quotas {
        text.push_str(&format!("quota:{k}={v};"));
    }
    if let Some(i) = &corpus.ingest {
        text.push_str(&format!(
            "ingest:{:?}:{:?}",
            i.mailbox_capacity, i.capture_zones
        ));
    }
    for &s in &corpus.sensitive {
        text.push_str(&format!("sens:{};", s.index()));
    }
    for (k, v) in &corpus.space_aliases {
        text.push_str(&format!("alias:{k}={v};"));
    }
    text.push_str(&format!("strategy:{:?};", corpus.strategy));
    for d in &corpus.load_diagnostics {
        text.push_str(&serde_json::to_string(d).unwrap_or_default());
        text.push('\x1e');
    }
    fnv64(text.as_bytes())
}

/// The changed-set between two corpora: hash-diffed units (modified,
/// added, removed) plus [`UnitId::Global`] when the global configuration
/// drifted.
pub fn diff(old: &DeploymentCorpus, new: &DeploymentCorpus) -> Vec<UnitId> {
    let mut changed = Vec::new();
    if global_hash(old) != global_hash(new) {
        changed.push(UnitId::Global);
    }
    let old_units = unit_hashes(old);
    let new_units = unit_hashes(new);
    for (unit, h) in &new_units {
        if old_units.get(unit) != Some(h) {
            changed.push(*unit);
        }
    }
    for unit in old_units.keys() {
        if !new_units.contains_key(unit) {
            changed.push(*unit);
        }
    }
    changed.sort_unstable();
    changed.dedup();
    changed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn diff_spots_the_edited_unit() {
        let base = DeploymentCorpus::figures();
        let mut edited = base.clone();
        edited.policies[0].name = "renamed".into();
        assert_eq!(diff(&base, &edited), vec![UnitId::Policy(1)]);
        assert!(diff(&base, &base.clone()).is_empty());
    }

    #[test]
    fn diff_spots_global_drift_and_removals() {
        let base = DeploymentCorpus::figures();
        let mut edited = base.clone();
        edited.quotas.insert("purpose/safety".into(), 5);
        let removed = edited.policies.pop().expect("non-empty").id;
        let changed = diff(&base, &edited);
        assert!(changed.contains(&UnitId::Global));
        assert!(changed.contains(&UnitId::Policy(removed.0)));
    }

    #[test]
    fn allow_set_is_not_global_state() {
        let base = DeploymentCorpus::figures();
        let mut edited = base.clone();
        edited.allow.insert("TA005".into());
        assert!(diff(&base, &edited).is_empty());
    }
}
