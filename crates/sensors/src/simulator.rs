//! Discrete-time building simulator: occupants move per their role
//! schedules, deployed sensors sample them, observations stream out.
//!
//! This substitutes for the paper's live Donald Bren Hall testbed (see
//! DESIGN.md): it exercises the same data paths — MAC/timestamp WiFi logs,
//! beacon sightings, camera frames, power readings — and reproduces the
//! §II.A role-vs-schedule regularities the inference attack needs.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tippers_ontology::{Ontology, StandardConcepts};
use tippers_policy::{Timestamp, UserGroup, UserId};
use tippers_spatial::fixtures::{dbh, Dbh};
use tippers_spatial::SpaceId;

use crate::deploy::{deploy, DeploymentConfig};
use crate::device::{DeviceId, DeviceRegistry};
use crate::events::{Observation, ObservationPayload};
use crate::mobility::{assign_teaching, day_plan, TeachingSlot};
use crate::occupant::{DayPlan, Occupant};

/// How many occupants of each group to simulate.
#[derive(Debug, Clone, Copy)]
pub struct Population {
    /// Non-faculty staff.
    pub staff: usize,
    /// Faculty members.
    pub faculty: usize,
    /// Graduate students.
    pub grads: usize,
    /// Undergraduates.
    pub undergrads: usize,
    /// Visitors.
    pub visitors: usize,
}

impl Population {
    /// Total occupants.
    pub fn total(&self) -> usize {
        self.staff + self.faculty + self.grads + self.undergrads + self.visitors
    }

    /// A small population for unit tests.
    pub fn small() -> Population {
        Population {
            staff: 5,
            faculty: 5,
            grads: 10,
            undergrads: 10,
            visitors: 2,
        }
    }
}

impl Default for Population {
    fn default() -> Self {
        Population {
            staff: 60,
            faculty: 80,
            grads: 220,
            undergrads: 120,
            visitors: 20,
        }
    }
}

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimulatorConfig {
    /// RNG seed; two simulators with equal configs produce equal traces.
    pub seed: u64,
    /// Occupant counts.
    pub population: Population,
    /// Sampling tick, seconds (default 300 — five minutes).
    pub tick_secs: i64,
    /// Sensor deployment.
    pub deployment: DeploymentConfig,
    /// Probability a camera frame identifies a visible occupant.
    pub identify_probability: f64,
}

impl Default for SimulatorConfig {
    fn default() -> Self {
        SimulatorConfig {
            seed: 0xD0_B1,
            population: Population::default(),
            tick_secs: 300,
            deployment: DeploymentConfig::default(),
            identify_probability: 0.5,
        }
    }
}

/// One ground-truth presence sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PresenceRecord {
    /// Sample time.
    pub time: Timestamp,
    /// The occupant.
    pub user: UserId,
    /// Where they actually were.
    pub space: SpaceId,
}

/// A batch of simulation output: observations plus ground truth.
#[derive(Debug, Clone, Default)]
pub struct SimulationTrace {
    /// Sensor observations in timestamp order.
    pub observations: Vec<Observation>,
    /// Ground-truth presence, one record per present occupant per tick.
    pub ground_truth: Vec<PresenceRecord>,
}

impl SimulationTrace {
    /// Appends another trace.
    pub fn extend(&mut self, other: SimulationTrace) {
        self.observations.extend(other.observations);
        self.ground_truth.extend(other.ground_truth);
    }
}

/// The simulator.
#[derive(Debug)]
pub struct BuildingSimulator {
    config: SimulatorConfig,
    dbh: Dbh,
    concepts: StandardConcepts,
    devices: DeviceRegistry,
    occupants: Vec<Occupant>,
    teaching: Vec<TeachingSlot>,
    clock: Timestamp,
    rng: StdRng,
    plans: HashMap<(i64, u64), DayPlan>,
    ap_of_space: HashMap<SpaceId, DeviceId>,
    beacon_of_space: HashMap<SpaceId, DeviceId>,
    last_ap: HashMap<u64, DeviceId>,
    prev_space: HashMap<u64, SpaceId>,
    temps: HashMap<DeviceId, f64>,
}

impl BuildingSimulator {
    /// Builds a simulator over the default DBH model.
    pub fn new(config: SimulatorConfig, ontology: &Ontology) -> Self {
        Self::with_building(config, ontology, dbh())
    }

    /// Builds a simulator over a custom building.
    pub fn with_building(config: SimulatorConfig, ontology: &Ontology, dbh: Dbh) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let devices = deploy(&dbh, ontology, &config.deployment);
        let concepts = ontology.concepts().clone();

        let mut occupants = Vec::new();
        let mut next_user = 0u64;
        let mut spawn = |group: UserGroup, count: usize, occupants: &mut Vec<Occupant>| {
            for _ in 0..count {
                let user = UserId(next_user);
                next_user += 1;
                occupants.push(Occupant::new(user, format!("{group} {user}"), group));
            }
        };
        spawn(UserGroup::Staff, config.population.staff, &mut occupants);
        spawn(
            UserGroup::Faculty,
            config.population.faculty,
            &mut occupants,
        );
        spawn(
            UserGroup::GradStudent,
            config.population.grads,
            &mut occupants,
        );
        spawn(
            UserGroup::Undergrad,
            config.population.undergrads,
            &mut occupants,
        );
        spawn(
            UserGroup::Visitor,
            config.population.visitors,
            &mut occupants,
        );

        // Offices for staff, faculty and grads, round-robin (shared offices
        // once the building fills up).
        let mut office_cursor = 0usize;
        for o in occupants.iter_mut() {
            if matches!(
                o.group,
                UserGroup::Staff | UserGroup::Faculty | UserGroup::GradStudent
            ) {
                o.office = Some(dbh.offices[office_cursor % dbh.offices.len()]);
                office_cursor += 1;
            }
        }

        let teaching = assign_teaching(&mut rng, &occupants, &dbh);

        // Static coverage maps: the AP/beacon serving each space — the
        // device in the space itself, else the floor corridor's, else any.
        let mut ap_of_space = HashMap::new();
        let mut beacon_of_space = HashMap::new();
        let aps = devices.of_class(concepts.wifi_ap);
        let beacons = devices.of_class(concepts.ble_beacon);
        let ap_by_exact: HashMap<SpaceId, DeviceId> = aps
            .iter()
            .map(|&id| (devices.get(id).expect("deployed").space, id))
            .collect();
        let beacon_by_exact: HashMap<SpaceId, DeviceId> = beacons
            .iter()
            .map(|&id| (devices.get(id).expect("deployed").space, id))
            .collect();
        for s in dbh.model.iter() {
            let sid = s.id();
            let fallback_ap = dbh
                .model
                .floor_of(sid)
                .and_then(|f| {
                    dbh.corridors
                        .iter()
                        .find(|&&c| dbh.model.floor_of(c) == Some(f))
                        .and_then(|c| ap_by_exact.get(c))
                })
                .or_else(|| aps.first())
                .copied();
            if let Some(ap) = ap_by_exact.get(&sid).copied().or(fallback_ap) {
                ap_of_space.insert(sid, ap);
            }
            if let Some(&b) = beacon_by_exact.get(&sid) {
                beacon_of_space.insert(sid, b);
            }
        }

        BuildingSimulator {
            config,
            dbh,
            concepts,
            devices,
            occupants,
            teaching,
            clock: Timestamp::at(0, 0, 0),
            rng,
            plans: HashMap::new(),
            ap_of_space,
            beacon_of_space,
            last_ap: HashMap::new(),
            prev_space: HashMap::new(),
            temps: HashMap::new(),
        }
    }

    /// The building model.
    pub fn dbh(&self) -> &Dbh {
        &self.dbh
    }

    /// Deployed devices.
    pub fn devices(&self) -> &DeviceRegistry {
        &self.devices
    }

    /// Mutable device access — the BMS actuates settings through this
    /// (§IV.A.4: "A sensor is actuated based on the parameters specified in
    /// its current settings").
    pub fn devices_mut(&mut self) -> &mut DeviceRegistry {
        &mut self.devices
    }

    /// The simulated occupants.
    pub fn occupants(&self) -> &[Occupant] {
        &self.occupants
    }

    /// Looks an occupant up.
    pub fn occupant(&self, user: UserId) -> Option<&Occupant> {
        self.occupants.iter().find(|o| o.user == user)
    }

    /// The public teaching schedule (the §II.A attacker's background
    /// knowledge).
    pub fn teaching_schedule(&self) -> &[TeachingSlot] {
        &self.teaching
    }

    /// Current simulation time.
    pub fn clock(&self) -> Timestamp {
        self.clock
    }

    /// Jumps the clock (no observations are generated for skipped time).
    pub fn set_clock(&mut self, t: Timestamp) {
        self.clock = t;
    }

    /// Ground truth: where `user` is at `t` (generates the day plan if
    /// needed; deterministic in the seed).
    pub fn position_of(&mut self, user: UserId, t: Timestamp) -> Option<SpaceId> {
        let day = t.day();
        let occupant = self.occupants.iter().find(|o| o.user == user)?.clone();
        self.plan_for(&occupant, day).position_at(t)
    }

    fn plan_for(&mut self, occupant: &Occupant, day: i64) -> &DayPlan {
        let key = (day, occupant.user.0);
        if !self.plans.contains_key(&key) {
            // Per-(day,user) RNG stream keeps plans independent of query
            // order, so traces are reproducible.
            let mut rng = StdRng::seed_from_u64(
                self.config
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((day as u64) << 32 | occupant.user.0),
            );
            let plan = day_plan(&mut rng, occupant, &self.dbh, day, &self.teaching);
            self.plans.insert(key, plan);
        }
        &self.plans[&key]
    }

    fn due(&self, period: i64) -> bool {
        self.clock.seconds() % period.max(self.config.tick_secs) < self.config.tick_secs
    }

    /// Samples all sensors at the current clock, returns the observations,
    /// and advances the clock by one tick.
    pub fn tick(&mut self) -> SimulationTrace {
        let now = self.clock;
        let mut trace = SimulationTrace::default();

        // Ground-truth positions for this tick.
        let occupants = self.occupants.clone();
        let mut positions: HashMap<u64, SpaceId> = HashMap::new();
        for o in &occupants {
            if let Some(space) = self.plan_for(o, now.day()).position_at(now) {
                positions.insert(o.user.0, space);
                trace.ground_truth.push(PresenceRecord {
                    time: now,
                    user: o.user,
                    space,
                });
            }
        }

        // Occupants per space (for cameras, motion, power).
        let mut by_space: HashMap<SpaceId, Vec<&Occupant>> = HashMap::new();
        for o in &occupants {
            if let Some(&s) = positions.get(&o.user.0) {
                by_space.entry(s).or_default().push(o);
            }
        }

        // WiFi associations: on AP change, plus a periodic heartbeat.
        for o in &occupants {
            let Some(&space) = positions.get(&o.user.0) else {
                self.last_ap.remove(&o.user.0);
                continue;
            };
            let Some(&ap) = self.ap_of_space.get(&space) else {
                continue;
            };
            let device = self.devices.get(ap).expect("coverage map is valid");
            if !device.settings.enabled() || device.settings.suppresses(o.mac) {
                continue;
            }
            let changed = self.last_ap.get(&o.user.0) != Some(&ap);
            if changed || self.due(device.settings.sample_period_secs()) {
                trace.observations.push(Observation {
                    device: ap,
                    timestamp: now,
                    space: device.space,
                    payload: ObservationPayload::WifiAssociation { mac: o.mac, ap },
                    subject: Some(o.user),
                });
                self.last_ap.insert(o.user.0, ap);
            }
        }

        // Beacon sightings: every tick while an IoTA-carrying occupant
        // shares a room with a beacon.
        for o in &occupants {
            if !o.has_iota {
                continue;
            }
            let Some(&space) = positions.get(&o.user.0) else {
                continue;
            };
            let Some(&beacon) = self.beacon_of_space.get(&space) else {
                continue;
            };
            let device = self.devices.get(beacon).expect("coverage map is valid");
            if !device.settings.enabled() || device.settings.suppresses(o.mac) {
                continue;
            }
            if self.due(device.settings.sample_period_secs()) {
                trace.observations.push(Observation {
                    device: beacon,
                    timestamp: now,
                    space: device.space,
                    payload: ObservationPayload::BeaconSighting { mac: o.mac, beacon },
                    subject: Some(o.user),
                });
            }
        }

        // Badge swipes on meeting-room entry.
        let meeting_rooms = self.dbh.meeting_rooms.clone();
        for o in &occupants {
            let cur = positions.get(&o.user.0).copied();
            let prev = self.prev_space.get(&o.user.0).copied();
            if let Some(space) = cur {
                if meeting_rooms.contains(&space) && prev != Some(space) {
                    if let Some(reader) = self
                        .devices
                        .of_class(self.concepts.badge_reader)
                        .into_iter()
                        .find(|&d| self.devices.get(d).expect("listed").space == space)
                    {
                        let device = self.devices.get(reader).expect("listed");
                        if device.settings.enabled() {
                            // Policy 3: verification is required; visitors
                            // without credentials are let in by their host
                            // but the reader logs a denied attempt.
                            let granted = o.group != tippers_policy::UserGroup::Visitor;
                            trace.observations.push(Observation {
                                device: reader,
                                timestamp: now,
                                space,
                                payload: ObservationPayload::BadgeSwipe {
                                    user: o.user,
                                    granted,
                                },
                                subject: Some(o.user),
                            });
                        }
                    }
                }
                self.prev_space.insert(o.user.0, space);
            } else {
                self.prev_space.remove(&o.user.0);
            }
        }

        // Cameras, power meters, motion and temperature sensors.
        let device_ids: Vec<DeviceId> = self.devices.iter().map(|d| d.id).collect();
        for id in device_ids {
            let device = self.devices.get(id).expect("listed").clone();
            if !device.settings.enabled() || !self.due(device.settings.sample_period_secs()) {
                continue;
            }
            let here = by_space.get(&device.space);
            let payload = if device.class == self.concepts.camera {
                let visible: Vec<&&Occupant> = here.map(|v| v.iter().collect()).unwrap_or_default();
                let identified = visible
                    .iter()
                    .filter(|_| self.rng.gen::<f64>() < self.config.identify_probability)
                    .map(|o| o.user)
                    .collect();
                Some(ObservationPayload::CameraFrame {
                    occupant_count: visible.len() as u32,
                    identified,
                })
            } else if device.class == self.concepts.power_meter {
                let occupied = here.is_some_and(|v| !v.is_empty());
                let watts = if occupied {
                    90.0 + self.rng.gen::<f64>() * 70.0
                } else {
                    15.0 + self.rng.gen::<f64>() * 10.0
                };
                Some(ObservationPayload::PowerReading { watts })
            } else if device.class == self.concepts.motion_sensor {
                Some(ObservationPayload::Motion {
                    detected: here.is_some_and(|v| !v.is_empty()),
                })
            } else if device.class == self.concepts.temperature_sensor {
                let t = self.temps.entry(id).or_insert(21.5);
                *t += (self.rng.gen::<f64>() - 0.5) * 0.2;
                *t = t.clamp(18.0, 26.0);
                Some(ObservationPayload::Temperature { celsius: *t })
            } else {
                None
            };
            if let Some(payload) = payload {
                // Office sensors attribute their reading to the office's
                // assignee — that attribution is what Preference 1 protects.
                let subject = self
                    .occupants
                    .iter()
                    .find(|o| o.office == Some(device.space))
                    .map(|o| o.user);
                trace.observations.push(Observation {
                    device: id,
                    timestamp: now,
                    space: device.space,
                    payload,
                    subject,
                });
            }
        }

        self.clock = now + self.config.tick_secs;
        trace
    }

    /// Samples all sensors at the current clock like [`Self::tick`], but
    /// pours the observations into a *bounded* [`crate::SensorLink`]
    /// instead of an unbounded trace — overload becomes link accounting
    /// ([`crate::PollStats`]), not memory growth. Returns this tick's
    /// ground truth.
    pub fn tick_into(&mut self, link: &mut crate::link::SensorLink) -> Vec<PresenceRecord> {
        let trace = self.tick();
        link.offer(trace.observations);
        trace.ground_truth
    }

    /// Runs until `end` (exclusive), accumulating a trace.
    pub fn run_until(&mut self, end: Timestamp) -> SimulationTrace {
        let mut trace = SimulationTrace::default();
        while self.clock < end {
            trace.extend(self.tick());
        }
        trace
    }

    /// Runs `days` whole days from the current clock.
    pub fn run_days(&mut self, days: i64) -> SimulationTrace {
        let end = Timestamp(self.clock.seconds() + days * 86_400);
        self.run_until(end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SimulatorConfig {
        SimulatorConfig {
            seed: 1,
            population: Population::small(),
            tick_secs: 600,
            deployment: DeploymentConfig {
                cameras: 6,
                wifi_aps: 12,
                beacons: 30,
                power_meters: 20,
                motion_everywhere: true,
                hvac_per_floor: true,
                badge_readers: true,
            },
            identify_probability: 0.5,
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let ont = Ontology::standard();
        let mut a = BuildingSimulator::new(small_config(), &ont);
        let mut b = BuildingSimulator::new(small_config(), &ont);
        a.set_clock(Timestamp::at(0, 9, 0));
        b.set_clock(Timestamp::at(0, 9, 0));
        let ta = a.run_until(Timestamp::at(0, 11, 0));
        let tb = b.run_until(Timestamp::at(0, 11, 0));
        assert_eq!(ta.observations, tb.observations);
        assert_eq!(ta.ground_truth, tb.ground_truth);
    }

    #[test]
    fn wifi_observations_track_ground_truth_floor() {
        let ont = Ontology::standard();
        let mut sim = BuildingSimulator::new(small_config(), &ont);
        sim.set_clock(Timestamp::at(0, 10, 0));
        let trace = sim.run_until(Timestamp::at(0, 14, 0));
        let dbh = sim.dbh().clone();
        let mut checked = 0;
        for obs in &trace.observations {
            if let ObservationPayload::WifiAssociation { .. } = obs.payload {
                let user = obs.subject.expect("simulator knows subjects");
                let truth = sim.position_of(user, obs.timestamp).expect("present");
                // The serving AP is in the same room or on the same floor.
                assert_eq!(
                    dbh.model.floor_of(obs.space),
                    dbh.model.floor_of(truth),
                    "AP floor should match occupant floor"
                );
                checked += 1;
            }
        }
        assert!(
            checked > 10,
            "expected some wifi observations, got {checked}"
        );
    }

    #[test]
    fn disabled_devices_emit_nothing() {
        let ont = Ontology::standard();
        let c = ont.concepts();
        let mut sim = BuildingSimulator::new(small_config(), &ont);
        let aps: Vec<DeviceId> = sim.devices().of_class(c.wifi_ap);
        for ap in aps {
            sim.devices_mut()
                .get_mut(ap)
                .unwrap()
                .settings
                .set_enabled(false);
        }
        sim.set_clock(Timestamp::at(0, 10, 0));
        let trace = sim.run_until(Timestamp::at(0, 12, 0));
        assert!(trace
            .observations
            .iter()
            .all(|o| !matches!(o.payload, ObservationPayload::WifiAssociation { .. })));
    }

    #[test]
    fn suppressed_macs_are_dropped_at_capture() {
        let ont = Ontology::standard();
        let c = ont.concepts();
        let mut sim = BuildingSimulator::new(small_config(), &ont);
        let mac = sim.occupants()[0].mac;
        let user = sim.occupants()[0].user;
        for ap in sim.devices().of_class(c.wifi_ap) {
            sim.devices_mut()
                .get_mut(ap)
                .unwrap()
                .settings
                .suppressed_macs
                .push(mac);
        }
        for b in sim.devices().of_class(c.ble_beacon) {
            sim.devices_mut()
                .get_mut(b)
                .unwrap()
                .settings
                .suppressed_macs
                .push(mac);
        }
        sim.set_clock(Timestamp::at(0, 9, 0));
        let trace = sim.run_until(Timestamp::at(0, 17, 0));
        for obs in &trace.observations {
            if let Some(m) = obs.payload.mac() {
                assert_ne!(m, mac, "suppressed MAC leaked from {:?}", obs.payload);
            }
        }
        // The user still appears in ground truth (they are present, just
        // not sensed).
        assert!(trace.ground_truth.iter().any(|g| g.user == user));
    }

    #[test]
    fn badge_swipes_on_meeting_room_entry() {
        let ont = Ontology::standard();
        let mut sim = BuildingSimulator::new(small_config(), &ont);
        sim.set_clock(Timestamp::at(0, 8, 0));
        let trace = sim.run_until(Timestamp::at(0, 20, 0));
        let swipes: Vec<_> = trace
            .observations
            .iter()
            .filter(|o| matches!(o.payload, ObservationPayload::BadgeSwipe { .. }))
            .collect();
        // Visitors go to meeting rooms; at least some swipes should exist.
        assert!(!swipes.is_empty());
        let rooms = &sim.dbh().meeting_rooms;
        assert!(swipes.iter().all(|o| rooms.contains(&o.space)));
    }

    #[test]
    fn visitor_badge_swipes_are_denied() {
        let ont = Ontology::standard();
        let mut sim = BuildingSimulator::new(small_config(), &ont);
        sim.set_clock(Timestamp::at(0, 8, 0));
        let trace = sim.run_until(Timestamp::at(0, 20, 0));
        let visitors: Vec<_> = sim
            .occupants()
            .iter()
            .filter(|o| o.group == tippers_policy::UserGroup::Visitor)
            .map(|o| o.user)
            .collect();
        for obs in &trace.observations {
            if let ObservationPayload::BadgeSwipe { user, granted } = obs.payload {
                assert_eq!(granted, !visitors.contains(&user));
            }
        }
    }

    #[test]
    fn power_readings_reflect_occupancy() {
        let ont = Ontology::standard();
        let mut sim = BuildingSimulator::new(small_config(), &ont);
        sim.set_clock(Timestamp::at(0, 10, 0));
        let trace = sim.run_until(Timestamp::at(0, 16, 0));
        let mut occupied = Vec::new();
        let mut empty = Vec::new();
        for obs in &trace.observations {
            if let ObservationPayload::PowerReading { watts } = obs.payload {
                let any_here = trace
                    .ground_truth
                    .iter()
                    .any(|g| g.time == obs.timestamp && g.space == obs.space);
                if any_here {
                    occupied.push(watts);
                } else {
                    empty.push(watts);
                }
            }
        }
        if !occupied.is_empty() && !empty.is_empty() {
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            assert!(mean(&occupied) > mean(&empty) + 30.0);
        }
    }
}
