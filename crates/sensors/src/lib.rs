//! Smart-building sensor substrate and discrete-event simulator.
//!
//! The paper's testbed is a live six-story building (Donald Bren Hall) with
//! "more than 40 surveillance cameras …, 60 WiFi Access Points …, 200
//! Bluetooth beacons …, and 100 Power outlet meters" (§II). We do not have
//! that building, so this crate simulates it (see DESIGN.md §2):
//!
//! * [`DeviceRegistry`] / [`SensorDevice`] — deployed sensors with
//!   actuatable [`SensorSettings`] (§IV.A.4), including capture-time MAC
//!   suppression (the *where = device* enforcement point of §V.C).
//! * [`Occupant`]s with role-driven [`mobility`] schedules that reproduce
//!   the §II.A regularities (staff 7am–5pm, grads late, undergrads in
//!   classrooms).
//! * [`BuildingSimulator`] — ticks the building forward, emitting
//!   [`Observation`]s (WiFi associations, beacon sightings, camera frames,
//!   power readings, motion, temperature, badge swipes) alongside ground
//!   truth for evaluation.
//! * [`attack`] — the §II.A inference attack (location, role, identity)
//!   run against nothing but the WiFi log plus public background knowledge.
//!
//! # Examples
//!
//! ```
//! use tippers_sensors::{BuildingSimulator, Population, SimulatorConfig, DeploymentConfig};
//! use tippers_ontology::Ontology;
//! use tippers_policy::Timestamp;
//!
//! let ontology = Ontology::standard();
//! let config = SimulatorConfig {
//!     population: Population::small(),
//!     ..SimulatorConfig::default()
//! };
//! let mut sim = BuildingSimulator::new(config, &ontology);
//! sim.set_clock(Timestamp::at(0, 9, 0));
//! let trace = sim.run_until(Timestamp::at(0, 10, 0));
//! assert!(!trace.observations.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
mod deploy;
mod device;
mod events;
mod link;
pub mod mobility;
mod occupant;
mod simulator;

pub use deploy::{deploy, DeploymentConfig};
pub use device::{
    DeviceId, DeviceRegistry, MacAddress, SensorDevice, SensorSettings, SettingValue,
};
pub use events::{Observation, ObservationPayload};
pub use link::{LinkConfig, PollStats, SensorLink};
pub use occupant::{DayPlan, Occupant, Segment};
pub use simulator::{
    BuildingSimulator, Population, PresenceRecord, SimulationTrace, SimulatorConfig,
};
