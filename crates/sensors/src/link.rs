//! The sensor-to-BMS delivery link: a *bounded* conveyance with capped
//! virtual-time retry and drop accounting.
//!
//! Before this link existed the simulator buffered observations without
//! bound ([`crate::SimulationTrace`] just grows), so downstream
//! backpressure turned into unbounded memory. A [`SensorLink`] instead
//! holds at most [`LinkConfig::capacity`] observations; anything the
//! buffer cannot hold, and anything refused downstream more than
//! [`LinkConfig::max_attempts`] times, is dropped *and accounted* in
//! [`PollStats`] — overload shows up in counters, never in memory.
//!
//! The link also consults
//! [`FaultPoint::SensorLinkDrop`](tippers_resilience::FaultPoint): an
//! armed plan makes the link itself refuse delivery rounds, exercising
//! the same capped-retry path a flaky radio would.

use std::collections::VecDeque;

use tippers_resilience::{FaultPlan, FaultPoint};

use crate::events::Observation;

/// Bounds for a [`SensorLink`].
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// Most observations the link buffers; offers past this are dropped
    /// with accounting.
    pub capacity: usize,
    /// Delivery attempts per observation (the capped retry budget); an
    /// observation refused this many times is dropped with accounting.
    pub max_attempts: u32,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            capacity: 4096,
            max_attempts: 3,
        }
    }
}

/// Lifetime delivery accounting for one link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PollStats {
    /// Observations the sensor plane handed to the link.
    pub offered: u64,
    /// Observations the downstream accepted.
    pub delivered: u64,
    /// Observations re-queued after a backpressure refusal.
    pub retried: u64,
    /// Observations dropped because the buffer was full at offer time.
    pub dropped_overflow: u64,
    /// Observations dropped after exhausting the retry budget.
    pub dropped_retries: u64,
    /// Delivery rounds the link itself refused (injected
    /// `sensor-link-drop` faults).
    pub link_refusals: u64,
    /// Deepest the buffer has ever been.
    pub high_watermark: usize,
}

/// A bounded sensor delivery link.
#[derive(Debug)]
pub struct SensorLink {
    config: LinkConfig,
    plan: FaultPlan,
    buffer: VecDeque<(u32, Observation)>,
    stats: PollStats,
}

impl SensorLink {
    /// A link with no fault injection.
    pub fn new(config: LinkConfig) -> SensorLink {
        SensorLink::with_fault_plan(config, FaultPlan::disarmed())
    }

    /// A link whose delivery rounds consult `plan` at
    /// [`FaultPoint::SensorLinkDrop`].
    pub fn with_fault_plan(config: LinkConfig, plan: FaultPlan) -> SensorLink {
        SensorLink {
            config,
            plan,
            buffer: VecDeque::new(),
            stats: PollStats::default(),
        }
    }

    /// Offers observations to the link. Whatever the bounded buffer
    /// cannot hold is dropped and accounted — never buffered without
    /// bound.
    pub fn offer(&mut self, observations: impl IntoIterator<Item = Observation>) {
        for obs in observations {
            self.stats.offered += 1;
            if self.buffer.len() >= self.config.capacity {
                self.stats.dropped_overflow += 1;
                continue;
            }
            self.buffer.push_back((1, obs));
            self.stats.high_watermark = self.stats.high_watermark.max(self.buffer.len());
        }
    }

    /// Attempts one delivery round: everything buffered is handed to
    /// `deliver`, which returns the observations the downstream refused
    /// (its backpressure signal). Refusals are re-queued in order with
    /// their attempt count bumped — until the capped budget runs out,
    /// at which point they are dropped and accounted. An armed
    /// `sensor-link-drop` fault makes the link refuse the whole round
    /// itself.
    ///
    /// Returns how many observations were delivered this round.
    pub fn pump(&mut self, deliver: impl FnOnce(Vec<Observation>) -> Vec<Observation>) -> usize {
        if self.buffer.is_empty() {
            return 0;
        }
        if self.plan.should_fail(FaultPoint::SensorLinkDrop) {
            self.stats.link_refusals += 1;
            let round = self.drain_round();
            self.requeue_round(round);
            return 0;
        }
        let round = self.drain_round();
        let sent: Vec<Observation> = round.iter().map(|(_, o)| o.clone()).collect();
        let refused = deliver(sent);
        let delivered = round.len().saturating_sub(refused.len());
        self.stats.delivered += delivered as u64;
        // Refusals are an order-preserving subsequence of the round (the
        // downstream hands back exactly the observations it could not
        // admit), so attempt counts realign with one forward scan.
        let mut refused_iter = refused.into_iter().peekable();
        let mut requeue: Vec<(u32, Observation)> = Vec::new();
        for (attempts, obs) in round {
            if refused_iter.peek() == Some(&obs) {
                refused_iter.next();
                requeue.push((attempts, obs));
            }
        }
        self.requeue_round(requeue);
        delivered
    }

    fn drain_round(&mut self) -> Vec<(u32, Observation)> {
        self.buffer.drain(..).collect()
    }

    fn requeue_round(&mut self, round: Vec<(u32, Observation)>) {
        for (attempts, obs) in round {
            if attempts >= self.config.max_attempts {
                self.stats.dropped_retries += 1;
            } else {
                self.stats.retried += 1;
                self.buffer.push_back((attempts + 1, obs));
            }
        }
        self.stats.high_watermark = self.stats.high_watermark.max(self.buffer.len());
    }

    /// Observations currently buffered.
    pub fn depth(&self) -> usize {
        self.buffer.len()
    }

    /// True when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// The configured bounds.
    pub fn config(&self) -> LinkConfig {
        self.config
    }

    /// Lifetime accounting.
    pub fn stats(&self) -> PollStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceId;
    use crate::events::ObservationPayload;
    use tippers_policy::Timestamp;
    use tippers_spatial::fixtures::dbh;

    fn obs(t: i64) -> Observation {
        Observation {
            device: DeviceId(0),
            timestamp: Timestamp(t),
            space: dbh().offices[0],
            payload: ObservationPayload::Motion { detected: true },
            subject: None,
        }
    }

    #[test]
    fn overflow_is_dropped_and_accounted_never_buffered() {
        let mut link = SensorLink::new(LinkConfig {
            capacity: 2,
            max_attempts: 3,
        });
        link.offer((0..5).map(obs));
        assert_eq!(link.depth(), 2);
        let stats = link.stats();
        assert_eq!(stats.offered, 5);
        assert_eq!(stats.dropped_overflow, 3);
        assert_eq!(stats.high_watermark, 2);
    }

    #[test]
    fn backpressure_retries_are_capped_then_dropped() {
        let mut link = SensorLink::new(LinkConfig {
            capacity: 16,
            max_attempts: 2,
        });
        link.offer((0..3).map(obs));
        // Downstream refuses everything, twice: first round re-queues
        // (attempt 2), second round exhausts the budget.
        assert_eq!(link.pump(|sent| sent), 0);
        assert_eq!(link.depth(), 3);
        assert_eq!(link.stats().retried, 3);
        assert_eq!(link.pump(|sent| sent), 0);
        assert!(link.is_empty());
        assert_eq!(link.stats().dropped_retries, 3);
        // A healthy downstream delivers.
        link.offer((10..12).map(obs));
        assert_eq!(link.pump(|_| Vec::new()), 2);
        assert_eq!(link.stats().delivered, 2);
    }

    #[test]
    fn partial_refusal_requeues_only_the_refused_tail() {
        let mut link = SensorLink::new(LinkConfig {
            capacity: 16,
            max_attempts: 3,
        });
        link.offer((0..4).map(obs));
        let delivered = link.pump(|mut sent| sent.split_off(2));
        assert_eq!(delivered, 2);
        assert_eq!(link.depth(), 2);
        // The refused tail retains order.
        let next = link.pump(|sent| {
            assert_eq!(sent[0].timestamp.seconds(), 2);
            assert_eq!(sent[1].timestamp.seconds(), 3);
            Vec::new()
        });
        assert_eq!(next, 2);
    }

    #[test]
    fn injected_link_drop_refuses_rounds_without_losing_data() {
        let plan = FaultPlan::seeded(7);
        plan.arm_limited(FaultPoint::SensorLinkDrop, 1.0, 1);
        let mut link = SensorLink::with_fault_plan(
            LinkConfig {
                capacity: 16,
                max_attempts: 3,
            },
            plan.clone(),
        );
        link.offer((0..2).map(obs));
        assert_eq!(link.pump(|_| Vec::new()), 0);
        assert_eq!(link.stats().link_refusals, 1);
        assert_eq!(link.depth(), 2);
        // Budget spent: the next round goes through.
        assert_eq!(link.pump(|_| Vec::new()), 2);
    }
}
