use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};
use tippers_ontology::ConceptId;
use tippers_spatial::SpaceId;

/// Identifier of a deployed sensor device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeviceId(pub u32);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "device#{}", self.0)
    }
}

/// A 48-bit MAC address.
///
/// The paper's Figure 2 discloses that "If your device is connected to a
/// WiFi Access Point in DBH, its MAC address is stored" — MACs are the
/// linking key of the §II.A inference attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MacAddress(pub [u8; 6]);

impl MacAddress {
    /// Deterministic per-user MAC for simulations.
    pub fn for_user(user: u64) -> MacAddress {
        let b = user.to_be_bytes();
        MacAddress([0x02, 0x1b, b[4], b[5], b[6], b[7]])
    }
}

impl fmt::Display for MacAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// A value a sensor setting parameter can take.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SettingValue {
    /// Boolean flag.
    Bool(bool),
    /// Integer parameter (e.g. sampling period in seconds).
    Int(i64),
    /// Free-text parameter.
    Text(String),
}

/// The settings of a sensor: "a set of valid parameters associated with the
/// sensor which determines its behavior" (§IV.A.4).
///
/// Well-known keys are exposed as typed accessors; unknown keys are kept
/// verbatim so subsystem-specific parameters survive round trips.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SensorSettings {
    params: HashMap<String, SettingValue>,
    /// MACs the device must not report — capture-time enforcement of
    /// opted-out users (the *where = device* option of §V.C).
    pub suppressed_macs: Vec<MacAddress>,
}

impl SensorSettings {
    /// Settings with a sampling period.
    pub fn with_period(seconds: i64) -> SensorSettings {
        let mut s = SensorSettings::default();
        s.set("sample_period_secs", SettingValue::Int(seconds));
        s
    }

    /// Sets a parameter.
    pub fn set(&mut self, key: impl Into<String>, value: SettingValue) {
        self.params.insert(key.into(), value);
    }

    /// Reads a parameter.
    pub fn get(&self, key: &str) -> Option<&SettingValue> {
        self.params.get(key)
    }

    /// Sampling period in seconds (default 300).
    pub fn sample_period_secs(&self) -> i64 {
        match self.params.get("sample_period_secs") {
            Some(SettingValue::Int(v)) if *v > 0 => *v,
            _ => 300,
        }
    }

    /// Whether the device is enabled (default true).
    pub fn enabled(&self) -> bool {
        !matches!(self.params.get("enabled"), Some(SettingValue::Bool(false)))
    }

    /// Enables or disables the device.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.set("enabled", SettingValue::Bool(enabled));
    }

    /// True if observations about this MAC must be suppressed at capture.
    pub fn suppresses(&self, mac: MacAddress) -> bool {
        self.suppressed_macs.contains(&mac)
    }
}

/// A deployed sensor: class (ontology concept), location, and settings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SensorDevice {
    /// Unique device id.
    pub id: DeviceId,
    /// Sensor class in the sensor taxonomy (e.g. `sensor/network/wifi-ap`).
    pub class: ConceptId,
    /// Where it is installed.
    pub space: SpaceId,
    /// Current settings.
    pub settings: SensorSettings,
    /// Subsystem the device belongs to ("camera subsystem", §IV.A.3).
    pub subsystem: String,
}

impl SensorDevice {
    /// Creates a device with default settings.
    pub fn new(id: DeviceId, class: ConceptId, space: SpaceId, subsystem: &str) -> Self {
        SensorDevice {
            id,
            class,
            space,
            settings: SensorSettings::default(),
            subsystem: subsystem.to_owned(),
        }
    }
}

/// A registry of deployed devices with by-space and by-subsystem lookups.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DeviceRegistry {
    devices: Vec<SensorDevice>,
}

impl DeviceRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        DeviceRegistry::default()
    }

    /// Adds a device, assigning the next id.
    pub fn add(&mut self, class: ConceptId, space: SpaceId, subsystem: &str) -> DeviceId {
        let id = DeviceId(self.devices.len() as u32);
        self.devices
            .push(SensorDevice::new(id, class, space, subsystem));
        id
    }

    /// All devices.
    pub fn iter(&self) -> impl Iterator<Item = &SensorDevice> {
        self.devices.iter()
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True if no devices are registered.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Looks a device up.
    pub fn get(&self, id: DeviceId) -> Option<&SensorDevice> {
        self.devices.get(id.0 as usize)
    }

    /// Mutable access (settings actuation).
    pub fn get_mut(&mut self, id: DeviceId) -> Option<&mut SensorDevice> {
        self.devices.get_mut(id.0 as usize)
    }

    /// Devices of a given class.
    pub fn of_class(&self, class: ConceptId) -> Vec<DeviceId> {
        self.devices
            .iter()
            .filter(|d| d.class == class)
            .map(|d| d.id)
            .collect()
    }

    /// Devices in a given subsystem.
    pub fn in_subsystem(&self, subsystem: &str) -> Vec<DeviceId> {
        self.devices
            .iter()
            .filter(|d| d.subsystem == subsystem)
            .map(|d| d.id)
            .collect()
    }

    /// Devices installed in (a descendant of) `space`.
    pub fn in_space(&self, model: &tippers_spatial::SpatialModel, space: SpaceId) -> Vec<DeviceId> {
        self.devices
            .iter()
            .filter(|d| model.contains(space, d.space))
            .map(|d| d.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tippers_ontology::Ontology;
    use tippers_spatial::SpatialModel;

    #[test]
    fn mac_formatting_and_determinism() {
        let a = MacAddress::for_user(1);
        let b = MacAddress::for_user(1);
        assert_eq!(a, b);
        assert_ne!(a, MacAddress::for_user(2));
        assert_eq!(a.to_string().len(), 17);
    }

    #[test]
    fn settings_defaults_and_overrides() {
        let mut s = SensorSettings::default();
        assert!(s.enabled());
        assert_eq!(s.sample_period_secs(), 300);
        s.set_enabled(false);
        s.set("sample_period_secs", SettingValue::Int(60));
        assert!(!s.enabled());
        assert_eq!(s.sample_period_secs(), 60);
        // Invalid period falls back to the default.
        s.set("sample_period_secs", SettingValue::Int(-5));
        assert_eq!(s.sample_period_secs(), 300);
    }

    #[test]
    fn suppression_list() {
        let mut s = SensorSettings::default();
        let mac = MacAddress::for_user(7);
        assert!(!s.suppresses(mac));
        s.suppressed_macs.push(mac);
        assert!(s.suppresses(mac));
    }

    #[test]
    fn registry_lookups() {
        let ont = Ontology::standard();
        let c = ont.concepts();
        let m = SpatialModel::new("c");
        let mut reg = DeviceRegistry::new();
        let ap = reg.add(c.wifi_ap, m.root(), "wifi");
        let cam = reg.add(c.camera, m.root(), "camera");
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.of_class(c.wifi_ap), vec![ap]);
        assert_eq!(reg.in_subsystem("camera"), vec![cam]);
        assert_eq!(reg.in_space(&m, m.root()).len(), 2);
        assert!(reg.get(ap).is_some());
        assert!(reg.get(DeviceId(99)).is_none());
    }
}
