use serde::{Deserialize, Serialize};
use tippers_policy::{Timestamp, UserGroup, UserId};
use tippers_spatial::SpaceId;

use crate::device::MacAddress;

/// A building inhabitant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Occupant {
    /// The occupant's user id (shared with the policy layer).
    pub user: UserId,
    /// Display name.
    pub name: String,
    /// Group, which drives the mobility schedule and the §II.A role
    /// heuristics.
    pub group: UserGroup,
    /// Assigned office, if any.
    pub office: Option<SpaceId>,
    /// The MAC of the phone they carry.
    pub mac: MacAddress,
    /// Whether they run an IoT Assistant (enables beacon sightings and
    /// preference synchronization).
    pub has_iota: bool,
}

impl Occupant {
    /// Creates an occupant with a deterministic MAC.
    pub fn new(user: UserId, name: impl Into<String>, group: UserGroup) -> Occupant {
        Occupant {
            user,
            name: name.into(),
            group,
            office: None,
            mac: MacAddress::for_user(user.0),
            has_iota: true,
        }
    }
}

/// One stay in one space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// The occupied space.
    pub space: SpaceId,
    /// Stay start (inclusive).
    pub start: Timestamp,
    /// Stay end (exclusive).
    pub end: Timestamp,
}

/// An occupant's plan for one day: ordered, non-overlapping segments.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DayPlan {
    segments: Vec<Segment>,
}

impl DayPlan {
    /// An absent day.
    pub fn absent() -> DayPlan {
        DayPlan::default()
    }

    /// Builds a plan from segments.
    ///
    /// # Panics
    ///
    /// Panics if segments overlap or are out of order (simulator bug).
    pub fn from_segments(segments: Vec<Segment>) -> DayPlan {
        for w in segments.windows(2) {
            assert!(
                w[0].end <= w[1].start,
                "day plan segments must be ordered and disjoint"
            );
        }
        DayPlan { segments }
    }

    /// The segments of the plan.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Where the occupant is at `t`, or `None` if outside the building.
    pub fn position_at(&self, t: Timestamp) -> Option<SpaceId> {
        self.segments
            .iter()
            .find(|s| s.start <= t && t < s.end)
            .map(|s| s.space)
    }

    /// First arrival of the day, if present at all.
    pub fn arrival(&self) -> Option<Timestamp> {
        self.segments.first().map(|s| s.start)
    }

    /// Final departure of the day.
    pub fn departure(&self) -> Option<Timestamp> {
        self.segments.last().map(|s| s.end)
    }

    /// Total time in the building, seconds.
    pub fn dwell_seconds(&self) -> i64 {
        self.segments.iter().map(|s| s.end - s.start).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tippers_spatial::{RoomUse, SpaceKind, SpatialModel};

    fn two_rooms() -> (SpaceId, SpaceId) {
        let mut m = SpatialModel::new("c");
        let a = m.add_space("a", SpaceKind::room(RoomUse::Office), m.root());
        let b = m.add_space("b", SpaceKind::room(RoomUse::Lab), m.root());
        (a, b)
    }

    #[test]
    fn position_lookup() {
        let (a, b) = two_rooms();
        let s1 = Segment {
            space: a,
            start: Timestamp::at(0, 9, 0),
            end: Timestamp::at(0, 12, 0),
        };
        let s2 = Segment {
            space: b,
            start: Timestamp::at(0, 12, 0),
            end: Timestamp::at(0, 17, 0),
        };
        let plan = DayPlan::from_segments(vec![s1, s2]);
        assert_eq!(plan.position_at(Timestamp::at(0, 10, 0)), Some(a));
        assert_eq!(plan.position_at(Timestamp::at(0, 12, 0)), Some(b));
        assert_eq!(plan.position_at(Timestamp::at(0, 20, 0)), None);
        assert_eq!(plan.arrival(), Some(s1.start));
        assert_eq!(plan.departure(), Some(s2.end));
        assert_eq!(plan.dwell_seconds(), 8 * 3600);
    }

    #[test]
    #[should_panic(expected = "ordered and disjoint")]
    fn overlapping_segments_panic() {
        let (a, b) = two_rooms();
        let s1 = Segment {
            space: a,
            start: Timestamp::at(0, 9, 0),
            end: Timestamp::at(0, 12, 0),
        };
        let s2 = Segment {
            space: b,
            start: Timestamp::at(0, 11, 0),
            end: Timestamp::at(0, 13, 0),
        };
        let _ = DayPlan::from_segments(vec![s1, s2]);
    }

    #[test]
    fn absent_day() {
        let plan = DayPlan::absent();
        assert_eq!(plan.position_at(Timestamp::at(0, 12, 0)), None);
        assert_eq!(plan.dwell_seconds(), 0);
    }

    #[test]
    fn occupant_defaults() {
        let o = Occupant::new(UserId(4), "Mary", UserGroup::GradStudent);
        assert_eq!(o.mac, MacAddress::for_user(4));
        assert!(o.has_iota);
        assert_eq!(o.office, None);
    }
}
