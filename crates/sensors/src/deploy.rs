//! Sensor deployment matching the paper's Donald Bren Hall description:
//! "more than 40 surveillance cameras covering all the corridors and doors,
//! 60 WiFi Access Points, 200 Bluetooth beacons, and 100 Power outlet
//! meters" (§II), plus the motion/temperature sensors Policy 1 requires and
//! the badge readers Policy 3 requires.

use tippers_ontology::Ontology;
use tippers_spatial::fixtures::Dbh;
use tippers_spatial::SpaceKind;

use crate::device::DeviceRegistry;

/// How many devices of each kind to deploy.
#[derive(Debug, Clone)]
pub struct DeploymentConfig {
    /// Surveillance cameras (corridors + lobby). DBH has ~40.
    pub cameras: usize,
    /// WiFi access points. DBH has ~60.
    pub wifi_aps: usize,
    /// Bluetooth beacons. DBH has ~200.
    pub beacons: usize,
    /// Power outlet meters (offices). DBH has ~100.
    pub power_meters: usize,
    /// Deploy a motion sensor in every room (Policy 1).
    pub motion_everywhere: bool,
    /// Deploy one temperature sensor and HVAC unit per floor.
    pub hvac_per_floor: bool,
    /// Deploy a badge reader on every meeting room (Policy 3).
    pub badge_readers: bool,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        DeploymentConfig {
            cameras: 40,
            wifi_aps: 60,
            beacons: 200,
            power_meters: 100,
            motion_everywhere: true,
            hvac_per_floor: true,
            badge_readers: true,
        }
    }
}

/// Deploys sensors over a DBH model, round-robin across suitable spaces.
///
/// * Cameras go to corridors and the lobby (never restrooms or offices).
/// * WiFi APs cover corridors first, then large rooms.
/// * Beacons go to every kind of room.
/// * Power meters go to offices.
pub fn deploy(dbh: &Dbh, ontology: &Ontology, config: &DeploymentConfig) -> DeviceRegistry {
    let c = ontology.concepts();
    let mut reg = DeviceRegistry::new();

    let camera_spots: Vec<_> = dbh
        .corridors
        .iter()
        .copied()
        .chain(std::iter::once(dbh.lobby))
        .collect();
    for i in 0..config.cameras {
        reg.add(c.camera, camera_spots[i % camera_spots.len()], "camera");
    }

    let ap_spots: Vec<_> = dbh
        .corridors
        .iter()
        .chain(dbh.classrooms.iter())
        .chain(dbh.labs.iter())
        .chain(dbh.offices.iter())
        .copied()
        .collect();
    for i in 0..config.wifi_aps {
        reg.add(c.wifi_ap, ap_spots[i % ap_spots.len()], "wifi");
    }

    let beacon_spots: Vec<_> = dbh
        .model
        .iter()
        .filter(|s| matches!(s.kind(), SpaceKind::Room(_) | SpaceKind::Corridor))
        .map(tippers_spatial::Space::id)
        .collect();
    for i in 0..config.beacons {
        reg.add(c.ble_beacon, beacon_spots[i % beacon_spots.len()], "beacon");
    }

    for i in 0..config.power_meters {
        reg.add(c.power_meter, dbh.offices[i % dbh.offices.len()], "power");
    }

    if config.motion_everywhere {
        for s in dbh.model.iter() {
            if matches!(s.kind(), SpaceKind::Room(_)) {
                reg.add(c.motion_sensor, s.id(), "motion");
            }
        }
    }

    if config.hvac_per_floor {
        for &floor in &dbh.floors {
            reg.add(c.temperature_sensor, floor, "hvac");
            reg.add(c.hvac, floor, "hvac");
        }
    }

    if config.badge_readers {
        for &room in &dbh.meeting_rooms {
            reg.add(c.badge_reader, room, "access");
        }
    }

    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use tippers_spatial::fixtures::dbh;

    #[test]
    fn default_deployment_matches_paper_counts() {
        let ont = Ontology::standard();
        let d = dbh();
        let reg = deploy(&d, &ont, &DeploymentConfig::default());
        let c = ont.concepts();
        assert_eq!(reg.of_class(c.camera).len(), 40);
        assert_eq!(reg.of_class(c.wifi_ap).len(), 60);
        assert_eq!(reg.of_class(c.ble_beacon).len(), 200);
        assert_eq!(reg.of_class(c.power_meter).len(), 100);
        assert_eq!(reg.of_class(c.badge_reader).len(), d.meeting_rooms.len());
        assert_eq!(reg.of_class(c.temperature_sensor).len(), 6);
    }

    #[test]
    fn cameras_avoid_private_rooms() {
        let ont = Ontology::standard();
        let d = dbh();
        let reg = deploy(&d, &ont, &DeploymentConfig::default());
        let c = ont.concepts();
        for id in reg.of_class(c.camera) {
            let device = reg.get(id).unwrap();
            let kind = d.model.space(device.space).kind();
            assert!(
                !kind.is_private(),
                "camera deployed in private space {kind:?}"
            );
        }
    }

    #[test]
    fn scaled_down_deployment() {
        let ont = Ontology::standard();
        let d = dbh();
        let cfg = DeploymentConfig {
            cameras: 2,
            wifi_aps: 6,
            beacons: 10,
            power_meters: 5,
            motion_everywhere: false,
            hvac_per_floor: false,
            badge_readers: false,
        };
        let reg = deploy(&d, &ont, &cfg);
        assert_eq!(reg.len(), 2 + 6 + 10 + 5);
    }
}
