//! Role-driven occupant mobility — the schedules behind the paper's §II.A
//! heuristics: "non-faculty staff arrive at 7 am and leave before 5 pm,
//! graduate students generally leave the building late, and undergrads
//! spend most of the time in classrooms".

use rand::Rng;
use tippers_policy::{Timestamp, UserGroup, Weekday};
use tippers_spatial::fixtures::Dbh;
use tippers_spatial::SpaceId;

use crate::occupant::{DayPlan, Occupant, Segment};

/// A recurring teaching assignment, used both by the mobility model and as
/// the attacker's "publicly available information (e.g., schedules of
/// professors and the courses they teach)".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TeachingSlot {
    /// The teaching faculty member (by occupant index).
    pub teacher: tippers_policy::UserId,
    /// The classroom.
    pub classroom: SpaceId,
    /// Day of week the class meets.
    pub weekday: Weekday,
    /// Start hour (classes run two hours).
    pub start_hour: u32,
}

/// Samples an approximately normal value via the central limit theorem
/// (sum of uniforms), adequate for schedule jitter.
pub(crate) fn approx_normal<R: Rng>(rng: &mut R, mean: f64, std: f64) -> f64 {
    let sum: f64 = (0..12).map(|_| rng.gen::<f64>()).sum();
    mean + (sum - 6.0) * std
}

fn ts(day: i64, hour_frac: f64) -> Timestamp {
    let clamped = hour_frac.clamp(0.0, 23.95);
    Timestamp(day * 86_400 + (clamped * 3600.0) as i64)
}

/// Generates one occupant's plan for `day`.
///
/// Weekends are mostly absent (grad students show up with ~35 %
/// probability, everyone else ~5 %). Weekday shapes per group:
///
/// * **Staff** — arrive ≈ 7:00, office with a kitchen lunch, leave ≈ 16:45.
/// * **Faculty** — arrive ≈ 9:00, office, teaching slots in classrooms,
///   leave ≈ 18:00.
/// * **Grad students** — arrive ≈ 10:30, lab/office alternation, leave
///   late (≈ 21:00).
/// * **Undergrads** — arrive ≈ 9–14, chain of classroom blocks with a
///   kitchen break, leave after class.
/// * **Visitors** — a 1–3 h stay around the lobby and a meeting room.
pub fn day_plan<R: Rng>(
    rng: &mut R,
    occupant: &Occupant,
    dbh: &Dbh,
    day: i64,
    teaching: &[TeachingSlot],
) -> DayPlan {
    let weekday = Timestamp(day * 86_400).weekday();
    let weekend = matches!(weekday, Weekday::Sat | Weekday::Sun);
    let attendance: f64 = match (weekend, occupant.group) {
        (true, UserGroup::GradStudent) => 0.35,
        (true, _) => 0.05,
        (false, UserGroup::Visitor) => 0.30,
        (false, _) => 0.92,
    };
    if rng.gen::<f64>() > attendance {
        return DayPlan::absent();
    }

    let office = occupant.office.unwrap_or(dbh.lobby);
    let kitchen = dbh.kitchens[office.index() % dbh.kitchens.len().max(1)];
    let lab = dbh.labs[occupant.user.0 as usize % dbh.labs.len().max(1)];

    let mut segments: Vec<Segment> = Vec::new();
    let mut push = |space: SpaceId, start: f64, end: f64| {
        if end > start {
            segments.push(Segment {
                space,
                start: ts(day, start),
                end: ts(day, end),
            });
        }
    };

    match occupant.group {
        UserGroup::Staff => {
            let arrive = approx_normal(rng, 7.0, 0.4).max(5.5);
            let lunch = approx_normal(rng, 12.0, 0.25);
            let leave = approx_normal(rng, 16.75, 0.4).min(17.4).max(lunch + 1.0);
            push(office, arrive, lunch);
            push(kitchen, lunch, lunch + 0.6);
            push(office, lunch + 0.6, leave);
        }
        UserGroup::Faculty => {
            let arrive = approx_normal(rng, 9.0, 0.8).max(6.5);
            let leave = approx_normal(rng, 18.0, 1.0).max(arrive + 3.0);
            // Teaching slots for this faculty member today, sorted.
            let mut slots: Vec<&TeachingSlot> = teaching
                .iter()
                .filter(|s| s.teacher == occupant.user && s.weekday == weekday)
                .collect();
            slots.sort_by_key(|s| s.start_hour);
            let mut cursor = arrive;
            for slot in slots {
                let class_start = slot.start_hour as f64;
                let class_end = class_start + 2.0;
                if class_start > cursor {
                    push(office, cursor, class_start);
                }
                push(slot.classroom, class_start.max(cursor), class_end);
                cursor = class_end.max(cursor);
            }
            push(office, cursor, leave);
        }
        UserGroup::GradStudent => {
            let arrive = approx_normal(rng, 10.5, 1.2).max(7.0);
            let leave = approx_normal(rng, 21.0, 1.3).max(arrive + 4.0);
            // Alternate lab and office in ~2.5 h blocks with a lunch break.
            let mut cursor = arrive;
            let mut in_lab = rng.gen::<bool>();
            let mut had_lunch = false;
            while cursor < leave {
                if !had_lunch && cursor >= 12.0 {
                    push(kitchen, cursor, cursor + 0.5);
                    cursor += 0.5;
                    had_lunch = true;
                    continue;
                }
                let block = (approx_normal(rng, 2.5, 0.6)).clamp(1.0, 4.0);
                let end = (cursor + block).min(leave);
                push(if in_lab { lab } else { office }, cursor, end);
                in_lab = !in_lab;
                cursor = end;
            }
        }
        UserGroup::Undergrad => {
            let arrive = approx_normal(rng, 10.0, 1.8).clamp(8.0, 14.0);
            let classes = 1 + (rng.gen::<f64>() * 3.0) as usize;
            let mut cursor = arrive;
            for i in 0..classes {
                let room = dbh.classrooms
                    [(occupant.user.0 as usize + i * 7) % dbh.classrooms.len().max(1)];
                let end = cursor + 1.5;
                push(room, cursor, end);
                cursor = end;
                if i + 1 < classes {
                    // Short corridor/kitchen break between classes.
                    let break_space = if rng.gen::<f64>() < 0.4 {
                        kitchen
                    } else {
                        dbh.lobby
                    };
                    push(break_space, cursor, cursor + 0.25);
                    cursor += 0.25;
                }
            }
        }
        UserGroup::Visitor => {
            let arrive = approx_normal(rng, 11.0, 2.0).clamp(8.0, 16.0);
            let meeting =
                dbh.meeting_rooms[occupant.user.0 as usize % dbh.meeting_rooms.len().max(1)];
            push(dbh.lobby, arrive, arrive + 0.25);
            push(
                meeting,
                arrive + 0.25,
                arrive + 1.0 + rng.gen::<f64>() * 2.0,
            );
        }
    }

    DayPlan::from_segments(segments)
}

/// Assigns each faculty occupant up to two weekly teaching slots in
/// distinct classrooms, producing the building's "public schedule".
pub fn assign_teaching<R: Rng>(
    rng: &mut R,
    occupants: &[Occupant],
    dbh: &Dbh,
) -> Vec<TeachingSlot> {
    let days = [
        Weekday::Mon,
        Weekday::Tue,
        Weekday::Wed,
        Weekday::Thu,
        Weekday::Fri,
    ];
    let mut slots = Vec::new();
    for o in occupants.iter().filter(|o| o.group == UserGroup::Faculty) {
        let n = 1 + (rng.gen::<f64>() * 2.0) as usize;
        for i in 0..n {
            slots.push(TeachingSlot {
                teacher: o.user,
                classroom: dbh.classrooms
                    [(o.user.0 as usize * 3 + i) % dbh.classrooms.len().max(1)],
                weekday: days[(o.user.0 as usize + i * 2) % days.len()],
                start_hour: 10 + 2 * ((o.user.0 as usize + i) % 3) as u32, // 10, 12, 14
            });
        }
    }
    slots
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tippers_policy::UserId;
    use tippers_spatial::fixtures::dbh;

    fn sample_plans(group: UserGroup, n: usize) -> Vec<DayPlan> {
        let d = dbh();
        let mut rng = StdRng::seed_from_u64(42);
        (0..n)
            .map(|i| {
                let mut o = Occupant::new(UserId(i as u64), format!("o{i}"), group);
                o.office = Some(d.offices[i % d.offices.len()]);
                day_plan(&mut rng, &o, &d, 1, &[]) // Tuesday
            })
            .collect()
    }

    fn mean_hour(ts: &[Timestamp]) -> f64 {
        ts.iter()
            .map(|t| t.time_of_day().0 as f64 / 3600.0)
            .sum::<f64>()
            / ts.len() as f64
    }

    #[test]
    fn staff_arrive_early_and_leave_before_five() {
        let plans = sample_plans(UserGroup::Staff, 100);
        let arrivals: Vec<_> = plans
            .iter()
            .filter_map(super::super::occupant::DayPlan::arrival)
            .collect();
        let departures: Vec<_> = plans
            .iter()
            .filter_map(super::super::occupant::DayPlan::departure)
            .collect();
        assert!(!arrivals.is_empty());
        let a = mean_hour(&arrivals);
        assert!((6.0..8.0).contains(&a), "staff mean arrival {a}");
        assert!(
            departures.iter().all(|d| d.time_of_day().hour() < 18),
            "staff leave before 5pm-ish"
        );
    }

    #[test]
    fn grads_leave_late() {
        let plans = sample_plans(UserGroup::GradStudent, 100);
        let departures: Vec<_> = plans
            .iter()
            .filter_map(super::super::occupant::DayPlan::departure)
            .collect();
        let d = mean_hour(&departures);
        assert!(d > 19.0, "grad mean departure {d}");
    }

    #[test]
    fn undergrads_sit_in_classrooms() {
        let d = dbh();
        let plans = sample_plans(UserGroup::Undergrad, 100);
        let mut classroom = 0i64;
        let mut total = 0i64;
        for p in &plans {
            for s in p.segments() {
                total += s.end - s.start;
                if d.classrooms.contains(&s.space) {
                    classroom += s.end - s.start;
                }
            }
        }
        assert!(total > 0);
        assert!(
            classroom as f64 / total as f64 > 0.5,
            "undergrads should spend most time in classrooms"
        );
    }

    #[test]
    fn weekends_are_sparse() {
        let d = dbh();
        let mut rng = StdRng::seed_from_u64(7);
        let mut present = 0;
        for i in 0..200 {
            let mut o = Occupant::new(UserId(i), format!("o{i}"), UserGroup::Staff);
            o.office = Some(d.offices[i as usize % d.offices.len()]);
            if day_plan(&mut rng, &o, &d, 5, &[]).arrival().is_some() {
                present += 1;
            }
        }
        assert!(present < 30, "only a few staff on Saturday, got {present}");
    }

    #[test]
    fn faculty_honor_teaching_slots() {
        let d = dbh();
        let mut rng = StdRng::seed_from_u64(3);
        let mut o = Occupant::new(UserId(0), "prof", UserGroup::Faculty);
        o.office = Some(d.offices[0]);
        let slot = TeachingSlot {
            teacher: o.user,
            classroom: d.classrooms[0],
            weekday: Weekday::Tue,
            start_hour: 12,
        };
        // Sample until present (attendance is stochastic).
        for _ in 0..20 {
            let plan = day_plan(&mut rng, &o, &d, 1, &[slot]);
            if plan.arrival().is_some() {
                let during_class = plan.position_at(Timestamp::at(1, 13, 0));
                assert_eq!(during_class, Some(d.classrooms[0]));
                return;
            }
        }
        panic!("faculty member never showed up in 20 sampled days");
    }

    #[test]
    fn teaching_assignment_covers_all_faculty() {
        let dbh = dbh();
        let mut rng = StdRng::seed_from_u64(11);
        let occupants: Vec<Occupant> = (0..10)
            .map(|i| Occupant::new(UserId(i), format!("f{i}"), UserGroup::Faculty))
            .collect();
        let slots = assign_teaching(&mut rng, &occupants, &dbh);
        for o in &occupants {
            assert!(slots.iter().any(|s| s.teacher == o.user));
        }
    }
}
