use serde::{Deserialize, Serialize};
use tippers_ontology::{ConceptId, Ontology};
use tippers_policy::{Timestamp, UserId};
use tippers_spatial::SpaceId;

use crate::device::{DeviceId, MacAddress};

/// What a sensor observed — the payload of an [`Observation`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ObservationPayload {
    /// A device associated with a WiFi access point (Figure 2's
    /// observation: MAC of device and AP, plus timestamp).
    WifiAssociation {
        /// The client device's MAC.
        mac: MacAddress,
        /// The access point.
        ap: DeviceId,
    },
    /// A phone's Bluetooth saw a beacon (Figure 3's second observation).
    BeaconSighting {
        /// The sighted phone's MAC.
        mac: MacAddress,
        /// The beacon.
        beacon: DeviceId,
    },
    /// A camera frame summary.
    CameraFrame {
        /// How many people are visible.
        occupant_count: u32,
        /// Occupants the analytics pipeline identified.
        identified: Vec<UserId>,
    },
    /// A power-outlet meter reading.
    PowerReading {
        /// Instantaneous draw in watts.
        watts: f64,
    },
    /// An ambient temperature reading.
    Temperature {
        /// Degrees Celsius.
        celsius: f64,
    },
    /// A motion sensor trigger.
    Motion {
        /// Whether motion was detected this sample.
        detected: bool,
    },
    /// A badge or fingerprint verification (Policy 3).
    BadgeSwipe {
        /// The verified user.
        user: UserId,
        /// Whether access was granted.
        granted: bool,
    },
}

impl ObservationPayload {
    /// The data category this payload falls under in the standard ontology.
    pub fn category(&self, ontology: &Ontology) -> ConceptId {
        let c = ontology.concepts();
        match self {
            ObservationPayload::WifiAssociation { .. } => c.wifi_association,
            ObservationPayload::BeaconSighting { .. } => c.bluetooth_sighting,
            ObservationPayload::CameraFrame { .. } => c.image,
            ObservationPayload::PowerReading { .. } => c.power_consumption,
            ObservationPayload::Temperature { .. } => c.ambient_temperature,
            ObservationPayload::Motion { .. } => c.occupancy,
            ObservationPayload::BadgeSwipe { .. } => c.person_identity,
        }
    }

    /// The MAC this payload is about, if any — capture-time suppression
    /// keys off this.
    pub fn mac(&self) -> Option<MacAddress> {
        match self {
            ObservationPayload::WifiAssociation { mac, .. }
            | ObservationPayload::BeaconSighting { mac, .. } => Some(*mac),
            _ => None,
        }
    }
}

/// One timestamped, located sensor observation (§IV.A.5: "Each observation
/// has a timestamp and a location").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// The producing device.
    pub device: DeviceId,
    /// When it was captured.
    pub timestamp: Timestamp,
    /// Where the producing device is installed.
    pub space: SpaceId,
    /// What was observed.
    pub payload: ObservationPayload,
    /// The occupant the observation is about, when the simulator knows
    /// (ground truth for experiments; a real BMS would resolve MAC → user
    /// through registration data).
    pub subject: Option<UserId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_match_standard_ontology() {
        let ont = Ontology::standard();
        let c = ont.concepts();
        let mac = MacAddress::for_user(1);
        let wifi = ObservationPayload::WifiAssociation {
            mac,
            ap: DeviceId(0),
        };
        assert_eq!(wifi.category(&ont), c.wifi_association);
        assert_eq!(wifi.mac(), Some(mac));
        let temp = ObservationPayload::Temperature { celsius: 21.0 };
        assert_eq!(temp.category(&ont), c.ambient_temperature);
        assert_eq!(temp.mac(), None);
        let badge = ObservationPayload::BadgeSwipe {
            user: UserId(1),
            granted: true,
        };
        assert_eq!(badge.category(&ont), c.person_identity);
    }
}
