//! The §II.A inference attack, made executable.
//!
//! "When a user connects to a WiFi AP in DBH, this event is logged …
//! Using background knowledge (e.g., the location of the AP) it is possible
//! to infer the real-time location of a user. Also, using simple heuristics
//! … it is possible to infer whether a given user is a member of the staff
//! or a student. Furthermore, by integrating this with publicly available
//! information (e.g., schedules of professors …), it would be possible to
//! identify individuals."
//!
//! [`Attacker`] consumes exactly what a WiFi log contains — (timestamp,
//! client MAC, AP id) — plus the public AP locations and teaching schedule,
//! and attempts all three inferences. Experiment E9 scores it against
//! ground truth under different enforcement settings.

use std::collections::HashMap;

use tippers_policy::{Timestamp, UserGroup, UserId, Weekday};
use tippers_spatial::{SpaceId, SpatialModel};

use crate::device::{DeviceId, MacAddress};
use crate::events::{Observation, ObservationPayload};
use crate::mobility::TeachingSlot;

/// One WiFi log row — all the attacker gets per event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WifiLogRow {
    /// Event time.
    pub time: Timestamp,
    /// Client MAC.
    pub mac: MacAddress,
    /// Access point.
    pub ap: DeviceId,
}

/// Extracts the WiFi log from a stream of observations (what an attacker
/// with BMS log access would hold).
pub fn wifi_log(observations: &[Observation]) -> Vec<WifiLogRow> {
    observations
        .iter()
        .filter_map(|o| match o.payload {
            ObservationPayload::WifiAssociation { mac, ap } => Some(WifiLogRow {
                time: o.timestamp,
                mac,
                ap,
            }),
            _ => None,
        })
        .collect()
}

/// The attacker: WiFi log + background knowledge.
#[derive(Debug)]
pub struct Attacker<'a> {
    log: Vec<WifiLogRow>,
    /// Background knowledge: where each AP is installed.
    ap_locations: HashMap<DeviceId, SpaceId>,
    model: &'a SpatialModel,
    by_mac: HashMap<MacAddress, Vec<usize>>,
}

/// The attacker's guess of an occupant's role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoleGuess {
    /// The MAC being classified.
    pub mac: MacAddress,
    /// The guessed group.
    pub group: UserGroup,
}

impl<'a> Attacker<'a> {
    /// Builds an attacker from a log and AP location knowledge.
    pub fn new(
        log: Vec<WifiLogRow>,
        ap_locations: HashMap<DeviceId, SpaceId>,
        model: &'a SpatialModel,
    ) -> Self {
        let mut by_mac: HashMap<MacAddress, Vec<usize>> = HashMap::new();
        for (i, row) in log.iter().enumerate() {
            by_mac.entry(row.mac).or_default().push(i);
        }
        Attacker {
            log,
            ap_locations,
            model,
            by_mac,
        }
    }

    /// All MACs seen in the log.
    pub fn macs(&self) -> Vec<MacAddress> {
        let mut v: Vec<MacAddress> = self.by_mac.keys().copied().collect();
        v.sort();
        v
    }

    /// Real-time location inference: the space of the AP the MAC most
    /// recently associated with, if that was within `staleness` seconds.
    pub fn locate(&self, mac: MacAddress, at: Timestamp, staleness: i64) -> Option<SpaceId> {
        let rows = self.by_mac.get(&mac)?;
        let row = rows
            .iter()
            .map(|&i| &self.log[i])
            .filter(|r| r.time <= at && at - r.time <= staleness)
            .max_by_key(|r| r.time)?;
        self.ap_locations.get(&row.ap).copied()
    }

    /// The §II.A role heuristics, verbatim:
    ///
    /// * first seen before 8:00 **and** gone before 17:30 → staff;
    /// * majority of weekday time on classroom APs → undergrad;
    /// * median departure at or after 19:00 → grad student;
    /// * otherwise → faculty.
    pub fn infer_role(&self, mac: MacAddress) -> Option<RoleGuess> {
        let rows = self.by_mac.get(&mac)?;
        let mut per_day: HashMap<i64, (Timestamp, Timestamp)> = HashMap::new();
        let mut classroom_hits = 0usize;
        let mut total_hits = 0usize;
        for &i in rows {
            let r = &self.log[i];
            if r.time.is_weekend() {
                continue;
            }
            let e = per_day.entry(r.time.day()).or_insert((r.time, r.time));
            e.0 = e.0.min(r.time);
            e.1 = e.1.max(r.time);
            total_hits += 1;
            if let Some(&space) = self.ap_locations.get(&r.ap) {
                if matches!(
                    self.model.space(space).kind(),
                    tippers_spatial::SpaceKind::Room(tippers_spatial::RoomUse::Classroom)
                ) {
                    classroom_hits += 1;
                }
            }
        }
        if per_day.is_empty() {
            return None;
        }
        let mut firsts: Vec<u32> = per_day.values().map(|(f, _)| f.time_of_day().0).collect();
        let mut lasts: Vec<u32> = per_day.values().map(|(_, l)| l.time_of_day().0).collect();
        firsts.sort_unstable();
        lasts.sort_unstable();
        let median_first = firsts[firsts.len() / 2];
        let median_last = lasts[lasts.len() / 2];
        let eight = 8 * 3600;
        let five_thirty = 17 * 3600 + 1800;
        let seven_pm = 19 * 3600;
        let group = if total_hits > 0 && classroom_hits * 2 > total_hits {
            UserGroup::Undergrad
        } else if median_first < eight && median_last < five_thirty {
            UserGroup::Staff
        } else if median_last >= seven_pm {
            UserGroup::GradStudent
        } else {
            UserGroup::Faculty
        };
        Some(RoleGuess { mac, group })
    }

    /// Identity linkage with public schedules: a MAC repeatedly present on
    /// a classroom's AP during a scheduled class is matched to the
    /// scheduled teacher. Returns `mac → teacher` for matches supported by
    /// at least `min_evidence` distinct class meetings.
    pub fn link_identities(
        &self,
        schedule: &[TeachingSlot],
        min_evidence: usize,
    ) -> HashMap<MacAddress, UserId> {
        // (classroom, weekday, hour-bucket) -> teacher
        let mut slot_index: HashMap<(SpaceId, Weekday, u32), UserId> = HashMap::new();
        for s in schedule {
            slot_index.insert((s.classroom, s.weekday, s.start_hour), s.teacher);
            slot_index.insert((s.classroom, s.weekday, s.start_hour + 1), s.teacher);
        }
        // mac -> teacher -> distinct meeting days with presence
        type Evidence = HashMap<MacAddress, HashMap<UserId, std::collections::HashSet<i64>>>;
        let mut evidence: Evidence = HashMap::new();
        for row in &self.log {
            let Some(&space) = self.ap_locations.get(&row.ap) else {
                continue;
            };
            let key = (space, row.time.weekday(), row.time.time_of_day().hour());
            if let Some(&teacher) = slot_index.get(&key) {
                evidence
                    .entry(row.mac)
                    .or_default()
                    .entry(teacher)
                    .or_default()
                    .insert(row.time.day());
            }
        }
        let mut out = HashMap::new();
        for (mac, teachers) in evidence {
            if let Some((teacher, days)) = teachers.into_iter().max_by_key(|(_, d)| d.len()) {
                if days.len() >= min_evidence {
                    out.insert(mac, teacher);
                }
            }
        }
        out
    }
}

/// Scores of the three inferences against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AttackScore {
    /// Fraction of sampled (user, time) points located to the correct room.
    pub location_room_accuracy: f64,
    /// Fraction located to the correct floor.
    pub location_floor_accuracy: f64,
    /// Fraction of MACs whose role was guessed correctly.
    pub role_accuracy: f64,
    /// Fraction of *linked* MACs attributed to the right person (precision).
    pub identity_precision: f64,
    /// Fraction of teaching faculty whose MAC was linked at all (recall).
    pub identity_recall: f64,
}

/// Runs all three inferences and scores them against ground truth.
///
/// `truth` maps each MAC to its user's (group, presence samples).
pub fn score_attack(
    attacker: &Attacker<'_>,
    truth_groups: &HashMap<MacAddress, UserGroup>,
    truth_positions: &[(MacAddress, Timestamp, SpaceId)],
    schedule: &[TeachingSlot],
    truth_identity: &HashMap<MacAddress, UserId>,
    model: &SpatialModel,
) -> AttackScore {
    let mut score = AttackScore::default();

    // Location.
    let mut room_hits = 0usize;
    let mut floor_hits = 0usize;
    let mut samples = 0usize;
    for &(mac, t, actual) in truth_positions {
        samples += 1;
        if let Some(guess) = attacker.locate(mac, t, 1800) {
            if guess == actual {
                room_hits += 1;
            }
            if model.floor_of(guess).is_some() && model.floor_of(guess) == model.floor_of(actual) {
                floor_hits += 1;
            }
        }
    }
    if samples > 0 {
        score.location_room_accuracy = room_hits as f64 / samples as f64;
        score.location_floor_accuracy = floor_hits as f64 / samples as f64;
    }

    // Role.
    let mut role_hits = 0usize;
    let mut role_total = 0usize;
    for (&mac, &group) in truth_groups {
        if let Some(guess) = attacker.infer_role(mac) {
            role_total += 1;
            if guess.group == group {
                role_hits += 1;
            }
        }
    }
    if role_total > 0 {
        score.role_accuracy = role_hits as f64 / role_total as f64;
    }

    // Identity.
    let links = attacker.link_identities(schedule, 2);
    let mut correct = 0usize;
    for (mac, user) in &links {
        if truth_identity.get(mac) == Some(user) {
            correct += 1;
        }
    }
    if !links.is_empty() {
        score.identity_precision = correct as f64 / links.len() as f64;
    }
    let teachers: std::collections::HashSet<UserId> = schedule.iter().map(|s| s.teacher).collect();
    if !teachers.is_empty() {
        let linked_teachers: std::collections::HashSet<UserId> = links.values().copied().collect();
        score.identity_recall =
            teachers.intersection(&linked_teachers).count() as f64 / teachers.len() as f64;
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::DeploymentConfig;
    use crate::simulator::{BuildingSimulator, Population, SimulatorConfig};
    use tippers_ontology::Ontology;

    fn run_sim(days: i64) -> (BuildingSimulator, crate::simulator::SimulationTrace) {
        let ont = Ontology::standard();
        let config = SimulatorConfig {
            seed: 99,
            population: Population {
                staff: 8,
                faculty: 8,
                grads: 12,
                undergrads: 12,
                visitors: 0,
            },
            tick_secs: 900,
            deployment: DeploymentConfig {
                cameras: 4,
                wifi_aps: 240, // dense coverage: one AP per room-ish
                beacons: 20,
                power_meters: 10,
                motion_everywhere: false,
                hvac_per_floor: false,
                badge_readers: false,
            },
            identify_probability: 0.0,
        };
        let mut sim = BuildingSimulator::new(config, &ont);
        let trace = sim.run_days(days);
        (sim, trace)
    }

    #[allow(clippy::type_complexity)] // test helper bundling four lookups
    fn attacker_inputs(
        sim: &BuildingSimulator,
        trace: &crate::simulator::SimulationTrace,
    ) -> (
        Vec<WifiLogRow>,
        HashMap<DeviceId, SpaceId>,
        HashMap<MacAddress, UserGroup>,
        HashMap<MacAddress, UserId>,
    ) {
        let log = wifi_log(&trace.observations);
        let ont = Ontology::standard();
        let c = ont.concepts();
        let ap_locations: HashMap<DeviceId, SpaceId> = sim
            .devices()
            .of_class(c.wifi_ap)
            .into_iter()
            .map(|id| (id, sim.devices().get(id).unwrap().space))
            .collect();
        let groups = sim.occupants().iter().map(|o| (o.mac, o.group)).collect();
        let identities = sim.occupants().iter().map(|o| (o.mac, o.user)).collect();
        (log, ap_locations, groups, identities)
    }

    #[test]
    fn location_inference_beats_chance() {
        let (mut sim, trace) = run_sim(2);
        let (log, aps, _, _) = attacker_inputs(&sim, &trace);
        let model = sim.dbh().model.clone();
        let attacker = Attacker::new(log, aps, &model);
        let mac_of: HashMap<UserId, MacAddress> =
            sim.occupants().iter().map(|o| (o.user, o.mac)).collect();
        let mut positions = Vec::new();
        for g in trace.ground_truth.iter().step_by(37) {
            positions.push((mac_of[&g.user], g.time, g.space));
        }
        let mut floor_hits = 0;
        let n = positions.len();
        for &(mac, t, actual) in &positions {
            if let Some(guess) = attacker.locate(mac, t, 1800) {
                if model.floor_of(guess) == model.floor_of(actual) {
                    floor_hits += 1;
                }
            }
        }
        assert!(n > 20);
        assert!(
            floor_hits as f64 / n as f64 > 0.6,
            "floor accuracy {} too low",
            floor_hits as f64 / n as f64
        );
        let _ = sim.position_of(UserId(0), Timestamp::at(0, 12, 0));
    }

    #[test]
    fn role_heuristics_recover_majority_of_groups() {
        let (sim, trace) = run_sim(5);
        let (log, aps, groups, _) = attacker_inputs(&sim, &trace);
        let model = &sim.dbh().model;
        let attacker = Attacker::new(log, aps, model);
        let mut hits = 0usize;
        let mut total = 0usize;
        for (&mac, &group) in &groups {
            if let Some(guess) = attacker.infer_role(mac) {
                total += 1;
                if guess.group == group {
                    hits += 1;
                }
            }
        }
        assert!(
            total >= 30,
            "most occupants should be classified, got {total}"
        );
        let acc = hits as f64 / total as f64;
        assert!(
            acc > 0.5,
            "role accuracy {acc} should beat the 0.25 chance level"
        );
    }

    #[test]
    fn identity_linkage_finds_teachers() {
        let (sim, trace) = run_sim(7);
        let (log, aps, _, identities) = attacker_inputs(&sim, &trace);
        let model = &sim.dbh().model;
        let attacker = Attacker::new(log, aps, model);
        let links = attacker.link_identities(sim.teaching_schedule(), 2);
        assert!(!links.is_empty(), "a week of logs should link someone");
        let correct = links
            .iter()
            .filter(|(mac, user)| identities.get(*mac) == Some(*user))
            .count();
        assert!(
            correct as f64 / links.len() as f64 > 0.5,
            "linkage precision {}/{} too low",
            correct,
            links.len()
        );
    }

    #[test]
    fn empty_log_yields_nothing() {
        let model = SpatialModel::new("c");
        let attacker = Attacker::new(Vec::new(), HashMap::new(), &model);
        assert!(attacker.macs().is_empty());
        assert_eq!(
            attacker.locate(MacAddress::for_user(1), Timestamp::at(0, 12, 0), 600),
            None
        );
        assert_eq!(attacker.infer_role(MacAddress::for_user(1)), None);
        assert!(attacker.link_identities(&[], 1).is_empty());
    }
}
