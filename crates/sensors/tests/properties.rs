//! Property-based tests for the building simulator.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tippers_ontology::Ontology;
use tippers_policy::{Timestamp, UserGroup, UserId};
use tippers_sensors::mobility::day_plan;
use tippers_sensors::{BuildingSimulator, DeploymentConfig, Occupant, Population, SimulatorConfig};
use tippers_spatial::fixtures::dbh;

fn tiny_config(seed: u64, tick: i64) -> SimulatorConfig {
    SimulatorConfig {
        seed,
        population: Population {
            staff: 3,
            faculty: 3,
            grads: 4,
            undergrads: 4,
            visitors: 1,
        },
        tick_secs: tick,
        deployment: DeploymentConfig {
            cameras: 3,
            wifi_aps: 8,
            beacons: 10,
            power_meters: 6,
            motion_everywhere: false,
            hvac_per_floor: true,
            badge_readers: true,
        },
        identify_probability: 0.4,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Day plans are always well formed: ordered, disjoint segments inside
    /// one day, for every group, day and seed.
    #[test]
    fn day_plans_are_well_formed(seed in any::<u64>(), day in 0i64..14, group in 0usize..5) {
        let building = dbh();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut occupant = Occupant::new(UserId(7), "p", UserGroup::ALL[group]);
        occupant.office = Some(building.offices[(seed as usize) % building.offices.len()]);
        let plan = day_plan(&mut rng, &occupant, &building, day, &[]);
        let day_start = Timestamp(day * 86_400);
        let day_end = Timestamp((day + 1) * 86_400);
        for w in plan.segments().windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
        for s in plan.segments() {
            prop_assert!(s.start < s.end);
            prop_assert!(s.start >= day_start && s.end <= day_end,
                "segment {:?} escapes day {day}", s);
        }
    }

    /// The simulator is a pure function of its config: identical seeds
    /// yield identical traces; different seeds (almost surely) differ.
    #[test]
    fn traces_deterministic_in_seed(seed in any::<u64>()) {
        let ont = Ontology::standard();
        let mut a = BuildingSimulator::new(tiny_config(seed, 1200), &ont);
        let mut b = BuildingSimulator::new(tiny_config(seed, 1200), &ont);
        a.set_clock(Timestamp::at(0, 9, 0));
        b.set_clock(Timestamp::at(0, 9, 0));
        let ta = a.run_until(Timestamp::at(0, 12, 0));
        let tb = b.run_until(Timestamp::at(0, 12, 0));
        prop_assert_eq!(ta.observations, tb.observations);
    }

    /// Ground truth and observations agree on timestamps: every
    /// observation's time lies on the tick grid, and every subject-bearing
    /// observation's subject was present at that tick.
    #[test]
    fn observations_consistent_with_ground_truth(seed in any::<u64>()) {
        let ont = Ontology::standard();
        let tick = 1800;
        let mut sim = BuildingSimulator::new(tiny_config(seed, tick), &ont);
        sim.set_clock(Timestamp::at(0, 9, 0));
        let trace = sim.run_until(Timestamp::at(0, 13, 0));
        for obs in &trace.observations {
            prop_assert_eq!((obs.timestamp.seconds() - Timestamp::at(0, 9, 0).seconds()) % tick, 0);
            if let Some(user) = obs.subject {
                if obs.payload.mac().is_some() {
                    // Network observations require actual presence.
                    prop_assert!(
                        trace.ground_truth.iter().any(|g| g.user == user && g.time == obs.timestamp),
                        "observation about absent occupant {user}"
                    );
                }
            }
        }
    }

    /// Capture suppression is airtight: whatever subset of MACs is
    /// suppressed, none appears in any emitted payload.
    #[test]
    fn suppression_is_airtight(seed in any::<u64>(), mask in any::<u16>()) {
        let ont = Ontology::standard();
        let c = ont.concepts();
        let mut sim = BuildingSimulator::new(tiny_config(seed, 1800), &ont);
        let suppressed: Vec<_> = sim
            .occupants()
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << (i % 16)) != 0)
            .map(|(_, o)| o.mac)
            .collect();
        let targets: Vec<_> = sim
            .devices()
            .of_class(c.wifi_ap)
            .into_iter()
            .chain(sim.devices().of_class(c.ble_beacon))
            .collect();
        for id in targets {
            sim.devices_mut().get_mut(id).unwrap().settings.suppressed_macs =
                suppressed.clone();
        }
        sim.set_clock(Timestamp::at(0, 9, 0));
        let trace = sim.run_until(Timestamp::at(0, 12, 0));
        for obs in &trace.observations {
            if let Some(mac) = obs.payload.mac() {
                prop_assert!(!suppressed.contains(&mac), "suppressed MAC {mac} leaked");
            }
        }
    }
}
