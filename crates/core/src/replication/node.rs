//! One replication peer: a full BMS over its own in-memory log, plus the
//! frame metadata replication needs (contiguous durable prefix,
//! out-of-order buffer, liveness and fencing flags).

use std::collections::BTreeMap;

use tippers_ontology::Ontology;
use tippers_sensors::Occupant;
use tippers_spatial::SpatialModel;

use super::link::{Ack, Frame};
use crate::tippers::{Tippers, TippersConfig};
use crate::wal::{MemLog, Wal, WalConfig, WalError, WalRecord};

pub(super) struct Node {
    pub(super) id: usize,
    /// The node's durable log; `bms` writes through it, crash/restart
    /// preserve it.
    pub(super) log: MemLog,
    pub(super) bms: Tippers,
    /// The contiguous durable frame prefix (frame `i` sits at index `i`).
    pub(super) frames: Vec<Frame>,
    /// Out-of-order frames waiting for the gap before them to fill.
    pub(super) pending: BTreeMap<u64, Frame>,
    /// Virtual time of the last primary contact (frames or heartbeat);
    /// staleness-bounded reads compare against this.
    pub(super) last_contact_ms: i64,
    pub(super) down: bool,
    /// Highest epoch this node has *heard of* from any peer contact —
    /// Raft's `currentTerm`. A node fences senders older than this even
    /// before it durably applies the corresponding `NewEpoch` frame
    /// (otherwise a dropped fence frame would let a deposed primary
    /// commit a split-brain write through an uninformed replica).
    pub(super) seen_epoch: u64,
    /// Whether this node currently believes it is the leader (set at
    /// promotion, cleared the moment any peer contact carries a newer
    /// epoch — a deposed primary that has caught up as a replica knows
    /// it must not originate writes at the epoch it merely follows).
    pub(super) is_leader: bool,
    /// A newer epoch fenced this node's shipping: it must stop
    /// acknowledging its own writes.
    pub(super) fenced: bool,
    /// This node holds a frame that conflicts with one the current
    /// primary shipped — a divergent branch awaiting state transfer.
    pub(super) diverged: bool,
    /// Writes this node rejected because it was fenced or divergent.
    pub(super) split_brain_writes: u64,
}

impl Node {
    /// Boots a fresh node: empty log, registered occupants, record tap
    /// and read-audit divert enabled (every node's decision audit is a
    /// pure function of its record sequence).
    pub(super) fn open(
        id: usize,
        ontology: &Ontology,
        model: &SpatialModel,
        config: &TippersConfig,
        occupants: &[Occupant],
    ) -> Result<Node, WalError> {
        let log = MemLog::new();
        let bms = Node::reopen(&log, ontology, model, config, occupants)?;
        Ok(Node {
            id,
            log,
            bms,
            frames: Vec::new(),
            pending: BTreeMap::new(),
            last_contact_ms: 0,
            seen_epoch: 0,
            is_leader: false,
            down: false,
            fenced: false,
            diverged: false,
            split_brain_writes: 0,
        })
    }

    fn reopen(
        log: &MemLog,
        ontology: &Ontology,
        model: &SpatialModel,
        config: &TippersConfig,
        occupants: &[Occupant],
    ) -> Result<Tippers, WalError> {
        let (mut bms, _report) = Tippers::open_with(
            Box::new(log.clone()),
            ontology.clone(),
            model.clone(),
            config.clone(),
        )?;
        bms.register_occupants(occupants);
        bms.enable_record_tap();
        bms.divert_read_audit();
        Ok(bms)
    }

    pub(super) fn epoch(&self) -> u64 {
        self.bms.replication_epoch()
    }

    /// The epoch this node fences against: the greater of what it has
    /// durably applied and what it has heard of.
    pub(super) fn fencing_epoch(&self) -> u64 {
        self.epoch().max(self.seen_epoch)
    }

    /// Length of the contiguous durable frame prefix.
    pub(super) fn durable_index(&self) -> u64 {
        self.frames.len() as u64
    }

    /// Applies one frame: records it through the BMS (durable + applied)
    /// and appends it to the frame prefix.
    fn apply(&mut self, frame: Frame) -> Result<(), WalError> {
        self.bms.record_and_log(frame.record.clone())?;
        self.bms.drain_record_tap();
        self.frames.push(frame);
        Ok(())
    }

    /// Raft's `AppendEntries` consistency check: a frame may extend this
    /// log only if the log's tail epoch equals the frame's `prev_epoch`.
    /// Because a `(epoch, index)` pair identifies a unique frame with a
    /// unique prefix, a matching tail proves this node's entire log is a
    /// prefix of the frame creator's history — without it, frame loss
    /// could delete the conflicting overlap and let a future-indexed
    /// trunk frame splice silently onto a stale branch.
    fn chains(&self, frame: &Frame) -> bool {
        match self.frames.last() {
            None => frame.prev_epoch == 0,
            Some(last) => last.epoch == frame.prev_epoch,
        }
    }

    /// Receives shipped frames from a peer claiming `sender_epoch`.
    ///
    /// A stale sender (older epoch than ours) is fenced: its frames are
    /// ignored and the ack tells it so. Otherwise frames are applied in
    /// index order, buffering out-of-order arrivals and detecting
    /// divergence (a conflicting frame at an index we already hold).
    pub(super) fn accept(
        &mut self,
        sender_epoch: u64,
        frames: Vec<Frame>,
        now_ms: i64,
    ) -> Result<Ack, WalError> {
        let mut fenced = false;
        let mut contacted = false;
        let mut matched = false;
        if sender_epoch < self.fencing_epoch() {
            fenced = true;
        } else {
            if sender_epoch > self.fencing_epoch() {
                self.is_leader = false;
            }
            self.seen_epoch = self.seen_epoch.max(sender_epoch);
            for frame in frames {
                contacted = true;
                let next = self.durable_index();
                if frame.index < next {
                    // A frame at an index we already hold. Identical: it
                    // re-proves our prefix up to that index is the
                    // sender's; at our tail it vouches our whole log.
                    // Conflicting: this node sits on a divergent branch
                    // (it keeps its own history — losing-branch
                    // truncation is the anti-entropy reconciler's job,
                    // not the hot path's).
                    if self.frames[frame.index as usize] != frame {
                        self.diverged = true;
                    } else if frame.index + 1 == next {
                        matched = true;
                    }
                    continue;
                }
                if frame.index > next {
                    self.pending.insert(frame.index, frame);
                    continue;
                }
                if !self.chains(&frame) {
                    // A stale cross-branch packet (reordered or from a
                    // superseded lineage): refuse the splice; retransmit
                    // of the true overlap will catch this node up or
                    // surface the divergence.
                    continue;
                }
                self.apply(frame)?;
                matched = true;
                while let Some(ready) = self.pending.remove(&self.durable_index()) {
                    if !self.chains(&ready) {
                        break;
                    }
                    self.apply(ready)?;
                }
            }
        }
        if contacted {
            self.last_contact_ms = now_ms;
        }
        Ok(Ack {
            node: self.id,
            epoch: self.epoch(),
            durable_index: self.durable_index(),
            matched,
            fenced,
            diverged: self.diverged,
            visible_at_ms: now_ms,
        })
    }

    /// Records a heartbeat contact from a peer claiming `sender_epoch`.
    pub(super) fn touch(&mut self, sender_epoch: u64, now_ms: i64) -> Ack {
        let fenced = sender_epoch < self.fencing_epoch();
        if !fenced {
            if sender_epoch > self.fencing_epoch() {
                self.is_leader = false;
            }
            self.seen_epoch = self.seen_epoch.max(sender_epoch);
            self.last_contact_ms = now_ms;
        }
        Ack {
            node: self.id,
            epoch: self.epoch(),
            durable_index: self.durable_index(),
            // A heartbeat carries no frames, so it cannot verify which
            // history this node's length refers to.
            matched: false,
            fenced,
            diverged: self.diverged,
            visible_at_ms: now_ms,
        }
    }

    /// Crashes the node: volatile state is gone; the log keeps only what
    /// was made durable.
    pub(super) fn crash(&mut self) {
        self.down = true;
        self.log.crash();
    }

    /// Restarts a crashed node from its durable log, reconstructing the
    /// frame prefix from the surviving records. Valid because replicas
    /// log every record from genesis (replication never compacts), so a
    /// record's log position *is* its frame index, and `NewEpoch`
    /// records recover the epoch each frame was shipped under.
    pub(super) fn restart(
        &mut self,
        ontology: &Ontology,
        model: &SpatialModel,
        config: &TippersConfig,
        occupants: &[Occupant],
        now_ms: i64,
    ) -> Result<(), WalError> {
        let (_, records, _) = Wal::open(
            Box::new(self.log.clone()),
            WalConfig {
                segment_max_bytes: config.wal_segment_max_bytes,
            },
        )?;
        let mut epoch = 0u64;
        let mut prev_epoch = 0u64;
        let mut frames = Vec::with_capacity(records.len());
        for (index, record) in records.into_iter().enumerate() {
            if let WalRecord::NewEpoch { epoch: e } = &record {
                epoch = epoch.max(*e);
            }
            frames.push(Frame {
                epoch,
                prev_epoch,
                index: index as u64,
                record,
            });
            prev_epoch = epoch;
        }
        self.bms = Node::reopen(&self.log, ontology, model, config, occupants)?;
        self.frames = frames;
        self.pending.clear();
        // `seen_epoch` is volatile (Raft persists currentTerm to guard
        // double-voting; here the external allocator never reuses an
        // epoch, so restarting at the applied epoch is safe).
        self.seen_epoch = self.bms.replication_epoch();
        // A restarted node never resumes leadership on its own; it must
        // be re-promoted by the coordination service.
        self.is_leader = false;
        self.fenced = false;
        self.diverged = false;
        self.down = false;
        self.last_contact_ms = now_ms;
        Ok(())
    }

    /// Full state transfer: discards the node's log (and any divergent
    /// suffix plus its node-local served audit) and replays `history`
    /// from genesis.
    pub(super) fn rebuild(
        &mut self,
        history: &[Frame],
        ontology: &Ontology,
        model: &SpatialModel,
        config: &TippersConfig,
        occupants: &[Occupant],
        now_ms: i64,
    ) -> Result<(), WalError> {
        self.log = MemLog::new();
        self.bms = Node::reopen(&self.log, ontology, model, config, occupants)?;
        self.frames = Vec::new();
        self.pending.clear();
        for frame in history {
            self.apply(frame.clone())?;
        }
        self.seen_epoch = self.bms.replication_epoch();
        self.is_leader = false;
        self.fenced = false;
        self.diverged = false;
        self.down = false;
        self.last_contact_ms = now_ms;
        Ok(())
    }
}
