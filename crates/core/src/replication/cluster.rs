//! The replicated enforcement cluster: a primary shipping WAL frames to
//! deterministic replicas, quorum commit, epoch-fenced failover, and
//! post-partition settings anti-entropy.
//!
//! Every node runs the same BMS code over its own in-memory log; the
//! cluster harness moves frames between them over the fault-injectable
//! [`ReplicationLink`] and advances a shared [`VirtualClock`]. Nothing
//! here consults wall-clock time or an unseeded RNG, so a (seed, op
//! sequence) pair reproduces byte-identical histories.

use std::collections::BTreeMap;

use tippers_ontology::Ontology;
use tippers_policy::Timestamp;
use tippers_resilience::{FaultPlan, FaultPoint, VirtualClock, MILLIS_PER_SEC};
use tippers_sensors::Occupant;
use tippers_spatial::SpatialModel;

use super::link::{Ack, Frame, ReplicationLink};
use super::node::Node;
use super::settings::{divergent_choices, resolve, MergeWinner, VersionedChoice};
use crate::audit::AuditLog;
use crate::request::{DataRequest, DataResponse};
use crate::snapshot::Snapshot;
use crate::tippers::{Tippers, TippersConfig};
use crate::wal::{WalError, WalRecord};

/// Replication topology and staleness policy.
#[derive(Debug, Clone)]
pub struct ReplicationConfig {
    /// Total node count (primary + replicas).
    pub replicas: usize,
    /// Acknowledgements (including the primary's own durable append)
    /// required before a write is committed.
    pub quorum: usize,
    /// A replica serves reads only while its last primary contact is
    /// within this bound; beyond it, reads fail closed with
    /// [`crate::DecisionBasis::StaleReplica`].
    pub staleness_bound_ms: i64,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig {
            replicas: 3,
            quorum: 2,
            staleness_bound_ms: 5 * MILLIS_PER_SEC,
        }
    }
}

/// The outcome of a write submitted to a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// Durable on a quorum; the write survives any single failover.
    Committed {
        /// Global log index of the write's last record.
        index: u64,
    },
    /// Durable locally but not yet quorum-acknowledged; a failover may
    /// lose it (and the harness must not count it as committed).
    Pending {
        /// Global log index of the write's last record.
        index: u64,
    },
    /// The node is fenced (a newer epoch exists) or holds a divergent
    /// branch: the write was rejected and counted as a split-brain
    /// attempt.
    Fenced {
        /// The rejected node's epoch.
        epoch: u64,
    },
    /// The node is down.
    Unavailable,
    /// The mutation produced no WAL records (e.g. a no-op gc).
    NoOp,
}

/// What the post-heal anti-entropy pass did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconcileReport {
    /// Divergent setting choices folded into the primary history.
    pub merged: usize,
    /// Durable supersession notices issued to users whose divergent
    /// choice lost the merge.
    pub notices: usize,
    /// Nodes rebuilt by full state transfer from the primary history.
    pub rebuilt: Vec<usize>,
}

/// A deterministic replication cluster over one building's BMS state.
pub struct Cluster {
    nodes: Vec<Node>,
    primary: usize,
    config: ReplicationConfig,
    plan: FaultPlan,
    clock: VirtualClock,
    link: ReplicationLink,
    /// Highest durable index acknowledged per (shipper, node).
    acked: BTreeMap<(usize, usize), u64>,
    /// Acks whose visibility is delayed by [`FaultPoint::ReplAckDelay`],
    /// keyed by shipper.
    in_flight: Vec<(usize, Ack)>,
    /// The fencing-token allocator (models the coordination service that
    /// elects primaries); promotion takes `max(next_epoch, epoch + 1)`.
    next_epoch: u64,
    split_brain_rejections: u64,
    /// Shipping rounds issued (each round sends every peer its unacked
    /// suffix once) — the batching experiment's amortization witness.
    shipping_rounds: u64,
    ontology: Ontology,
    model: SpatialModel,
    tippers_config: TippersConfig,
    occupants: Vec<Occupant>,
}

impl Cluster {
    /// Boots `config.replicas` fresh nodes sharing `plan` and `clock`;
    /// node 0 starts as primary at epoch 1 (durably fenced via a
    /// [`WalRecord::NewEpoch`] before serving).
    ///
    /// # Errors
    ///
    /// Propagates WAL failures from the initial epoch fence.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        config: ReplicationConfig,
        plan: FaultPlan,
        clock: VirtualClock,
        ontology: Ontology,
        model: SpatialModel,
        mut tippers_config: TippersConfig,
        occupants: Vec<Occupant>,
    ) -> Result<Cluster, WalError> {
        assert!(config.replicas >= 1, "a cluster needs at least one node");
        assert!(
            config.quorum >= 1 && config.quorum <= config.replicas,
            "quorum must be within the replica set"
        );
        tippers_config.fault_plan = plan.clone();
        let mut nodes = Vec::with_capacity(config.replicas);
        for id in 0..config.replicas {
            nodes.push(Node::open(
                id,
                &ontology,
                &model,
                &tippers_config,
                &occupants,
            )?);
        }
        let link = ReplicationLink::new(plan.clone());
        let mut cluster = Cluster {
            nodes,
            primary: 0,
            config,
            plan,
            clock,
            link,
            acked: BTreeMap::new(),
            in_flight: Vec::new(),
            next_epoch: 1,
            split_brain_rejections: 0,
            shipping_rounds: 0,
            ontology,
            model,
            tippers_config,
            occupants,
        };
        cluster.promote(0)?;
        Ok(cluster)
    }

    /// The current primary's id.
    pub fn primary(&self) -> usize {
        self.primary
    }

    /// The current primary's epoch.
    pub fn epoch(&self) -> u64 {
        self.nodes[self.primary].epoch()
    }

    /// Writes the cluster has rejected because the receiving node was
    /// fenced or divergent (each is an audited split-brain attempt).
    pub fn split_brain_rejections(&self) -> u64 {
        self.split_brain_rejections
    }

    /// A node's epoch.
    pub fn node_epoch(&self, node: usize) -> u64 {
        self.nodes[node].epoch()
    }

    /// A node's contiguous durable frame count.
    pub fn durable_index(&self, node: usize) -> u64 {
        self.nodes[node].durable_index()
    }

    /// Whether a node is crashed.
    pub fn is_down(&self, node: usize) -> bool {
        self.nodes[node].down
    }

    /// Whether `node` can currently serve authoritative writes: alive,
    /// still believing itself leader, unfenced and undiverged. A driving
    /// harness promotes a fresh candidate when its primary loses this.
    pub fn is_authoritative(&self, node: usize) -> bool {
        let n = &self.nodes[node];
        !n.down && n.is_leader && !n.fenced && !n.diverged
    }

    /// Read-only access to a node's BMS (all mutation goes through
    /// [`Cluster::write_to`] so it is framed and shipped).
    pub fn node_bms(&self, node: usize) -> &Tippers {
        &self.nodes[node].bms
    }

    /// A node's durable frame history (for differential harnesses).
    pub fn frames(&self, node: usize) -> &[Frame] {
        &self.nodes[node].frames
    }

    /// A node's served-decision audit: the request-path decisions this
    /// node actually answered (node-local; not part of replicated state).
    pub fn served_audit(&self, node: usize) -> Option<&AuditLog> {
        self.nodes[node].bms.served_audit()
    }

    /// A node's replicated-state snapshot (post-heal convergence is
    /// asserted by comparing these across nodes).
    pub fn snapshot(&self, node: usize) -> Snapshot {
        self.nodes[node].bms.snapshot()
    }

    /// Submits a mutation to `node` through `mutate`. On the live,
    /// unfenced primary the resulting WAL records are framed at the
    /// node's epoch, appended durably, and shipped to every reachable
    /// peer; the outcome reports whether a commit quorum acknowledged
    /// them. On a fenced or divergent node (a deposed primary that has
    /// not yet learned it) the write is rejected and audited as a
    /// split-brain attempt.
    ///
    /// # Errors
    ///
    /// Propagates WAL append failures.
    pub fn write_to(
        &mut self,
        node: usize,
        mutate: impl FnOnce(&mut Tippers),
    ) -> Result<WriteOutcome, WalError> {
        if self.nodes[node].down {
            return Ok(WriteOutcome::Unavailable);
        }
        if !self.nodes[node].is_leader || self.nodes[node].fenced || self.nodes[node].diverged {
            self.nodes[node].split_brain_writes += 1;
            self.split_brain_rejections += 1;
            return Ok(WriteOutcome::Fenced {
                epoch: self.nodes[node].epoch(),
            });
        }
        let epoch = self.nodes[node].epoch();
        mutate(&mut self.nodes[node].bms);
        let records = self.nodes[node].bms.drain_record_tap();
        if records.is_empty() {
            return Ok(WriteOutcome::NoOp);
        }
        for record in records {
            let index = self.nodes[node].durable_index();
            let prev_epoch = self.nodes[node].frames.last().map_or(0, |f| f.epoch);
            self.nodes[node].frames.push(Frame {
                epoch,
                prev_epoch,
                index,
                record,
            });
        }
        let index = self.nodes[node].durable_index() - 1;
        self.ship_from(node)?;
        if self.commit_len(node) > index {
            Ok(WriteOutcome::Committed { index })
        } else {
            Ok(WriteOutcome::Pending { index })
        }
    }

    /// Submits a whole *batch* of mutations to `node` as one pipelined
    /// shipping round: `mutate` is applied once per index in
    /// `0..mutations`, every resulting WAL record is framed in order, and
    /// the accumulated suffix ships to each peer *once* — instead of one
    /// ship per write as [`Cluster::write_to`] does. The ingest path uses
    /// this to replicate group-committed observation batches without
    /// paying a network round per record.
    ///
    /// Fencing and split-brain accounting are identical to
    /// [`Cluster::write_to`]; the batch is rejected whole on a fenced or
    /// divergent node.
    ///
    /// # Errors
    ///
    /// Propagates WAL append failures.
    pub fn write_batch_to(
        &mut self,
        node: usize,
        mutations: usize,
        mut mutate: impl FnMut(&mut Tippers, usize),
    ) -> Result<WriteOutcome, WalError> {
        if self.nodes[node].down {
            return Ok(WriteOutcome::Unavailable);
        }
        if !self.nodes[node].is_leader || self.nodes[node].fenced || self.nodes[node].diverged {
            self.nodes[node].split_brain_writes += 1;
            self.split_brain_rejections += 1;
            return Ok(WriteOutcome::Fenced {
                epoch: self.nodes[node].epoch(),
            });
        }
        let epoch = self.nodes[node].epoch();
        let mut records = Vec::new();
        for i in 0..mutations {
            mutate(&mut self.nodes[node].bms, i);
            records.extend(self.nodes[node].bms.drain_record_tap());
        }
        if records.is_empty() {
            return Ok(WriteOutcome::NoOp);
        }
        for record in records {
            let index = self.nodes[node].durable_index();
            let prev_epoch = self.nodes[node].frames.last().map_or(0, |f| f.epoch);
            self.nodes[node].frames.push(Frame {
                epoch,
                prev_epoch,
                index,
                record,
            });
        }
        let index = self.nodes[node].durable_index() - 1;
        self.ship_from(node)?;
        if self.commit_len(node) > index {
            Ok(WriteOutcome::Committed { index })
        } else {
            Ok(WriteOutcome::Pending { index })
        }
    }

    /// Shipping rounds issued so far: the batched write path's
    /// amortization witness (N batched mutations cost one round where N
    /// [`Cluster::write_to`] calls cost N).
    pub fn shipping_rounds(&self) -> u64 {
        self.shipping_rounds
    }

    /// Ships each peer the frames it has not yet acknowledged (or a
    /// heartbeat when there is nothing to ship) and processes whatever
    /// acks come back immediately.
    fn ship_from(&mut self, shipper: usize) -> Result<(), WalError> {
        if self.nodes[shipper].down {
            return Ok(());
        }
        self.shipping_rounds += 1;
        let now_ms = self.clock.now_ms();
        let shipper_epoch = self.nodes[shipper].epoch();
        for peer in 0..self.nodes.len() {
            if peer == shipper || self.nodes[peer].down {
                continue;
            }
            let from = self.acked.get(&(shipper, peer)).copied().unwrap_or(0);
            let suffix: Vec<Frame> = self.nodes[shipper]
                .frames
                .iter()
                .skip(from as usize)
                .cloned()
                .collect();
            let ack = if suffix.is_empty() {
                if !self.link.heartbeat(shipper, peer) {
                    continue;
                }
                self.nodes[peer].touch(shipper_epoch, now_ms)
            } else {
                let delivered = self.link.transmit(shipper, peer, &suffix);
                if delivered.is_empty() {
                    // Every frame was cut, dropped or held: nothing reached
                    // the peer, so there is no contact (and no ack) — epoch
                    // knowledge must not teleport across a partition.
                    continue;
                }
                self.nodes[peer].accept(shipper_epoch, delivered, now_ms)?
            };
            if ack.fenced {
                self.nodes[shipper].fenced = true;
            }
            match self.link.ack_visible_at(shipper, peer, now_ms) {
                None => {}
                Some(at) if at <= now_ms => self.note_ack(shipper, &ack),
                Some(at) => {
                    let mut delayed = ack;
                    delayed.visible_at_ms = at;
                    self.in_flight.push((shipper, delayed));
                }
            }
        }
        Ok(())
    }

    fn note_ack(&mut self, shipper: usize, ack: &Ack) {
        // Only a *matched* ack proves the peer's durable length refers to
        // the shipper's history (and not a divergent branch the peer is
        // still sitting on), so only a matched ack may advance the
        // watermark that commit decisions and retransmit offsets read.
        if ack.fenced || ack.diverged || !ack.matched {
            return;
        }
        let entry = self.acked.entry((shipper, ack.node)).or_insert(0);
        *entry = (*entry).max(ack.durable_index);
    }

    /// Matures delayed acks whose visibility time has arrived.
    fn collect(&mut self) {
        let now_ms = self.clock.now_ms();
        let due: Vec<(usize, Ack)> = {
            let (ready, waiting): (Vec<_>, Vec<_>) = self
                .in_flight
                .drain(..)
                .partition(|(_, a)| a.visible_at_ms <= now_ms);
            self.in_flight = waiting;
            ready
        };
        for (shipper, ack) in due {
            if ack.fenced {
                self.nodes[shipper].fenced = true;
            }
            self.note_ack(shipper, &ack);
        }
    }

    /// One replication round: mature delayed acks, then retransmit from
    /// the primary (re-shipping anything unacknowledged).
    ///
    /// # Errors
    ///
    /// Propagates WAL failures from replica appends.
    pub fn tick(&mut self) -> Result<(), WalError> {
        self.collect();
        let primary = self.primary;
        if !self.nodes[primary].down && !self.nodes[primary].fenced {
            self.ship_from(primary)?;
        }
        Ok(())
    }

    /// The length of the longest prefix of `shipper`'s history that a
    /// commit quorum holds durably.
    fn commit_len(&self, shipper: usize) -> u64 {
        let mut durable: Vec<u64> = vec![self.nodes[shipper].durable_index()];
        for peer in 0..self.nodes.len() {
            if peer == shipper {
                continue;
            }
            durable.push(self.acked.get(&(shipper, peer)).copied().unwrap_or(0));
        }
        durable.sort_unstable_by(|a, b| b.cmp(a));
        durable[self.config.quorum - 1]
    }

    /// The committed prefix length of the current primary's history.
    pub fn committed_len(&self) -> u64 {
        self.commit_len(self.primary)
    }

    /// Serves a read from `node`, or `None` when the node is down.
    ///
    /// The unfenced primary always serves. A replica serves only while
    /// it can *prove* bounded staleness — contiguous frames, no
    /// divergence, and primary contact within the staleness bound on its
    /// (possibly skewed) local clock; otherwise every subject in the
    /// response is denied with [`crate::DecisionBasis::StaleReplica`]
    /// and the denial is audited on the serving node.
    pub fn read_from(
        &mut self,
        node: usize,
        request: &DataRequest,
        now: Timestamp,
    ) -> Option<DataResponse> {
        if self.nodes[node].down {
            return None;
        }
        let is_authority =
            node == self.primary && self.nodes[node].is_leader && !self.nodes[node].fenced;
        if is_authority {
            self.nodes[node].bms.set_serve_follower(false);
            let epoch = self.nodes[node].epoch();
            let response = self.nodes[node].bms.handle_request(request, now);
            // The release path can originate durable records of its own
            // (disclosure-quota charges, scheduled retention sweeps):
            // frame and ship them exactly as a write would, so replicas
            // converge on the same ledger and store. Shipping is
            // best-effort here — unshipped frames go out with the next
            // write or heartbeat.
            let records = self.nodes[node].bms.drain_record_tap();
            if !records.is_empty() {
                for record in records {
                    let index = self.nodes[node].durable_index();
                    let prev_epoch = self.nodes[node].frames.last().map_or(0, |f| f.epoch);
                    self.nodes[node].frames.push(Frame {
                        epoch,
                        prev_epoch,
                        index,
                        record,
                    });
                }
                let _ = self.ship_from(node);
            }
            return Some(response);
        }
        let mut local_now_ms = self.clock.now_ms();
        if self.plan.is_armed(FaultPoint::ClockSkew) && self.plan.should_fail(FaultPoint::ClockSkew)
        {
            local_now_ms += self.plan.param(FaultPoint::ClockSkew) * MILLIS_PER_SEC;
        }
        let bound = self.config.staleness_bound_ms;
        let n = &mut self.nodes[node];
        let fresh = n.pending.is_empty()
            && !n.diverged
            && local_now_ms.saturating_sub(n.last_contact_ms) <= bound;
        if fresh {
            // A follower serves check-only: it never originates quota
            // charges or sweeps — its ledger moves through shipped records.
            n.bms.set_serve_follower(true);
            Some(n.bms.handle_request(request, now))
        } else {
            Some(n.bms.stale_response(request, now))
        }
    }

    /// Crashes `node` (volatile state lost; durable log survives).
    pub fn crash(&mut self, node: usize) {
        self.nodes[node].crash();
    }

    /// Restarts a crashed node from its durable log.
    ///
    /// # Errors
    ///
    /// Propagates WAL replay failures.
    pub fn restart(&mut self, node: usize) -> Result<(), WalError> {
        let now_ms = self.clock.now_ms();
        let (ontology, model, config, occupants) = (
            self.ontology.clone(),
            self.model.clone(),
            self.tippers_config.clone(),
            self.occupants.clone(),
        );
        self.nodes[node].restart(&ontology, &model, &config, &occupants, now_ms)
    }

    /// The best promotion candidate under the election rule — the most
    /// up-to-date reachable node: max (epoch, durable prefix, lowest id)
    /// among alive, non-isolated nodes — or `None` when fewer than a
    /// quorum of nodes is reachable (promoting without quorum could
    /// elect a stale node and lose committed writes).
    pub fn best_candidate(&self) -> Option<usize> {
        let isolated = if self.plan.is_armed(FaultPoint::Partition) {
            self.plan.param(FaultPoint::Partition)
        } else {
            -1
        };
        let reachable: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| !self.nodes[i].down && isolated != i as i64)
            .collect();
        if reachable.len() < self.config.quorum {
            return None;
        }
        reachable.into_iter().max_by_key(|&i| {
            (
                self.nodes[i].epoch(),
                self.nodes[i].durable_index(),
                std::cmp::Reverse(i),
            )
        })
    }

    /// Promotes `node` to primary under a fresh epoch.
    ///
    /// The epoch fence is recorded durably (a [`WalRecord::NewEpoch`]
    /// frame) *before* the node serves anything, so a deposed primary is
    /// fenced on its next append — its peers answer with a newer epoch
    /// and its writes are rejected and audited rather than acknowledged.
    ///
    /// # Errors
    ///
    /// Propagates WAL failures recording the fence.
    pub fn promote(&mut self, node: usize) -> Result<u64, WalError> {
        assert!(!self.nodes[node].down, "cannot promote a crashed node");
        let epoch = self.next_epoch.max(self.nodes[node].epoch() + 1);
        self.next_epoch = epoch + 1;
        // RequestVote phase: a quorum of nodes must learn the new epoch —
        // and thereby fence the old one — *before* the candidate serves.
        // Otherwise a deposed primary could still assemble a commit quorum
        // among uninformed replicas while this promotion is in flight.
        let now_ms = self.clock.now_ms();
        let mut votes = 1; // the candidate itself
        for peer in 0..self.nodes.len() {
            if peer == node || self.nodes[peer].down || !self.link.heartbeat(node, peer) {
                continue;
            }
            self.nodes[peer].touch(epoch, now_ms);
            votes += 1;
        }
        assert!(
            votes >= self.config.quorum,
            "promotion requires a reachable quorum (pick candidates via best_candidate)"
        );
        // Promotion replays the longest durable prefix: anything buffered
        // out of order is not durable-contiguous and is discarded.
        self.nodes[node].pending.clear();
        let index = self.nodes[node].durable_index();
        self.nodes[node]
            .bms
            .record_and_log(WalRecord::NewEpoch { epoch })?;
        self.nodes[node].bms.drain_record_tap();
        let prev_epoch = self.nodes[node].frames.last().map_or(0, |f| f.epoch);
        self.nodes[node].frames.push(Frame {
            epoch,
            prev_epoch,
            index,
            record: WalRecord::NewEpoch { epoch },
        });
        self.nodes[node].is_leader = true;
        self.nodes[node].fenced = false;
        self.nodes[node].diverged = false;
        self.nodes[node].bms.set_serve_follower(false);
        self.primary = node;
        // The new primary has no ack knowledge yet; peers re-ack from 0
        // (acks are idempotent maxes, so re-shipping is safe).
        self.acked.retain(|(shipper, _), _| *shipper != node);
        self.in_flight.retain(|(shipper, _)| *shipper != node);
        self.ship_from(node)?;
        Ok(epoch)
    }

    /// Post-heal anti-entropy: folds every reachable node's divergent
    /// suffix into the primary history, resolving contested setting
    /// updates by (epoch, version) last-writer-wins with the privacy-max
    /// tiebreak, issuing durable supersession [`WalRecord::Notice`]s to
    /// users whose choice lost, rebuilding divergent nodes by state
    /// transfer, and pumping replication until every alive node holds
    /// the identical history.
    ///
    /// # Errors
    ///
    /// Propagates WAL failures.
    pub fn reconcile(&mut self) -> Result<ReconcileReport, WalError> {
        let primary = self.primary;
        let primary_frames = self.nodes[primary].frames.clone();
        // Phase 1 (read-only): find divergent branches and decide merges.
        let mut winners: Vec<VersionedChoice> = Vec::new();
        let mut notices: Vec<(VersionedChoice, VersionedChoice)> = Vec::new();
        let mut rebuilt: Vec<usize> = Vec::new();
        for i in 0..self.nodes.len() {
            if i == primary || self.nodes[i].down {
                continue;
            }
            let node_frames = &self.nodes[i].frames;
            let common = common_prefix_len(&primary_frames, node_frames);
            if common >= node_frames.len() && !self.nodes[i].diverged {
                continue;
            }
            rebuilt.push(i);
            let branch = divergent_choices(node_frames, common);
            let trunk = divergent_choices(&primary_frames, common);
            for choice in branch {
                match trunk.iter().find(|t| t.key() == choice.key()) {
                    None => winners.push(choice),
                    Some(t) => {
                        let restrictiveness =
                            |c: &VersionedChoice| self.option_strictness(primary, c);
                        match resolve(t, &choice, restrictiveness) {
                            MergeWinner::Branch => {
                                notices.push((t.clone(), choice.clone()));
                                winners.push(choice);
                            }
                            MergeWinner::Primary => notices.push((choice, t.clone())),
                        }
                    }
                }
            }
        }
        // Phase 2 (mutating): re-apply winners on the primary, notify
        // losers durably, state-transfer divergent nodes, pump to
        // convergence.
        let merged = winners.len();
        for choice in winners {
            self.mutate_primary(|bms| {
                // A branch whose policy/setting no longer exists on the
                // trunk folds away silently (the policy removal won).
                let _ = bms.apply_setting_choice(
                    choice.user,
                    choice.policy,
                    &choice.setting_key,
                    choice.option_index,
                );
            });
        }
        let now = Timestamp(self.clock.now_ms() / MILLIS_PER_SEC);
        let notice_count = notices.len();
        for (loser, winner) in notices {
            let text = format!(
                "your choice for setting '{}' of policy {:?} was superseded during partition recovery by a {} update; the more protective option now applies — please review",
                loser.setting_key,
                loser.policy,
                if winner.epoch != loser.epoch { "newer-epoch" } else { "more restrictive" },
            );
            self.mutate_primary(move |bms| {
                bms.record_notice(loser.user, now, text);
            });
        }
        let history = self.nodes[primary].frames.clone();
        let (ontology, model, config, occupants) = (
            self.ontology.clone(),
            self.model.clone(),
            self.tippers_config.clone(),
            self.occupants.clone(),
        );
        let now_ms = self.clock.now_ms();
        for &i in &rebuilt {
            self.link.drop_held(i);
            self.nodes[i].rebuild(&history, &ontology, &model, &config, &occupants, now_ms)?;
            self.acked
                .insert((primary, i), self.nodes[i].durable_index());
        }
        // Pump replication until every alive node holds the full history.
        for _ in 0..64 {
            self.tick()?;
            let target = self.nodes[primary].durable_index();
            if (0..self.nodes.len())
                .filter(|&i| !self.nodes[i].down)
                .all(|i| self.nodes[i].durable_index() == target)
            {
                break;
            }
            self.clock.advance_ms(50);
        }
        Ok(ReconcileReport {
            merged,
            notices: notice_count,
            rebuilt,
        })
    }

    /// Applies a mutation on the primary, framing its records (bypasses
    /// the fenced/diverged write gate — reconciliation runs on the
    /// authoritative primary by construction).
    fn mutate_primary(&mut self, mutate: impl FnOnce(&mut Tippers)) {
        let primary = self.primary;
        let epoch = self.nodes[primary].epoch();
        mutate(&mut self.nodes[primary].bms);
        for record in self.nodes[primary].bms.drain_record_tap() {
            let index = self.nodes[primary].durable_index();
            let prev_epoch = self.nodes[primary].frames.last().map_or(0, |f| f.epoch);
            self.nodes[primary].frames.push(Frame {
                epoch,
                prev_epoch,
                index,
                record,
            });
        }
    }

    /// Strictness of the option a choice selects, read from the judging
    /// node's policy table (0 when the policy or setting is gone).
    fn option_strictness(&self, node: usize, choice: &VersionedChoice) -> u8 {
        self.nodes[node]
            .bms
            .policy(choice.policy)
            .and_then(|p| p.settings.iter().find(|s| s.key == choice.setting_key))
            .and_then(|s| s.options.get(choice.option_index))
            .map_or(0, |o| o.effect.strictness())
    }
}

/// Length of the longest common prefix of two frame histories.
fn common_prefix_len(a: &[Frame], b: &[Frame]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// Rebuilds a reference BMS by replaying a frame history from genesis —
/// the differential oracle: a node that durably holds exactly `frames`
/// must answer every request exactly as this reference does.
///
/// The reference runs with a disarmed fault plan (replay is logical and
/// plan-independent) and the same read-audit divert as a cluster node,
/// so its replicated state is comparable snapshot-for-snapshot.
///
/// # Errors
///
/// Propagates WAL failures (none occur on a fresh in-memory log).
pub fn replay(
    frames: &[Frame],
    ontology: &Ontology,
    model: &SpatialModel,
    config: &TippersConfig,
    occupants: &[Occupant],
) -> Result<Tippers, WalError> {
    let reference = TippersConfig {
        fault_plan: FaultPlan::disarmed(),
        ..config.clone()
    };
    let mut node = Node::open(0, ontology, model, &reference, occupants)?;
    for frame in frames {
        node.bms.record_and_log(frame.record.clone())?;
        node.bms.drain_record_tap();
    }
    // The reference answers like a follower: check-only on quotas, never
    // sweeping — so probing it repeatedly cannot drift its ledger away
    // from the node it stands in for.
    node.bms.set_serve_follower(true);
    Ok(node.bms)
}
