//! Replicated enforcement (design decision D8; experiment E16).
//!
//! A building cannot stop enforcing privacy because one machine died: the
//! BMS's durable WAL (§ [`crate::wal`]) already makes every mutation a
//! logical record, so replication ships those records as epoch-stamped
//! [`Frame`]s to deterministic replicas that apply them through the
//! existing replay path. The guarantees, each enforced by
//! `tests/partition_fuzz.rs` under a seeded nemesis:
//!
//! * **No committed write is ever lost.** A write is
//!   [`WriteOutcome::Committed`] only once a quorum holds it durably;
//!   failover promotes the most up-to-date reachable node (longest
//!   durable prefix, quorum intersection), so every committed decision
//!   and setting survives any single failover.
//! * **Zero split-brain acknowledgements.** A promotion durably records a
//!   monotonically increasing epoch ([`crate::wal::WalRecord::NewEpoch`])
//!   *before* the new primary serves; a deposed primary is fenced on its
//!   next append — its writes are rejected and audited, never
//!   acknowledged.
//! * **Replica reads fail closed.** A replica serves reads only while it
//!   can prove bounded staleness; otherwise every subject is denied with
//!   [`crate::DecisionBasis::StaleReplica`] — a stale node never guesses
//!   from possibly-outdated privacy settings.
//! * **Post-heal convergence.** After a partition heals, divergent
//!   setting updates merge by (epoch, version) last-writer-wins with a
//!   privacy-max tiebreak (the more restrictive option wins an exact
//!   tie); the superseded user gets a durable re-notification, and every
//!   node converges to an identical [`crate::Snapshot`].

mod cluster;
mod link;
mod node;
mod settings;

pub use cluster::{replay, Cluster, ReconcileReport, ReplicationConfig, WriteOutcome};
pub use link::{Ack, Frame, ReplicationLink};
pub use settings::{divergent_choices, resolve, ChoiceKey, MergeWinner, VersionedChoice};
