//! The fault-injectable frame transport between replication peers.
//!
//! Everything unreliable about the wire comes from the shared
//! [`FaultPlan`], so a seeded nemesis reproduces the exact same loss,
//! reordering, delay and partition schedule on every run:
//!
//! * [`FaultPoint::Partition`] (rule parameter = the isolated node's id)
//!   cuts both directions to and from that node while armed;
//! * [`FaultPoint::ReplFrameDrop`] silently loses a frame in flight;
//! * [`FaultPoint::ReplFrameReorder`] holds a frame back and delivers it
//!   after its successor;
//! * [`FaultPoint::ReplAckDelay`] (rule parameter = delay in virtual
//!   milliseconds) delays when an acknowledgement becomes visible at the
//!   primary, starving the commit quorum without losing data.

use std::collections::BTreeMap;

use tippers_resilience::{FaultPlan, FaultPoint};

use crate::wal::WalRecord;

/// One replication frame: a WAL record stamped with the shipping
/// primary's epoch and the record's global log index (its position in
/// the primary's genesis-anchored record history).
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// The epoch of the primary that *created* this record.
    pub epoch: u64,
    /// The epoch of the frame immediately before this one in its
    /// creator's history (0 for the genesis frame). This is Raft's
    /// `prevLogTerm`: a `(epoch, index)` pair identifies a unique frame
    /// with a unique prefix, so a receiver appends a frame only when its
    /// own tail epoch equals `prev_epoch` — a delayed packet from a
    /// superseded branch can never splice onto the wrong history.
    pub prev_epoch: u64,
    /// Global log index of the record.
    pub index: u64,
    /// The shipped record.
    pub record: WalRecord,
}

/// A replica's acknowledgement of shipped frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ack {
    /// The acknowledging node.
    pub node: usize,
    /// The acknowledging node's current epoch.
    pub epoch: u64,
    /// Length of the node's contiguous durable frame prefix.
    pub durable_index: u64,
    /// Whether this delivery *verified* that the node's log is a prefix
    /// of the sender's history (a frame was chain-appended, or a
    /// delivered frame matched the node's tail byte for byte). Only a
    /// matched ack may advance the sender's replication watermark —
    /// a raw length says nothing about *which* history the node holds.
    pub matched: bool,
    /// The sender's epoch is older than the node's: the shipping primary
    /// has been deposed and must fence itself (reject further writes).
    pub fenced: bool,
    /// The node holds a conflicting frame at an index the sender also
    /// shipped — a divergent branch that anti-entropy must reconcile.
    pub diverged: bool,
    /// Virtual time at which the ack becomes visible to the sender.
    pub visible_at_ms: i64,
}

/// The replication wire. Frames and acks between any two peers pass
/// through here; all unreliability is injected from the shared plan.
#[derive(Debug)]
pub struct ReplicationLink {
    plan: FaultPlan,
    /// Frames held back per (source, destination) pair by an armed
    /// [`FaultPoint::ReplFrameReorder`]; each rides behind the next frame
    /// delivered on the *same* pair. Keying by the pair matters for
    /// safety: a held frame must only ever arrive as part of a message
    /// from its original sender, so a deposed primary's stale frames stay
    /// subject to that sender's epoch fence instead of smuggling
    /// themselves into the new primary's deliveries.
    held: BTreeMap<(usize, usize), Vec<Frame>>,
}

impl ReplicationLink {
    /// A link over a fault plan (a disarmed plan is a perfect wire).
    pub fn new(plan: FaultPlan) -> ReplicationLink {
        ReplicationLink {
            plan,
            held: BTreeMap::new(),
        }
    }

    /// Consults the partition fault for the `a` ↔ `b` pair: the cut
    /// applies only when one endpoint is the armed rule's isolated node.
    fn cut(&self, a: usize, b: usize) -> bool {
        if !self.plan.is_armed(FaultPoint::Partition) {
            return false;
        }
        let isolated = self.plan.param(FaultPoint::Partition);
        if isolated != a as i64 && isolated != b as i64 {
            return false;
        }
        self.plan.should_fail(FaultPoint::Partition)
    }

    /// True when a heartbeat from `src` currently reaches `dst` (the
    /// partition cut is the only fault that silences heartbeats).
    pub fn heartbeat(&self, src: usize, dst: usize) -> bool {
        !self.cut(src, dst)
    }

    /// Ships `frames` from `src` to `dst`, returning what the wire
    /// delivers — in delivery order, possibly reordered, possibly with
    /// frames missing. The receiver must tolerate gaps and duplicates.
    pub fn transmit(&mut self, src: usize, dst: usize, frames: &[Frame]) -> Vec<Frame> {
        let mut delivered = Vec::new();
        for frame in frames {
            if self.cut(src, dst) {
                continue;
            }
            if self.plan.should_fail(FaultPoint::ReplFrameDrop) {
                continue;
            }
            if self.plan.should_fail(FaultPoint::ReplFrameReorder) {
                self.held.entry((src, dst)).or_default().push(frame.clone());
                continue;
            }
            delivered.push(frame.clone());
            if let Some(held) = self.held.get_mut(&(src, dst)) {
                delivered.append(held);
            }
        }
        delivered
    }

    /// When an ack sent now from `dst` back to `src` becomes visible at
    /// `src` (`None`: the ack is lost at a partition cut).
    pub fn ack_visible_at(&self, src: usize, dst: usize, now_ms: i64) -> Option<i64> {
        if self.cut(src, dst) {
            return None;
        }
        if self.plan.should_fail(FaultPoint::ReplAckDelay) {
            return Some(now_ms + self.plan.param(FaultPoint::ReplAckDelay).max(0));
        }
        Some(now_ms)
    }

    /// Voids every frame still on the wire to or from `node` — called
    /// when the node's log is replaced by state transfer, so nothing it
    /// shipped (or was about to receive) from the superseded history can
    /// surface later.
    pub fn drop_held(&mut self, node: usize) {
        self.held
            .retain(|&(src, dst), _| src != node && dst != node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tippers_policy::Timestamp;

    fn frame(index: u64) -> Frame {
        Frame {
            epoch: 1,
            prev_epoch: if index == 0 { 0 } else { 1 },
            index,
            record: WalRecord::Gc {
                now: Timestamp(index as i64),
            },
        }
    }

    #[test]
    fn perfect_wire_delivers_in_order() {
        let mut link = ReplicationLink::new(FaultPlan::disarmed());
        let frames = [frame(0), frame(1), frame(2)];
        let got = link.transmit(0, 1, &frames);
        assert_eq!(got, frames.to_vec());
        assert_eq!(link.ack_visible_at(0, 1, 500), Some(500));
        assert!(link.heartbeat(0, 1));
    }

    #[test]
    fn partition_cuts_only_the_isolated_node() {
        let plan = FaultPlan::seeded(7);
        plan.arm_with_param(FaultPoint::Partition, 1.0, 2);
        let mut link = ReplicationLink::new(plan);
        assert!(link.transmit(0, 2, &[frame(0)]).is_empty());
        assert!(link.transmit(2, 0, &[frame(0)]).is_empty());
        assert_eq!(link.transmit(0, 1, &[frame(0)]).len(), 1);
        assert!(!link.heartbeat(0, 2));
        assert!(link.heartbeat(0, 1));
        assert_eq!(link.ack_visible_at(0, 2, 9), None);
    }

    #[test]
    fn reorder_holds_a_frame_behind_its_successor() {
        let plan = FaultPlan::seeded(7);
        plan.arm_limited(FaultPoint::ReplFrameReorder, 1.0, 1);
        let mut link = ReplicationLink::new(plan);
        let got = link.transmit(0, 1, &[frame(0), frame(1)]);
        assert_eq!(
            got.iter().map(|f| f.index).collect::<Vec<_>>(),
            vec![1, 0],
            "held frame rides behind its successor"
        );
    }

    #[test]
    fn ack_delay_uses_the_rule_parameter() {
        let plan = FaultPlan::seeded(7);
        plan.arm_with_param(FaultPoint::ReplAckDelay, 1.0, 250);
        let link = ReplicationLink::new(plan);
        assert_eq!(link.ack_visible_at(0, 1, 1000), Some(1250));
    }
}
