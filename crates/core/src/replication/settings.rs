//! Settings anti-entropy: merging divergent setting updates after a
//! partition heals.
//!
//! During a partition both sides of the cluster may accept
//! `SettingChoice` writes for the same (user, policy, setting) key. On
//! heal the branches are merged by **(epoch, per-subject version)
//! last-writer-wins with a privacy-max tiebreak**: the choice made under
//! the higher epoch wins; within one epoch the later per-subject version
//! wins; on an exact tie the *more restrictive* option wins (privacy
//! first), and the superseded side's user receives a durable
//! [`crate::wal::WalRecord::Notice`] so their IoTA re-notifies them.

use std::collections::BTreeMap;

use tippers_policy::{PolicyId, UserId};

use super::link::Frame;
use crate::wal::WalRecord;

/// The merge key: one subject's choice for one setting of one policy.
pub type ChoiceKey = (UserId, PolicyId, String);

/// A setting choice positioned for merge: where it was made (epoch) and
/// how many choices the same user had made before it (version).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionedChoice {
    /// Epoch of the frame that carried the choice.
    pub epoch: u64,
    /// 1-based count of `SettingChoice` records by this user up to and
    /// including this one, over the branch's full history — a per-subject
    /// logical clock that survives replay.
    pub version: u64,
    /// The choosing user.
    pub user: UserId,
    /// The policy whose setting was chosen.
    pub policy: PolicyId,
    /// The setting key within that policy.
    pub setting_key: String,
    /// The chosen option index.
    pub option_index: usize,
}

impl VersionedChoice {
    /// The merge key this choice competes under.
    pub fn key(&self) -> ChoiceKey {
        (self.user, self.policy, self.setting_key.clone())
    }
}

/// Extracts the last `SettingChoice` per merge key from the suffix of
/// `history` starting at frame index `from`, versioned against the
/// branch's *full* history (earlier choices advance the per-user clock
/// even though they predate the divergence point).
pub fn divergent_choices(history: &[Frame], from: usize) -> Vec<VersionedChoice> {
    let mut per_user: BTreeMap<UserId, u64> = BTreeMap::new();
    let mut last: BTreeMap<ChoiceKey, VersionedChoice> = BTreeMap::new();
    for (index, frame) in history.iter().enumerate() {
        let WalRecord::SettingChoice {
            user,
            policy,
            setting_key,
            option_index,
        } = &frame.record
        else {
            continue;
        };
        let version = per_user.entry(*user).or_insert(0);
        *version += 1;
        if index < from {
            continue;
        }
        let choice = VersionedChoice {
            epoch: frame.epoch,
            version: *version,
            user: *user,
            policy: *policy,
            setting_key: setting_key.clone(),
            option_index: *option_index,
        };
        last.insert(choice.key(), choice);
    }
    last.into_values().collect()
}

/// Which side of a divergent setting update survives the merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeWinner {
    /// The primary branch's choice stands; the other branch's user is
    /// notified their update was superseded.
    Primary,
    /// The other branch's choice is re-applied on the primary; any
    /// conflicting primary-side user is notified.
    Branch,
}

/// Resolves one contested key by (epoch, version) last-writer-wins; an
/// exact tie falls to `restrictiveness` (higher = more privacy-
/// preserving) so the merge never silently weakens a subject's privacy,
/// and a full tie keeps the primary's choice (deterministic on every
/// node).
pub fn resolve(
    primary: &VersionedChoice,
    branch: &VersionedChoice,
    restrictiveness: impl Fn(&VersionedChoice) -> u8,
) -> MergeWinner {
    match (primary.epoch, primary.version).cmp(&(branch.epoch, branch.version)) {
        std::cmp::Ordering::Less => MergeWinner::Branch,
        std::cmp::Ordering::Greater => MergeWinner::Primary,
        std::cmp::Ordering::Equal => {
            if restrictiveness(primary) < restrictiveness(branch) {
                MergeWinner::Branch
            } else {
                MergeWinner::Primary
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tippers_policy::Timestamp;

    fn choice_frame(epoch: u64, index: u64, user: u64, key: &str, option: usize) -> Frame {
        Frame {
            epoch,
            prev_epoch: epoch,
            index,
            record: WalRecord::SettingChoice {
                user: UserId(user),
                policy: PolicyId(1),
                setting_key: key.into(),
                option_index: option,
            },
        }
    }

    fn noise_frame(epoch: u64, index: u64) -> Frame {
        Frame {
            epoch,
            prev_epoch: epoch,
            index,
            record: WalRecord::Gc {
                now: Timestamp(index as i64),
            },
        }
    }

    #[test]
    fn versions_count_over_full_history_but_only_suffix_is_reported() {
        let history = vec![
            choice_frame(1, 0, 3, "location-sensing", 0),
            noise_frame(1, 1),
            choice_frame(1, 2, 3, "location-sensing", 1),
            choice_frame(1, 3, 4, "location-sensing", 2),
        ];
        let divergent = divergent_choices(&history, 2);
        assert_eq!(divergent.len(), 2);
        let u3 = divergent.iter().find(|c| c.user == UserId(3)).unwrap();
        assert_eq!(
            u3.version, 2,
            "pre-divergence choice advances the per-user clock"
        );
        let u4 = divergent.iter().find(|c| c.user == UserId(4)).unwrap();
        assert_eq!(u4.version, 1);
    }

    #[test]
    fn later_epoch_wins_regardless_of_version() {
        let history_a = vec![choice_frame(2, 0, 3, "k", 0)];
        let history_b = vec![
            choice_frame(1, 0, 3, "k", 1),
            choice_frame(1, 1, 3, "k", 1),
            choice_frame(1, 2, 3, "k", 1),
        ];
        let a = &divergent_choices(&history_a, 0)[0];
        let b = &divergent_choices(&history_b, 0)[0];
        assert_eq!(resolve(a, b, |_| 0), MergeWinner::Primary);
        assert_eq!(resolve(b, a, |_| 0), MergeWinner::Branch);
    }

    #[test]
    fn exact_tie_falls_to_the_more_restrictive_option() {
        let lenient = &divergent_choices(&[choice_frame(1, 0, 3, "k", 0)], 0)[0];
        let strict = &divergent_choices(&[choice_frame(1, 0, 3, "k", 2)], 0)[0];
        let restrictiveness = |c: &VersionedChoice| c.option_index as u8;
        assert_eq!(
            resolve(lenient, strict, restrictiveness),
            MergeWinner::Branch,
            "privacy-max: the stricter branch choice supersedes the primary"
        );
        assert_eq!(
            resolve(strict, lenient, restrictiveness),
            MergeWinner::Primary
        );
        assert_eq!(
            resolve(lenient, lenient, restrictiveness),
            MergeWinner::Primary,
            "a full tie deterministically keeps the primary"
        );
    }
}
