//! Versioned snapshot and recovery of the BMS's durable state.
//!
//! The paper's BMS holds three things that must survive a crash: the
//! observation store (captured data the building is accountable for), the
//! users' preferences (their privacy choices — losing these silently
//! re-opens flows they opted out of), and the audit log (the evidence
//! trail). A [`Snapshot`] captures all three; [`Tippers::from_snapshot`]
//! rebuilds a BMS from one at construction time.
//!
//! Policies are deliberately *not* snapshotted: they are administrative
//! configuration the building operator re-applies on startup (step 1 of
//! Figure 1), exactly like the ontology and spatial model.
//!
//! [`Tippers::from_snapshot`]: crate::Tippers::from_snapshot

use std::fmt;

use serde::{Deserialize, Serialize};
use tippers_policy::UserPreference;

use crate::audit::AuditLog;
use crate::quota::QuotaLedger;
use crate::store::Store;

/// The snapshot format version this build writes and accepts.
pub const SNAPSHOT_VERSION: u32 = 1;

/// The BMS's durable state, serializable for crash recovery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Format version; recovery refuses snapshots from a different format.
    pub version: u32,
    /// The observation store, including per-row retention tags.
    pub store: Store,
    /// All stored user preferences.
    pub preferences: Vec<UserPreference>,
    /// The preference-id allocator's next value (so recovered BMSs never
    /// reissue an id already referenced by audit records).
    pub next_preference_id: u64,
    /// The audit log, including undelivered user notifications.
    pub audit: AuditLog,
    /// Disclosure-quota counters (`default` so snapshots written before
    /// quotas existed still recover — to empty budgets, which is the
    /// correct reading of a log that never charged any).
    #[serde(default)]
    pub quotas: QuotaLedger,
}

impl Snapshot {
    /// Serializes the snapshot to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialization is infallible")
    }

    /// Parses a snapshot from JSON and checks its version.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] on parse failure,
    /// [`SnapshotError::UnsupportedVersion`] on a version mismatch.
    pub fn from_json(json: &str) -> Result<Snapshot, SnapshotError> {
        let snapshot: Snapshot =
            serde_json::from_str(json).map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
        snapshot.check_version()?;
        Ok(snapshot)
    }

    /// Verifies the snapshot was written by a compatible build.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::UnsupportedVersion`] when it was not.
    pub fn check_version(&self) -> Result<(), SnapshotError> {
        if self.version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: self.version,
                supported: SNAPSHOT_VERSION,
            });
        }
        Ok(())
    }
}

/// Why a snapshot could not be recovered.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The snapshot was written by an incompatible format version.
    UnsupportedVersion {
        /// The version found in the snapshot.
        found: u32,
        /// The version this build supports.
        supported: u32,
    },
    /// The snapshot bytes did not parse.
    Corrupt(String),
    /// The snapshot's internal invariants do not hold (e.g. a preference id
    /// at or above the allocator's next value).
    Inconsistent(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot version {found} is not supported (this build reads {supported})"
            ),
            SnapshotError::Corrupt(detail) => write!(f, "snapshot is corrupt: {detail}"),
            SnapshotError::Inconsistent(detail) => {
                write!(f, "snapshot is inconsistent: {detail}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_mismatch_is_refused() {
        let snapshot = Snapshot {
            version: SNAPSHOT_VERSION + 1,
            store: Store::new(),
            preferences: Vec::new(),
            next_preference_id: 0,
            audit: AuditLog::new(),
            quotas: QuotaLedger::new(),
        };
        let err = Snapshot::from_json(&snapshot.to_json()).unwrap_err();
        assert!(matches!(
            err,
            SnapshotError::UnsupportedVersion { found, supported }
                if found == SNAPSHOT_VERSION + 1 && supported == SNAPSHOT_VERSION
        ));
    }

    #[test]
    fn garbage_is_corrupt() {
        assert!(matches!(
            Snapshot::from_json("not json at all {"),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snapshot = Snapshot {
            version: SNAPSHOT_VERSION,
            store: Store::new(),
            preferences: Vec::new(),
            next_preference_id: 7,
            audit: AuditLog::new(),
            quotas: QuotaLedger::new(),
        };
        let back = Snapshot::from_json(&snapshot.to_json()).unwrap();
        assert_eq!(back, snapshot);
    }
}
