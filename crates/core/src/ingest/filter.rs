//! Per-zone capture filters and the overload degradation ladder.
//!
//! A [`CaptureFilter`] is derived from the *same* policy + preference
//! corpus the request path enforces, so capture-time suppression can
//! never disagree with request-time decisions: an unconditional deny
//! preference suppresses the subject's MACs before storage, and a
//! mandatory emergency-purpose policy marks its zones *essential* —
//! exempt from every degradation rung (Policy 2's log survives any
//! overload).

use tippers_ontology::Ontology;
use tippers_policy::{BuildingPolicy, UserPreference};
use tippers_sensors::{MacAddress, Observation, ObservationPayload};
use tippers_spatial::{SpaceId, SpatialModel};

use crate::sensor_manager::SensorManager;

/// The capture-path degradation ladder, in escalation order. The rung a
/// zone runs at is keyed to its ingest mailbox's fill ratio; Emergency
/// (essential) zones always run at [`LadderRung::FullFidelity`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LadderRung {
    /// Everything the filter admits is stored as captured.
    FullFidelity,
    /// Identity is stripped at capture where the payload allows it
    /// (camera identifications cleared, environmental attributions
    /// dropped); location-bearing payloads pass through unchanged.
    CoarsenAtCapture,
    /// Only essential categories (occupancy, ambient temperature) are
    /// stored; identity- and location-bearing captures are suppressed.
    SuppressNonEssential,
    /// The mailbox is full: new captures are rejected with an audited
    /// drop and backpressure is handed to the sensor link.
    RejectWithAudit,
}

impl LadderRung {
    /// Stable index into per-rung occupancy counters.
    pub fn index(self) -> usize {
        match self {
            LadderRung::FullFidelity => 0,
            LadderRung::CoarsenAtCapture => 1,
            LadderRung::SuppressNonEssential => 2,
            LadderRung::RejectWithAudit => 3,
        }
    }
}

/// Capture-time enforcement derived from the policy + preference corpus.
#[derive(Debug, Clone, Default)]
pub struct CaptureFilter {
    /// MACs whose owners unconditionally deny network/location capture
    /// (the [`SensorManager::capture_suppression`] list, re-checked here
    /// defensively in case a device missed a settings sync).
    suppressed: Vec<MacAddress>,
    /// Space subtrees covered by a required emergency-purpose policy:
    /// capture in these zones is never degraded.
    essential_spaces: Vec<SpaceId>,
}

impl CaptureFilter {
    /// Derives the filter from the live corpus.
    pub fn derive(
        ontology: &Ontology,
        policies: &[BuildingPolicy],
        preferences: &[UserPreference],
        macs: &std::collections::HashMap<tippers_policy::UserId, MacAddress>,
    ) -> CaptureFilter {
        let c = ontology.concepts();
        let essential_spaces = policies
            .iter()
            .filter(|p| p.is_required() && ontology.purposes.is_a(p.purpose, c.emergency_response))
            .map(|p| p.space)
            .collect();
        CaptureFilter {
            suppressed: SensorManager::capture_suppression(ontology, preferences, macs),
            essential_spaces,
        }
    }

    /// True when the observation's MAC is capture-denied: the row must
    /// never be stored, at any ladder rung.
    pub fn suppresses(&self, obs: &Observation) -> bool {
        obs.payload
            .mac()
            .is_some_and(|mac| self.suppressed.contains(&mac))
    }

    /// True when `zone` lies under a required emergency-purpose policy's
    /// space: its captures are exempt from degradation.
    pub fn essential_zone(&self, model: &SpatialModel, zone: SpaceId) -> bool {
        self.essential_spaces
            .iter()
            .any(|&root| model.contains(root, zone))
    }

    /// True when `category` must survive even the suppress rung
    /// (occupancy and ambient temperature drive safety-relevant
    /// actuation — Policy 1's HVAC loop).
    pub fn essential_category(&self, ontology: &Ontology, obs: &Observation) -> bool {
        let c = ontology.concepts();
        let category = obs.payload.category(ontology);
        ontology.data.is_a(category, c.occupancy)
            || ontology.data.is_a(category, c.ambient_temperature)
    }

    /// The suppression list the filter enforces (for settings sync).
    pub fn suppressed_macs(&self) -> &[MacAddress] {
        &self.suppressed
    }
}

/// Coarsens an observation in place where its payload allows it,
/// returning true when anything was stripped. Location-bearing payloads
/// (WiFi, BLE, badge) cannot be coarsened — their payload *is* the
/// identity — and pass through for the next rung to handle.
pub(crate) fn coarsen_at_capture(obs: &mut Observation) -> bool {
    match &mut obs.payload {
        ObservationPayload::CameraFrame { identified, .. } => {
            let had_identity = !identified.is_empty() || obs.subject.is_some();
            identified.clear();
            obs.subject = None;
            had_identity
        }
        ObservationPayload::PowerReading { .. } | ObservationPayload::Temperature { .. } => {
            // Environmental readings are attributed to an office's
            // assignee at capture; coarsening drops that attribution.
            obs.subject.take().is_some()
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use tippers_policy::{catalog, Effect, PolicyId, PreferenceId, PreferenceScope, UserId};
    use tippers_sensors::DeviceId;
    use tippers_spatial::fixtures::dbh;

    #[test]
    fn emergency_policy_marks_its_zone_essential() {
        let ont = Ontology::standard();
        let d = dbh();
        let policy = catalog::policy2_emergency_location(PolicyId(0), d.building, &ont);
        let filter = CaptureFilter::derive(&ont, &[policy], &[], &HashMap::new());
        assert!(filter.essential_zone(&d.model, d.offices[0]));
    }

    #[test]
    fn unconditional_deny_suppresses_the_mac() {
        let ont = Ontology::standard();
        let c = ont.concepts();
        let mac = MacAddress::for_user(9);
        let macs: HashMap<UserId, MacAddress> = [(UserId(9), mac)].into_iter().collect();
        let pref = UserPreference::new(
            PreferenceId(1),
            UserId(9),
            PreferenceScope {
                data: Some(c.location),
                ..Default::default()
            },
            Effect::Deny,
        );
        let filter = CaptureFilter::derive(&ont, &[], &[pref], &macs);
        let obs = Observation {
            device: DeviceId(0),
            timestamp: tippers_policy::Timestamp(0),
            space: dbh().offices[0],
            payload: ObservationPayload::WifiAssociation {
                mac,
                ap: DeviceId(0),
            },
            subject: Some(UserId(9)),
        };
        assert!(filter.suppresses(&obs));
    }

    #[test]
    fn coarsening_strips_identity_but_not_location_payloads() {
        let mut camera = Observation {
            device: DeviceId(1),
            timestamp: tippers_policy::Timestamp(0),
            space: dbh().offices[0],
            payload: ObservationPayload::CameraFrame {
                occupant_count: 2,
                identified: vec![UserId(1)],
            },
            subject: Some(UserId(1)),
        };
        assert!(coarsen_at_capture(&mut camera));
        assert_eq!(camera.subject, None);
        assert!(
            matches!(camera.payload, ObservationPayload::CameraFrame { ref identified, occupant_count: 2 } if identified.is_empty())
        );

        let mut wifi = Observation {
            device: DeviceId(2),
            timestamp: tippers_policy::Timestamp(0),
            space: dbh().offices[0],
            payload: ObservationPayload::WifiAssociation {
                mac: MacAddress::for_user(1),
                ap: DeviceId(2),
            },
            subject: Some(UserId(1)),
        };
        assert!(!coarsen_at_capture(&mut wifi));
        assert_eq!(wifi.subject, Some(UserId(1)));
    }

    #[test]
    fn rungs_escalate_in_order() {
        assert!(LadderRung::FullFidelity < LadderRung::CoarsenAtCapture);
        assert!(LadderRung::CoarsenAtCapture < LadderRung::SuppressNonEssential);
        assert!(LadderRung::SuppressNonEssential < LadderRung::RejectWithAudit);
        assert_eq!(LadderRung::RejectWithAudit.index(), 3);
    }
}
