//! Batched, backpressured sensor ingest: capture-time enforcement that
//! survives the firehose.
//!
//! The paper's enforcement mapping (§IV.B) places enforcement not only at
//! request time but at *capture* and *storage* time, at sensor-event
//! rates. This module is that pipeline:
//!
//! ```text
//!  sensor links ──▶ per-zone CaptureFilter ──▶ bounded per-zone mailboxes
//!       ▲                (suppress MACs)            │ (backpressure when full)
//!       │ rejected observations                     ▼ drained in capture order
//!       └────────────────────────────── degradation ladder ──▶ storage grant
//!                                                              │
//!                                        WAL group commit ◀────┘ (one fsync
//!                                        │ per batch of records)
//!                                        ▼ synced? ── no ─▶ drop-and-audit
//!                                      store inserts          (fail closed)
//! ```
//!
//! Under overload each zone degrades along an explicit ladder
//! ([`LadderRung`]): full fidelity → coarsen-at-capture →
//! suppress-non-essential → reject-with-audit. The path is fail-closed
//! end to end: an observation that cannot be filtered, group-committed,
//! or admitted is dropped *and audited* ([`CaptureDrop`]), never stored
//! raw.

mod filter;

pub(crate) use filter::coarsen_at_capture;
pub use filter::{CaptureFilter, LadderRung};

use std::collections::BTreeMap;

use tippers_ontology::ConceptId;
use tippers_policy::{Timestamp, UserId};
use tippers_resilience::{Mailbox, MailboxStats, PushError};
use tippers_sensors::Observation;
use tippers_spatial::{SpaceId, SpatialModel};

/// Configuration for the batched ingest pipeline
/// ([`crate::Tippers::ingest_batched`]).
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Per-zone mailbox bound; a full mailbox rejects with backpressure.
    pub mailbox_capacity: usize,
    /// Maximum rows per group-committed WAL record (one
    /// [`crate::WalRecord::Ingest`] per chunk; the whole chunk sequence
    /// shares one fsync).
    pub batch_max: usize,
    /// Mailbox fill ratio at which a zone coarsens at capture.
    pub coarsen_watermark: f64,
    /// Mailbox fill ratio at which a zone suppresses non-essential
    /// categories.
    pub suppress_watermark: f64,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            mailbox_capacity: 64,
            batch_max: 32,
            coarsen_watermark: 0.5,
            suppress_watermark: 0.8,
        }
    }
}

/// Why a capture was dropped instead of stored. Every variant is an
/// *audited* outcome — the pipeline never loses an observation silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureDropReason {
    /// The zone's mailbox was full; backpressure was handed to the link.
    Backpressure,
    /// The capture filter forbids storing this MAC at all.
    CaptureFilter,
    /// The degradation ladder suppressed a non-essential capture.
    Degraded,
    /// No building policy authorizes storing the row (the storage-time
    /// enforcement decision, identical to the one-at-a-time path).
    Unauthorized,
    /// An injected store-write fault lost the row.
    StoreFault,
    /// The group commit's durability could not be proven (fsync stall or
    /// append failure): the whole batch is treated as unadmitted.
    DurabilityLost,
}

/// One audited capture-path drop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaptureDrop {
    /// Capture time of the dropped observation.
    pub time: Timestamp,
    /// The zone it was captured in.
    pub zone: SpaceId,
    /// Its data category.
    pub category: ConceptId,
    /// The data subject, when known.
    pub subject: Option<UserId>,
    /// Why it was dropped.
    pub reason: CaptureDropReason,
}

/// Lifetime counters of the ingest pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Observations admitted into a mailbox.
    pub admitted: u64,
    /// Observations rejected at admission (backpressure).
    pub rejected: u64,
    /// Rows durably stored.
    pub stored: u64,
    /// Observations coarsened at capture.
    pub coarsened: u64,
    /// Observations suppressed by the degradation ladder.
    pub suppressed: u64,
    /// Observations denied by storage-time enforcement.
    pub unauthorized: u64,
    /// Rows dropped fail-closed because durability could not be proven.
    pub unadmitted: u64,
    /// Group commits issued (each is one fsync for a whole batch).
    pub group_commits: u64,
    /// Observations processed at each ladder rung, indexed by
    /// [`LadderRung::index`].
    pub rung_observations: [u64; 4],
}

/// The outcome of one [`crate::Tippers::ingest_batched`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestReport {
    /// Rows durably stored.
    pub stored: usize,
    /// Observations handed back under backpressure — the sensor link's
    /// cue to retry (capped) or drop-and-account, never to buffer without
    /// bound.
    pub rejected: Vec<Observation>,
    /// Observations coarsened at capture this call.
    pub coarsened: usize,
    /// Observations suppressed by the ladder this call.
    pub suppressed: usize,
    /// Observations denied by storage-time enforcement this call.
    pub unauthorized: usize,
    /// Rows dropped fail-closed on an unproven group commit this call.
    pub unadmitted: usize,
    /// True when every logged record of this call was durably synced.
    pub synced: bool,
}

impl IngestReport {
    pub(crate) fn empty() -> IngestReport {
        IngestReport {
            stored: 0,
            rejected: Vec::new(),
            coarsened: 0,
            suppressed: 0,
            unauthorized: 0,
            unadmitted: 0,
            synced: true,
        }
    }

    /// Total observations not stored.
    pub fn dropped(&self) -> usize {
        self.rejected.len() + self.suppressed + self.unauthorized + self.unadmitted
    }
}

/// The stateful half of the batched ingest path: bounded per-zone
/// mailboxes, the drop-audit trail, and lifetime counters. Owned by
/// [`crate::Tippers`] when [`crate::TippersConfig::ingest`] is set.
#[derive(Debug, Clone)]
pub struct IngestPipeline {
    config: IngestConfig,
    /// Per-zone bounded mailboxes; `BTreeMap` so drain order (and thus
    /// every downstream effect) is deterministic.
    mailboxes: BTreeMap<SpaceId, Mailbox<(u64, Observation)>>,
    /// Global admission sequence, restoring capture order across zones.
    seq: u64,
    stats: IngestStats,
    drops: Vec<CaptureDrop>,
}

impl IngestPipeline {
    /// An empty pipeline.
    pub fn new(config: IngestConfig) -> IngestPipeline {
        IngestPipeline {
            config,
            mailboxes: BTreeMap::new(),
            seq: 0,
            stats: IngestStats::default(),
            drops: Vec::new(),
        }
    }

    /// The configured bounds and watermarks.
    pub fn config(&self) -> &IngestConfig {
        &self.config
    }

    /// Offers one observation to its zone's mailbox. On backpressure the
    /// observation is handed back for the producer to retry or drop.
    pub(crate) fn admit(&mut self, now_ms: i64, obs: Observation) -> Result<(), Observation> {
        let capacity = self.config.mailbox_capacity.max(1);
        let mailbox = self
            .mailboxes
            .entry(obs.space)
            .or_insert_with(|| Mailbox::new(capacity));
        let seq = self.seq;
        match mailbox.try_push(now_ms, None, (seq, obs)) {
            Ok(()) => {
                self.seq += 1;
                self.stats.admitted += 1;
                Ok(())
            }
            Err(PushError::Full((_, obs))) => {
                self.stats.rejected += 1;
                Err(obs)
            }
        }
    }

    /// Drains every mailbox, tagging each observation with the rung its
    /// zone ran at (sampled at drain start) — essential zones are pinned
    /// to full fidelity. Returned in admission order.
    pub(crate) fn drain(
        &mut self,
        now_ms: i64,
        model: &SpatialModel,
        filter: &CaptureFilter,
    ) -> Vec<(LadderRung, Observation)> {
        let coarsen_at = self.config.coarsen_watermark;
        let suppress_at = self.config.suppress_watermark;
        let mut out: Vec<(u64, LadderRung, Observation)> = Vec::new();
        for (&zone, mailbox) in &mut self.mailboxes {
            let rung = if filter.essential_zone(model, zone) {
                LadderRung::FullFidelity
            } else {
                #[allow(clippy::cast_precision_loss)]
                let ratio = mailbox.depth() as f64 / mailbox.capacity().max(1) as f64;
                if ratio >= suppress_at {
                    LadderRung::SuppressNonEssential
                } else if ratio >= coarsen_at {
                    LadderRung::CoarsenAtCapture
                } else {
                    LadderRung::FullFidelity
                }
            };
            while let Some((seq, obs)) = mailbox.pop(now_ms) {
                out.push((seq, rung, obs));
            }
        }
        out.sort_by_key(|&(seq, _, _)| seq);
        for &(_, rung, _) in &out {
            self.stats.rung_observations[rung.index()] += 1;
        }
        out.into_iter().map(|(_, rung, obs)| (rung, obs)).collect()
    }

    /// Records an audited drop.
    pub(crate) fn note_drop(
        &mut self,
        obs: &Observation,
        category: ConceptId,
        reason: CaptureDropReason,
    ) {
        match reason {
            CaptureDropReason::Backpressure => {
                self.stats.rung_observations[LadderRung::RejectWithAudit.index()] += 1;
            }
            CaptureDropReason::Degraded => self.stats.suppressed += 1,
            CaptureDropReason::Unauthorized => self.stats.unauthorized += 1,
            CaptureDropReason::DurabilityLost => self.stats.unadmitted += 1,
            CaptureDropReason::CaptureFilter | CaptureDropReason::StoreFault => {}
        }
        self.drops.push(CaptureDrop {
            time: obs.timestamp,
            zone: obs.space,
            category,
            subject: obs.subject,
            reason,
        });
    }

    pub(crate) fn note_coarsened(&mut self) {
        self.stats.coarsened += 1;
    }

    pub(crate) fn note_stored(&mut self, rows: u64) {
        self.stats.stored += rows;
    }

    pub(crate) fn note_group_commit(&mut self) {
        self.stats.group_commits += 1;
    }

    /// Lifetime counters.
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// The audited drop trail.
    pub fn drops(&self) -> &[CaptureDrop] {
        &self.drops
    }

    /// Per-zone mailbox statistics, in zone order.
    pub fn mailbox_stats(&self) -> Vec<(SpaceId, MailboxStats)> {
        self.mailboxes
            .iter()
            .map(|(&zone, mb)| (zone, mb.stats()))
            .collect()
    }

    /// The deepest any zone's mailbox currently is.
    pub fn max_depth(&self) -> usize {
        self.mailboxes
            .values()
            .map(Mailbox::depth)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tippers_sensors::{DeviceId, ObservationPayload};
    use tippers_spatial::fixtures::dbh;

    fn obs(space: SpaceId, t: i64) -> Observation {
        Observation {
            device: DeviceId(0),
            timestamp: Timestamp(t),
            space,
            payload: ObservationPayload::Motion { detected: true },
            subject: None,
        }
    }

    #[test]
    fn admission_is_bounded_per_zone_and_hands_back_overflow() {
        let d = dbh();
        let mut p = IngestPipeline::new(IngestConfig {
            mailbox_capacity: 2,
            ..IngestConfig::default()
        });
        assert!(p.admit(0, obs(d.offices[0], 0)).is_ok());
        assert!(p.admit(0, obs(d.offices[0], 1)).is_ok());
        // Third into the same zone bounces; a different zone still admits.
        assert!(p.admit(0, obs(d.offices[0], 2)).is_err());
        assert!(p.admit(0, obs(d.offices[1], 3)).is_ok());
        assert_eq!(p.stats().admitted, 3);
        assert_eq!(p.stats().rejected, 1);
    }

    #[test]
    fn drain_restores_admission_order_across_zones() {
        let d = dbh();
        let mut p = IngestPipeline::new(IngestConfig::default());
        p.admit(0, obs(d.offices[1], 10)).unwrap();
        p.admit(0, obs(d.offices[0], 11)).unwrap();
        p.admit(0, obs(d.offices[1], 12)).unwrap();
        let drained = p.drain(0, &d.model, &CaptureFilter::default());
        let times: Vec<i64> = drained.iter().map(|(_, o)| o.timestamp.seconds()).collect();
        assert_eq!(times, vec![10, 11, 12]);
    }

    #[test]
    fn rung_tracks_fill_ratio_and_essential_zones_stay_full_fidelity() {
        let d = dbh();
        let mut p = IngestPipeline::new(IngestConfig {
            mailbox_capacity: 10,
            coarsen_watermark: 0.5,
            suppress_watermark: 0.8,
            ..IngestConfig::default()
        });
        for i in 0..9 {
            p.admit(0, obs(d.offices[0], i)).unwrap();
        }
        let drained = p.drain(0, &d.model, &CaptureFilter::default());
        assert!(drained
            .iter()
            .all(|&(rung, _)| rung == LadderRung::SuppressNonEssential));
        // The same depth in an essential zone is not degraded.
        let ont = tippers_ontology::Ontology::standard();
        let policy = tippers_policy::catalog::policy2_emergency_location(
            tippers_policy::PolicyId(0),
            d.building,
            &ont,
        );
        let filter = CaptureFilter::derive(&ont, &[policy], &[], &std::collections::HashMap::new());
        for i in 0..9 {
            p.admit(0, obs(d.offices[0], i)).unwrap();
        }
        let drained = p.drain(0, &d.model, &filter);
        assert!(drained
            .iter()
            .all(|&(rung, _)| rung == LadderRung::FullFidelity));
    }
}
