//! Privacy-preserving aggregate queries.
//!
//! §IV.B.2: users care "about the granularity of data collection (whether
//! or not it is aggregated or anonymized)". Aggregates are how analytics
//! services (space utilization, §IV.B's purpose taxonomy) should consume
//! occupancy data: never per-person rows, only cohort counts.
//!
//! Two protections compose here:
//!
//! * **k-anonymity** — a bucket is released only if at least `k` distinct
//!   subjects contribute to it; smaller cohorts are suppressed.
//! * **preference exclusion** — subjects whose preferences deny the
//!   aggregate's flow are removed *before* counting, so an opt-out user is
//!   invisible even to cohort statistics.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};
use tippers_ontology::ConceptId;
use tippers_policy::{ServiceId, Timestamp, UserId};
use tippers_spatial::SpaceId;

/// An aggregate occupancy query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateRequest {
    /// The requesting service.
    pub service: ServiceId,
    /// Declared purpose (matched against policies like any flow).
    pub purpose: ConceptId,
    /// The space subtree to aggregate over.
    pub space: SpaceId,
    /// Start of the range (inclusive).
    pub from: Timestamp,
    /// End of the range (exclusive).
    pub to: Timestamp,
    /// Bucket width, seconds.
    pub bucket_secs: i64,
}

/// One released time bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggregateBucket {
    /// Bucket start time.
    pub start: Timestamp,
    /// Distinct subjects observed in the space during the bucket, or
    /// `None` if the cohort was smaller than `k` (suppressed).
    pub count: Option<u32>,
}

/// The response to an [`AggregateRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateResponse {
    /// Buckets in time order.
    pub buckets: Vec<AggregateBucket>,
    /// How many subjects were excluded because their preferences deny the
    /// flow (reported so analysts know the count floor, not who).
    pub excluded_subjects: u32,
    /// The k-anonymity threshold applied.
    pub k: u32,
    /// True when the BMS answered in degraded mode (enforcement engine
    /// unavailable; every subject was excluded fail-closed).
    pub degraded: bool,
}

impl AggregateResponse {
    /// Number of suppressed buckets.
    pub fn suppressed(&self) -> usize {
        self.buckets.iter().filter(|b| b.count.is_none()).count()
    }
}

/// Computes distinct-subject counts per bucket from (time, subject) pairs,
/// applying the k threshold. `contributors` must already be
/// preference-filtered by the caller.
pub(crate) fn bucketize(
    contributions: &[(Timestamp, UserId)],
    from: Timestamp,
    to: Timestamp,
    bucket_secs: i64,
    k: u32,
) -> Vec<AggregateBucket> {
    assert!(bucket_secs > 0, "bucket width must be positive");
    let span = (to - from).max(0);
    let n_buckets = (span + bucket_secs - 1) / bucket_secs;
    let mut sets: Vec<HashSet<UserId>> = vec![HashSet::new(); n_buckets as usize];
    for &(t, user) in contributions {
        if t < from || t >= to {
            continue;
        }
        let idx = ((t - from) / bucket_secs) as usize;
        sets[idx].insert(user);
    }
    sets.into_iter()
        .enumerate()
        .map(|(i, set)| AggregateBucket {
            start: Timestamp(from.seconds() + i as i64 * bucket_secs),
            count: if set.len() as u32 >= k {
                Some(set.len() as u32)
            } else {
                None
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(min: i64) -> Timestamp {
        Timestamp(min * 60)
    }

    #[test]
    fn buckets_count_distinct_subjects() {
        let contributions = vec![
            (t(1), UserId(1)),
            (t(2), UserId(1)), // same user, same bucket: counted once
            (t(3), UserId(2)),
            (t(11), UserId(3)),
        ];
        let buckets = bucketize(&contributions, t(0), t(20), 600, 1);
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].count, Some(2));
        assert_eq!(buckets[1].count, Some(1));
    }

    #[test]
    fn k_threshold_suppresses_small_cohorts() {
        let contributions = vec![(t(1), UserId(1)), (t(2), UserId(2)), (t(11), UserId(3))];
        let buckets = bucketize(&contributions, t(0), t(20), 600, 2);
        assert_eq!(buckets[0].count, Some(2));
        assert_eq!(buckets[1].count, None, "singleton cohort suppressed");
    }

    #[test]
    fn out_of_range_contributions_ignored() {
        let contributions = vec![(t(-5), UserId(1)), (t(25), UserId(2))];
        let buckets = bucketize(&contributions, t(0), t(20), 600, 1);
        assert!(buckets.iter().all(|b| b.count.is_none()));
    }

    #[test]
    fn empty_range_yields_no_buckets() {
        let buckets = bucketize(&[], t(10), t(10), 600, 1);
        assert!(buckets.is_empty());
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_bucket_width_panics() {
        let _ = bucketize(&[], t(0), t(10), 0, 1);
    }
}
