//! The TIPPERS facade: the privacy-aware building management system of
//! Figure 1, wiring together the policy, preference and sensor managers,
//! the store, the enforcement engine and the audit log.

use std::collections::HashMap;
use std::path::Path;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tippers_irr::{DiscoveryBus, RegistryError, RegistryId};
use tippers_ontology::{ConceptId, Ontology};
use tippers_policy::{
    conflict, BuildingPolicy, Conflict, DataAction, Effect, PolicyId, PreferenceId,
    ResolutionStrategy, ServiceId, Timestamp, UserGroup, UserId, UserPreference,
};
use tippers_resilience::{
    ms_from_secs, AdmissionConfig, AdmissionController, AdmissionStats, BrownoutConfig,
    BrownoutController, BrownoutLevel, FaultPlan, FaultPoint, HealthMonitor, HealthStatus,
    Priority, RetryPolicy,
};
use tippers_sensors::{BuildingSimulator, MacAddress, Observation, ObservationPayload, Occupant};
use tippers_spatial::{GranularLocation, Granularity, SpaceId, SpatialModel};

use crate::aggregate::{bucketize, AggregateRequest, AggregateResponse};
use crate::audit::chain::{AuditChain, ChainFault, SealedSegment, ARCHIVE_PREFIX, SEGMENT_RECORDS};
use crate::audit::hash::{hex, sha256};
use crate::audit::{AuditEntry, AuditLog, ChainEvent, DeletionCertificate, UserNotification};
use crate::enforce::{EnforcementDecision, Enforcer, IndexedEnforcer, NaiveEnforcer, RequestFlow};
use crate::ingest::{
    coarsen_at_capture, CaptureDrop, CaptureDropReason, CaptureFilter, IngestConfig,
    IngestPipeline, IngestReport, IngestStats, LadderRung,
};
use crate::policy_manager::PolicyManager;
use crate::preference_manager::{PreferenceManager, SettingsError};
use crate::quota::{QuotaConfig, QuotaLedger};
use crate::request::{
    DataRequest, DataResponse, ReleasedRecord, ReleasedValue, SubjectResult, SubjectSelector,
};
use crate::sensor_manager::{HvacCommand, SensorManager};
use crate::store::{Store, StoredRow};
use crate::wal::{FaultyLog, FsLog, LogIo, RecoveryReport, Wal, WalConfig, WalError, WalRecord};

/// Which enforcement engine to run (design decision D1; experiment E8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnforcerKind {
    /// Linear scan (the baseline).
    Naive,
    /// Category-indexed (the optimized path).
    #[default]
    Indexed,
}

/// BMS configuration.
#[derive(Debug, Clone)]
pub struct TippersConfig {
    /// Conflict-resolution strategy (default: mandatory policies prevail).
    pub strategy: ResolutionStrategy,
    /// Enforcement engine.
    pub enforcer: EnforcerKind,
    /// TTL for published advertisements, seconds.
    pub advertisement_ttl_secs: i64,
    /// Seed for noise injection.
    pub noise_seed: u64,
    /// k-anonymity threshold for aggregate queries (buckets with fewer
    /// distinct contributors are suppressed).
    pub k_anonymity: u32,
    /// Fault-injection plan the BMS consults at its internal fault points
    /// ([`FaultPoint::StoreWrite`], [`FaultPoint::PolicyPublish`],
    /// [`FaultPoint::EnforcerBuild`]). Disarmed by default; clones share
    /// state with the plan handed in.
    pub fault_plan: FaultPlan,
    /// Retry policy for publishing policies to a registry.
    pub publish_retry: RetryPolicy,
    /// Write-ahead-log segment rotation threshold in bytes; only
    /// consulted when the BMS is opened durably ([`Tippers::open`]).
    pub wal_segment_max_bytes: u64,
    /// Admission control at the enforcement point. `None` (the default)
    /// admits everything; when set, requests pass a priority-classed
    /// token-bucket + AIMD gate and sheds fail closed with
    /// [`crate::DecisionBasis::Overload`].
    pub admission: Option<AdmissionConfig>,
    /// Brownout ladder thresholds (consulted only when `admission` is
    /// set).
    pub brownout: BrownoutConfig,
    /// Per-(user, service, purpose) disclosure budget enforced on the
    /// release path. `None` (the default) disables quota enforcement;
    /// when set, an exhausted budget — or a charge whose durable record
    /// was lost — denies fail-closed with
    /// [`crate::DecisionBasis::QuotaExceeded`].
    pub quota: Option<QuotaConfig>,
    /// Virtual-time retention-sweep period in seconds: when set, the BMS
    /// runs [`Tippers::sweep`] from the request path whenever at least
    /// this much virtual time has passed since the last sweep. `None`
    /// (the default) leaves sweeping to explicit calls.
    pub sweep_every_secs: Option<i64>,
    /// Batched, backpressured capture pipeline
    /// ([`Tippers::ingest_batched`]). `None` (the default) makes the
    /// batched entry point fall through to the one-at-a-time path.
    pub ingest: Option<IngestConfig>,
}

impl Default for TippersConfig {
    fn default() -> Self {
        TippersConfig {
            strategy: ResolutionStrategy::PolicyPrevails,
            enforcer: EnforcerKind::Indexed,
            advertisement_ttl_secs: 86_400,
            noise_seed: 0x71_bb,
            k_anonymity: 5,
            fault_plan: FaultPlan::disarmed(),
            publish_retry: RetryPolicy::default(),
            wal_segment_max_bytes: 1 << 20,
            admission: None,
            brownout: BrownoutConfig::default(),
            quota: None,
            sweep_every_secs: None,
            ingest: None,
        }
    }
}

/// In-flight provable-deletion bookkeeping between a sweep's `SweepBegin`
/// and `SweepCommit` records.
#[derive(Debug)]
struct PendingSweep {
    id: u64,
    now: Timestamp,
    rows: Vec<StoredRow>,
    /// True once the `SweepDelete` record is durably logged (or replayed).
    deleted_logged: bool,
}

#[derive(Debug)]
enum EnforcerImpl {
    Naive(NaiveEnforcer),
    Indexed(IndexedEnforcer),
}

impl EnforcerImpl {
    fn decide(
        &self,
        flow: &RequestFlow,
        ontology: &Ontology,
        model: &SpatialModel,
    ) -> EnforcementDecision {
        match self {
            EnforcerImpl::Naive(e) => e.decide(flow, ontology, model),
            EnforcerImpl::Indexed(e) => e.decide(flow, ontology, model),
        }
    }
}

/// The privacy-aware building management system.
#[derive(Debug)]
pub struct Tippers {
    ontology: Ontology,
    model: SpatialModel,
    config: TippersConfig,
    policies: PolicyManager,
    preferences: PreferenceManager,
    sensors: SensorManager,
    store: Store,
    audit: AuditLog,
    groups: HashMap<UserId, UserGroup>,
    macs: HashMap<UserId, MacAddress>,
    enforcer: Option<EnforcerImpl>,
    noise_rng: StdRng,
    health: HealthMonitor,
    store_write_failures: u64,
    wal: Option<Wal>,
    wal_append_failures: u64,
    wal_truncations: u64,
    admission: Option<AdmissionController>,
    brownout: BrownoutController,
    /// Highest epoch fence durably recorded ([`WalRecord::NewEpoch`]);
    /// 0 until the node participates in a replicated deployment.
    replication_epoch: u64,
    /// When enabled, every logged record is also cloned here for the
    /// replication layer to drain into frames (see `crate::replication`).
    record_tap: Option<Vec<WalRecord>>,
    /// When set, request-path decision audits are diverted here instead of
    /// the replicated audit log: what a node *serves* is node-local
    /// observability, while the replicated audit carries only
    /// record-derived entries so identical record sequences yield
    /// identical snapshots on every node.
    read_audit_divert: Option<AuditLog>,
    /// Last fresh answer per (service, subject, data), replayed under
    /// [`BrownoutLevel::CachedOnly`]. An entry is served only when the
    /// current decision's effect matches the one the records were
    /// released under, so the cache can never out-release a decision.
    coarse_cache: HashMap<(String, UserId, ConceptId), (Effect, Vec<ReleasedRecord>)>,
    /// Durable disclosure-budget ledger: rides in snapshots and is rebuilt
    /// from replayed/shipped [`WalRecord::QuotaCharge`] records, so a
    /// crash, checkpoint, or failover can never reset a budget.
    quotas: QuotaLedger,
    /// True on a node that serves reads but must not originate durable
    /// records (a replication follower): quota checks still deny, but
    /// charging and sweeping are the primary's job — the follower's
    /// ledger moves only through shipped records.
    serve_follower: bool,
    /// Next retention-sweep id (monotone within one log history).
    next_sweep_id: u64,
    /// A sweep that logged `SweepBegin` but has not committed; recovery
    /// finishes it exactly once.
    pending_sweep: Option<PendingSweep>,
    /// Virtual time the sweep schedule last fired (not durable state —
    /// rederived from replayed `SweepBegin` records).
    last_sweep_at: Option<Timestamp>,
    /// Node-local tamper-evident journal over audited events: decision
    /// audits and deletion certificates, HMAC-chained; full runs seal and
    /// archive through the WAL backend.
    audit_chain: AuditChain,
    /// Sealed-segment archive writes that failed (the chain stays intact
    /// in memory; only the durable copy is missing).
    audit_archive_failures: u64,
    /// Quota charges whose durable record was dropped — each one rolled
    /// back and the request denied fail-closed.
    quota_charge_drops: u64,
    /// The batched capture pipeline, when configured: bounded per-zone
    /// mailboxes, the degradation ladder, and the capture-drop audit
    /// trail (see [`crate::ingest`]).
    ingest: Option<IngestPipeline>,
}

impl Tippers {
    /// Creates a BMS over a spatial model.
    pub fn new(ontology: Ontology, model: SpatialModel, config: TippersConfig) -> Tippers {
        Tippers {
            noise_rng: StdRng::seed_from_u64(config.noise_seed),
            admission: config.admission.map(|a| AdmissionController::new(a, 0)),
            brownout: BrownoutController::new(config.brownout),
            ingest: config.ingest.clone().map(IngestPipeline::new),
            coarse_cache: HashMap::new(),
            ontology,
            model,
            config,
            policies: PolicyManager::new(),
            preferences: PreferenceManager::new(),
            sensors: SensorManager::new(),
            store: Store::new(),
            audit: AuditLog::new(),
            groups: HashMap::new(),
            macs: HashMap::new(),
            enforcer: None,
            health: HealthMonitor::new(),
            store_write_failures: 0,
            wal: None,
            wal_append_failures: 0,
            wal_truncations: 0,
            replication_epoch: 0,
            record_tap: None,
            read_audit_divert: None,
            quotas: QuotaLedger::new(),
            serve_follower: false,
            next_sweep_id: 1,
            pending_sweep: None,
            last_sweep_at: None,
            audit_chain: AuditChain::new(),
            audit_archive_failures: 0,
            quota_charge_drops: 0,
        }
    }

    // ---- durable open & write-ahead logging ----------------------------------

    /// Opens a *durable* BMS over a write-ahead-log directory (creating
    /// it if absent): replays the log's checkpoint + tail, truncating at
    /// the first corrupt or torn record, and logs every subsequent
    /// mutation before returning from it. The caller supplies the
    /// administrative configuration (ontology, model, config) exactly as
    /// for [`Tippers::from_snapshot`]; policies, unlike in snapshots,
    /// ride in the log and are recovered.
    ///
    /// # Errors
    ///
    /// [`WalError`] on backend I/O failures or an unreplayable record;
    /// corruption is *not* an error — it is truncated and counted in the
    /// [`RecoveryReport`].
    pub fn open(
        dir: impl AsRef<Path>,
        ontology: Ontology,
        model: SpatialModel,
        config: TippersConfig,
    ) -> Result<(Tippers, RecoveryReport), WalError> {
        let io = FsLog::open(dir.as_ref().to_path_buf())?;
        Tippers::open_with(Box::new(io), ontology, model, config)
    }

    /// [`Tippers::open`] over any [`LogIo`] backend (an in-memory log for
    /// crash-simulation tests, a custom store in production). All log
    /// I/O is routed through the config's fault plan, so storage faults
    /// ([`FaultPoint::WalAppendTorn`], [`FaultPoint::WalBitFlip`],
    /// [`FaultPoint::WalSyncDrop`], [`FaultPoint::WalSegmentRename`])
    /// are injectable.
    ///
    /// # Errors
    ///
    /// See [`Tippers::open`].
    pub fn open_with(
        io: Box<dyn LogIo>,
        ontology: Ontology,
        model: SpatialModel,
        config: TippersConfig,
    ) -> Result<(Tippers, RecoveryReport), WalError> {
        let wal_config = WalConfig {
            segment_max_bytes: config.wal_segment_max_bytes,
        };
        let faulty = FaultyLog::new(io, config.fault_plan.clone());
        let (wal, records, report) = Wal::open(Box::new(faulty), wal_config)?;
        let mut bms = Tippers::new(ontology, model, config);
        // Resume the audit chain after the newest parseable archived
        // segment *before* replay, so records the replay re-journals
        // (deletion certificates) continue the sealed lineage. Unparseable
        // segments are not skipped silently — `verify_audit_archive`
        // reports them as [`ChainFault::Corrupt`].
        let mut archived: Vec<SealedSegment> = wal
            .archived(ARCHIVE_PREFIX)?
            .into_iter()
            .filter_map(|(_, bytes)| {
                std::str::from_utf8(&bytes)
                    .ok()
                    .and_then(|text| serde_json::from_str::<SealedSegment>(text).ok())
            })
            .collect();
        archived.sort_by_key(|s| s.first_seq);
        if let Some(last) = archived.last() {
            bms.audit_chain.resume_after(last);
        }
        for record in records {
            bms.apply_record(record)?;
        }
        bms.wal_truncations = report.truncated_tails;
        bms.wal = Some(wal);
        // A sweep interrupted between its records is finished now, while
        // the log is writable again: the deletions land exactly once with
        // the certificate the interrupted run would have committed.
        bms.finish_pending_sweep();
        Ok((bms, report))
    }

    /// Replays one recovered log record (the in-memory mutation without
    /// re-logging it). Also the replication layer's apply path: a replica
    /// runs every shipped frame through here, so replicated state is byte-
    /// for-byte the state a crash recovery of the primary would produce.
    pub(crate) fn apply_record(&mut self, record: WalRecord) -> Result<(), WalError> {
        match record {
            WalRecord::Checkpoint {
                snapshot,
                policies,
                next_policy_id,
            } => {
                if let Some(bad) = policies.iter().find(|p| p.id.0 >= next_policy_id) {
                    return Err(WalError::Snapshot(crate::SnapshotError::Inconsistent(
                        format!(
                            "policy {} is at or above the id allocator ({next_policy_id})",
                            bad.id
                        ),
                    )));
                }
                self.restore_durable_state(snapshot)?;
                self.policies = PolicyManager::from_parts(policies, next_policy_id);
            }
            WalRecord::AddPolicy { policy } => {
                self.enforcer = None;
                self.policies.add(policy);
            }
            WalRecord::RemovePolicy { policy } => {
                self.enforcer = None;
                self.policies.remove(policy);
            }
            WalRecord::SubmitPreference { preference, now } => {
                self.submit_preference_inner(preference, now);
            }
            WalRecord::SubmitPreferenceAssigned { preference, now } => {
                self.submit_preference_assigned_inner(preference, now);
            }
            WalRecord::SettingChoice {
                user,
                policy,
                setting_key,
                option_index,
            } => {
                self.apply_setting_choice_inner(user, policy, &setting_key, option_index)
                    .map_err(|e| WalError::Replay(format!("setting choice: {e}")))?;
            }
            WalRecord::SettingChoiceAssigned {
                user,
                policy,
                setting_key,
                option_index,
                id,
            } => {
                self.apply_setting_choice_assigned_inner(
                    user,
                    policy,
                    &setting_key,
                    option_index,
                    id,
                )
                .map_err(|e| WalError::Replay(format!("setting choice: {e}")))?;
            }
            WalRecord::Retroactive { preference } => {
                self.apply_retroactively_inner(preference);
            }
            WalRecord::Ingest { rows } => {
                for row in rows {
                    self.store.insert_row(row);
                }
            }
            WalRecord::Gc { now } => {
                self.store.gc(now);
            }
            WalRecord::SweepBegin { id, now } => {
                self.next_sweep_id = self.next_sweep_id.max(id + 1);
                self.last_sweep_at = Some(now);
                self.pending_sweep = Some(PendingSweep {
                    id,
                    now,
                    rows: Vec::new(),
                    deleted_logged: false,
                });
            }
            WalRecord::SweepDelete { id, rows } => {
                self.store.remove_rows(&rows);
                if let Some(pending) = self.pending_sweep.as_mut().filter(|p| p.id == id) {
                    pending.rows = rows;
                    pending.deleted_logged = true;
                }
            }
            WalRecord::SweepCommit {
                id,
                now,
                rows,
                digest,
            } => {
                let certificate = DeletionCertificate {
                    sweep: id,
                    time: now,
                    rows,
                    digest,
                };
                self.journal_deletion(&certificate);
                self.audit.certify(certificate);
                if self.pending_sweep.as_ref().is_some_and(|p| p.id == id) {
                    self.pending_sweep = None;
                }
            }
            WalRecord::QuotaCharge {
                user,
                service,
                purpose,
                now,
            } => {
                // Rebuild the ledger even when quotas are disabled on this
                // node (a follower or a replay under a changed config): the
                // windowless fallback keeps counters from silently resetting.
                let config = self.config.quota.unwrap_or(QuotaConfig {
                    budget: u32::MAX,
                    window_secs: None,
                });
                self.quotas.charge(user, &service, purpose, now, config);
            }
            WalRecord::NewEpoch { epoch } => {
                self.replication_epoch = self.replication_epoch.max(epoch);
            }
            WalRecord::Notice { user, now, text } => {
                self.audit.notify(user, now, text);
            }
        }
        Ok(())
    }

    /// Appends a record for a mutation that was just applied. A no-op
    /// without a log; an append failure is counted (the in-memory state
    /// is ahead of the durable state until the next successful append),
    /// never silently swallowed.
    fn log(&mut self, record: WalRecord) {
        if let Some(tap) = self.record_tap.as_mut() {
            tap.push(record.clone());
        }
        let Some(wal) = self.wal.as_mut() else {
            return;
        };
        if wal.append(&record).is_err() {
            self.wal_append_failures += 1;
        }
    }

    // ---- replication hooks (see `crate::replication`) ------------------------

    /// Applies a record *and* logs it durably: the replication layer's
    /// write path for shipped frames, epoch fences and merge notices.
    pub(crate) fn record_and_log(&mut self, record: WalRecord) -> Result<(), WalError> {
        self.apply_record(record.clone())?;
        self.log(record);
        Ok(())
    }

    /// Starts cloning every logged record into the record tap.
    pub(crate) fn enable_record_tap(&mut self) {
        if self.record_tap.is_none() {
            self.record_tap = Some(Vec::new());
        }
    }

    /// Drains records logged since the last drain (empty when the tap is
    /// disabled).
    pub(crate) fn drain_record_tap(&mut self) -> Vec<WalRecord> {
        self.record_tap
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Diverts request-path decision audits into a node-local log, keeping
    /// the replicated audit a pure function of the record sequence.
    pub(crate) fn divert_read_audit(&mut self) {
        if self.read_audit_divert.is_none() {
            self.read_audit_divert = Some(AuditLog::new());
        }
    }

    /// The node-local served-decision audit, when diverted.
    pub(crate) fn served_audit(&self) -> Option<&AuditLog> {
        self.read_audit_divert.as_ref()
    }

    /// Routes one request-path decision audit: to the divert log when the
    /// node serves reads locally (replication), otherwise to the main
    /// audit log (the standalone default — behavior unchanged).
    fn record_decision(
        &mut self,
        now: Timestamp,
        user: UserId,
        service: Option<tippers_policy::ServiceId>,
        data: ConceptId,
        purpose: ConceptId,
        decision: &EnforcementDecision,
    ) {
        let sink = self.read_audit_divert.as_mut().unwrap_or(&mut self.audit);
        let entry = sink
            .record(now, user, service, data, purpose, decision)
            .clone();
        self.journal_decision(&entry);
    }

    /// Journals an audited decision onto the tamper-evident chain. The
    /// chain sees every decision this node makes, diverted or not: it is
    /// the node's own witness statement, not replicated state.
    fn journal_decision(&mut self, entry: &AuditEntry) {
        let payload = serde_json::to_string(&ChainEvent::Decision {
            entry: entry.clone(),
        })
        .expect("chain events serialize infallibly");
        self.audit_chain.append(payload);
        self.archive_audit_segments();
    }

    /// Journals a deletion certificate onto the tamper-evident chain.
    fn journal_deletion(&mut self, certificate: &DeletionCertificate) {
        let payload = serde_json::to_string(&ChainEvent::Deletion {
            certificate: certificate.clone(),
        })
        .expect("chain events serialize infallibly");
        self.audit_chain.append(payload);
        self.archive_audit_segments();
    }

    /// Seals every full [`SEGMENT_RECORDS`]-record run of the chain and
    /// archives the sealed segments through the WAL's log backend (where
    /// the fault plan can corrupt them and verification must notice). A
    /// non-durable BMS keeps its whole chain open in memory; archive
    /// write failures are counted, never silently swallowed.
    fn archive_audit_segments(&mut self) {
        if self.wal.is_none() {
            return;
        }
        for segment in self.audit_chain.seal(SEGMENT_RECORDS) {
            let name = format!("{ARCHIVE_PREFIX}{:010}.seg", segment.first_seq);
            let bytes =
                serde_json::to_string(&segment).expect("sealed segments serialize infallibly");
            let wal = self.wal.as_mut().expect("wal presence checked above");
            if wal.archive(&name, bytes.as_bytes()).is_err() {
                self.audit_archive_failures += 1;
            }
        }
    }

    /// The fail-closed answer of a replica that cannot prove its lag is
    /// within the configured staleness bound: every subject denied with
    /// [`crate::DecisionBasis::StaleReplica`], each denial audited. A
    /// stale replica never guesses from possibly-outdated settings.
    pub(crate) fn stale_response(&mut self, request: &DataRequest, now: Timestamp) -> DataResponse {
        let subjects = self.subjects_of(request, now);
        let mut results = Vec::with_capacity(subjects.len());
        for user in subjects {
            let decision = EnforcementDecision::stale_replica();
            self.record_decision(
                now,
                user,
                Some(request.service.clone()),
                request.data,
                request.purpose,
                &decision,
            );
            results.push(SubjectResult {
                user,
                decision,
                records: Vec::new(),
            });
        }
        DataResponse {
            results,
            degraded: true,
        }
    }

    /// Durably records a replicated user notification (e.g. an
    /// anti-entropy merge superseding this user's divergent setting
    /// choice): queued locally and logged as [`WalRecord::Notice`], so
    /// every replica replaying the record re-queues it and the user's
    /// IoTA is re-notified no matter which node it polls.
    pub(crate) fn record_notice(&mut self, user: UserId, now: Timestamp, text: String) {
        self.audit.notify(user, now, text.clone());
        self.log(WalRecord::Notice { user, now, text });
    }

    /// Highest durably recorded epoch fence ([`WalRecord::NewEpoch`]); 0
    /// for a node that never joined a replicated deployment.
    pub fn replication_epoch(&self) -> u64 {
        self.replication_epoch
    }

    /// Writes a full-state checkpoint and compacts the log: older
    /// segments are dropped once the checkpoint segment is durably
    /// published. A no-op for a non-durable BMS.
    ///
    /// # Errors
    ///
    /// [`WalError::Checkpoint`] when publication failed — the previous
    /// segments remain authoritative and nothing is lost.
    pub fn checkpoint(&mut self) -> Result<(), WalError> {
        if self.wal.is_none() {
            return Ok(());
        }
        let snapshot = self.snapshot();
        let (policies, next_policy_id) = self.policies.snapshot_parts();
        let record = WalRecord::Checkpoint {
            snapshot,
            policies,
            next_policy_id,
        };
        self.wal
            .as_mut()
            .expect("wal presence checked above")
            .checkpoint(&record)
    }

    /// True when mutations are being write-ahead logged.
    pub fn wal_enabled(&self) -> bool {
        self.wal.is_some()
    }

    /// Log appends that failed since open (mutations whose durability is
    /// not guaranteed).
    pub fn wal_append_failures(&self) -> u64 {
        self.wal_append_failures
    }

    /// Corrupt/torn-tail truncation events observed at recovery — the
    /// audit counter proving rejected bytes were never silently accepted.
    pub fn wal_truncations(&self) -> u64 {
        self.wal_truncations
    }

    /// Records appended to the log since open, single and group-committed
    /// (zero without a log).
    pub fn wal_appended_records(&self) -> u64 {
        self.wal.as_ref().map_or(0, Wal::appended_records)
    }

    /// Syncs the log has issued since open (zero without a log);
    /// [`Tippers::wal_appended_records`] divided by this is the
    /// group-commit amortization factor.
    pub fn wal_sync_count(&self) -> u64 {
        self.wal.as_ref().map_or(0, Wal::sync_count)
    }

    /// The BMS's health: [`HealthStatus::Degraded`] while an internal
    /// failure (e.g. an enforcement-engine rebuild failure) forces it to
    /// fail closed.
    pub fn health(&self) -> HealthStatus {
        self.health.status()
    }

    /// Why the BMS is degraded, if it is.
    pub fn health_reason(&self) -> Option<&str> {
        self.health.reason()
    }

    /// Lifetime count of healthy → degraded transitions.
    pub fn degraded_events(&self) -> u64 {
        self.health.degraded_events()
    }

    /// Observations lost to injected store-write failures.
    pub fn store_write_failures(&self) -> u64 {
        self.store_write_failures
    }

    /// The vocabulary in use.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// The spatial model in use.
    pub fn model(&self) -> &SpatialModel {
        &self.model
    }

    /// The observation store (read-only).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// The audit log (read-only).
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// Registers occupants (the building's user directory: group
    /// membership and device MACs).
    pub fn register_occupants(&mut self, occupants: &[Occupant]) {
        for o in occupants {
            self.groups.insert(o.user, o.group);
            self.macs.insert(o.user, o.mac);
        }
    }

    /// The group a user belongs to (visitors if unregistered).
    pub fn group_of(&self, user: UserId) -> UserGroup {
        self.groups
            .get(&user)
            .copied()
            .unwrap_or(UserGroup::Visitor)
    }

    // ---- policy administration (step 1) ------------------------------------

    /// Adds a building policy; returns its assigned id.
    pub fn add_policy(&mut self, policy: BuildingPolicy) -> PolicyId {
        let record = WalRecord::AddPolicy {
            policy: policy.clone(),
        };
        self.enforcer = None;
        let id = self.policies.add(policy);
        self.log(record);
        id
    }

    /// Removes a policy.
    pub fn remove_policy(&mut self, id: PolicyId) -> bool {
        self.enforcer = None;
        let removed = self.policies.remove(id);
        if removed {
            self.log(WalRecord::RemovePolicy { policy: id });
        }
        removed
    }

    /// All policies.
    pub fn policies(&self) -> &[BuildingPolicy] {
        self.policies.all()
    }

    /// The policy set plus its id-allocator position, for a sharded
    /// router rebuilding its broadcast mirror after a durable reopen.
    pub(crate) fn policy_parts(&self) -> (Vec<BuildingPolicy>, u64) {
        self.policies.snapshot_parts()
    }

    /// The preference id-allocator position, for a sharded router
    /// rebuilding its assignment counter after a durable reopen — and
    /// the sharded write path's commit detector: a router-assigned id
    /// below this position has definitely been applied here.
    pub(crate) fn preference_next_id(&self) -> u64 {
        self.preferences.next_id()
    }

    /// The policy id-allocator position (the sharded router's commit
    /// detector for broadcast policy adds on a quarantined shard).
    pub(crate) fn policy_next_id(&self) -> u64 {
        self.policies.next_id()
    }

    /// How many preferences a user has stored (shard-runtime test
    /// observability: proves an indeterminate write resolved to exactly
    /// one application).
    #[cfg(test)]
    pub(crate) fn preference_count_for(&self, user: UserId) -> usize {
        self.preferences.for_user(user).len()
    }

    /// Looks up one policy.
    pub fn policy(&self, id: PolicyId) -> Option<&BuildingPolicy> {
        self.policies.get(id)
    }

    /// Publishes all policies to a registry (step 4), retrying transient
    /// registry failures under [`TippersConfig::publish_retry`]'s bounded
    /// backoff/deadline budget. Each attempt is all-or-nothing: an injected
    /// [`FaultPoint::PolicyPublish`] failure fires before anything reaches
    /// the registry, so retries never publish duplicates.
    ///
    /// # Errors
    ///
    /// Registry validation failures are permanent and propagate without
    /// retry; [`RegistryError::Unreachable`] surfaces once the retry budget
    /// is spent.
    pub fn publish_policies(
        &self,
        bus: &mut DiscoveryBus,
        registry: RegistryId,
        now: Timestamp,
    ) -> Result<usize, RegistryError> {
        self.config
            .publish_retry
            .run(|_attempt| {
                if self
                    .config
                    .fault_plan
                    .should_fail(FaultPoint::PolicyPublish)
                {
                    return Err(RegistryError::Unreachable(registry));
                }
                self.policies
                    .publish_all(
                        &self.ontology,
                        &self.model,
                        bus,
                        registry,
                        now,
                        self.config.advertisement_ttl_secs,
                    )
                    .map(|ads| ads.len())
            })
            .map(|(n, _report)| n)
            .map_err(tippers_resilience::RetryError::into_inner)
    }

    // ---- preference intake (step 8) -----------------------------------------

    /// Stores a preference submitted by a user's IoTA; detects conflicts
    /// with mandatory policies and queues the notification (§III.B).
    pub fn submit_preference(&mut self, pref: UserPreference, now: Timestamp) -> PreferenceId {
        let record = WalRecord::SubmitPreference {
            preference: pref.clone(),
            now,
        };
        let id = self.submit_preference_inner(pref, now);
        self.log(record);
        id
    }

    fn submit_preference_inner(&mut self, pref: UserPreference, now: Timestamp) -> PreferenceId {
        let mut stored = pref.clone();
        stored.id = self.preferences.add(pref);
        self.finish_preference_intake(stored, now)
    }

    /// Stores a preference whose id the shard router already allocated:
    /// the id is kept verbatim (in memory, in the WAL record, and across
    /// replay), which keeps decision bases byte-identical between the
    /// sharded and unsharded engines.
    pub fn submit_preference_assigned(
        &mut self,
        pref: UserPreference,
        now: Timestamp,
    ) -> PreferenceId {
        let record = WalRecord::SubmitPreferenceAssigned {
            preference: pref.clone(),
            now,
        };
        let id = self.submit_preference_assigned_inner(pref, now);
        self.log(record);
        id
    }

    fn submit_preference_assigned_inner(
        &mut self,
        pref: UserPreference,
        now: Timestamp,
    ) -> PreferenceId {
        let stored = pref.clone();
        self.preferences.insert_assigned(pref);
        self.finish_preference_intake(stored, now)
    }

    /// Conflict-checks a just-stored preference against every policy and
    /// queues the notifications (§III.B). Returns the stored id.
    fn finish_preference_intake(&mut self, stored: UserPreference, now: Timestamp) -> PreferenceId {
        let user = stored.user;
        self.enforcer = None;
        for policy in self.policies.all() {
            if let Some(conflict) = conflict::classify(
                policy,
                &stored,
                &self.ontology,
                &self.model,
                self.config.strategy,
            ) {
                self.audit.notify(user, now, conflict.notice.clone());
            }
        }
        stored.id
    }

    /// Applies an IoTA setting choice against a policy's advertised
    /// settings (Figure 4 → step 8).
    ///
    /// # Errors
    ///
    /// [`SettingsError`] when the policy, setting, or option is unknown.
    pub fn apply_setting_choice(
        &mut self,
        user: UserId,
        policy: PolicyId,
        setting_key: &str,
        option_index: usize,
    ) -> Result<PreferenceId, SettingsError> {
        let id = self.apply_setting_choice_inner(user, policy, setting_key, option_index)?;
        self.log(WalRecord::SettingChoice {
            user,
            policy,
            setting_key: setting_key.to_string(),
            option_index,
        });
        Ok(id)
    }

    fn apply_setting_choice_inner(
        &mut self,
        user: UserId,
        policy: PolicyId,
        setting_key: &str,
        option_index: usize,
    ) -> Result<PreferenceId, SettingsError> {
        let policy = self
            .policies
            .get(policy)
            .ok_or_else(|| SettingsError::UnknownSetting {
                key: format!("{policy}"),
            })?
            .clone();
        self.enforcer = None;
        let (id, _) =
            self.preferences
                .apply_setting_choice(user, &policy, setting_key, option_index)?;
        Ok(id)
    }

    /// [`Tippers::apply_setting_choice`], with a router-assigned id for
    /// the derived preference (see [`Tippers::submit_preference_assigned`]).
    ///
    /// # Errors
    ///
    /// [`SettingsError`] when the policy, setting, or option is unknown.
    pub fn apply_setting_choice_assigned(
        &mut self,
        user: UserId,
        policy: PolicyId,
        setting_key: &str,
        option_index: usize,
        id: PreferenceId,
    ) -> Result<PreferenceId, SettingsError> {
        let got =
            self.apply_setting_choice_assigned_inner(user, policy, setting_key, option_index, id)?;
        self.log(WalRecord::SettingChoiceAssigned {
            user,
            policy,
            setting_key: setting_key.to_string(),
            option_index,
            id,
        });
        Ok(got)
    }

    fn apply_setting_choice_assigned_inner(
        &mut self,
        user: UserId,
        policy: PolicyId,
        setting_key: &str,
        option_index: usize,
        id: PreferenceId,
    ) -> Result<PreferenceId, SettingsError> {
        let policy = self
            .policies
            .get(policy)
            .ok_or_else(|| SettingsError::UnknownSetting {
                key: format!("{policy}"),
            })?
            .clone();
        self.enforcer = None;
        let (id, _) = self.preferences.apply_setting_choice_assigned(
            user,
            &policy,
            setting_key,
            option_index,
            id,
        )?;
        Ok(id)
    }

    /// All stored preferences.
    pub fn preferences(&self) -> &[UserPreference] {
        self.preferences.all()
    }

    /// Retroactive enforcement: deletes already-stored rows that a newly
    /// submitted *unconditional* deny preference covers, unless a mandatory
    /// policy pins them (Policy 2's log survives even a full opt-out).
    ///
    /// Returns the number of rows deleted. This is the strongest of the
    /// paper's *when* options — enforcement applied to storage after the
    /// fact, not just to future capture and sharing.
    pub fn apply_retroactively(&mut self, pref_id: PreferenceId) -> usize {
        let purged = self.apply_retroactively_inner(pref_id);
        if purged > 0 {
            self.log(WalRecord::Retroactive {
                preference: pref_id,
            });
        }
        purged
    }

    fn apply_retroactively_inner(&mut self, pref_id: PreferenceId) -> usize {
        let Some(pref) = self
            .preferences
            .all()
            .iter()
            .find(|p| p.id == pref_id)
            .cloned()
        else {
            return 0;
        };
        if pref.effect != Effect::Deny || !pref.scope.condition.is_always() {
            return 0;
        }
        let Some(category) = pref.scope.data else {
            return 0;
        };
        // Categories pinned by a mandatory policy stay (resolution:
        // PolicyPrevails); under other strategies the preference wins.
        if self.config.strategy == ResolutionStrategy::PolicyPrevails {
            let pinned = self.policies.all().iter().any(|p| {
                p.is_required()
                    && conflict::data_overlaps(p.data, category, &self.ontology)
                    && p.subjects.may_match_user(pref.user)
            });
            if pinned {
                return 0;
            }
        }
        // Purge the category itself and everything it can be inferred
        // from is NOT purged (raw data may serve other flows); exactly the
        // rows whose own category falls under the preference go.
        self.store
            .purge_subject(&self.ontology, pref.user, category)
    }

    /// Every (policy, preference) conflict in the current state.
    pub fn detect_conflicts(&self) -> Vec<Conflict> {
        let index = conflict::ConflictIndex::build(self.policies.all(), &self.ontology);
        index.detect(
            self.policies.all(),
            self.preferences.all(),
            &self.ontology,
            &self.model,
            self.config.strategy,
        )
    }

    /// Pending notifications for a user's IoTA (drained on read).
    pub fn take_notifications(&mut self, user: UserId) -> Vec<UserNotification> {
        self.audit.take_notifications(user)
    }

    // ---- ingest (steps 2–3) --------------------------------------------------

    /// Ingests captured observations, applying storage-time enforcement:
    /// a row is stored only when some building policy authorizes storing
    /// its category for its subject *and* the subject's preferences do not
    /// deny that policy's flow; retention comes from the authorizing
    /// policy (shortest wins among authorizers).
    ///
    /// Returns `(stored, dropped)` counts.
    pub fn ingest(&mut self, observations: &[Observation]) -> (usize, usize) {
        self.ingest_with_mask(observations, |_| true)
    }

    /// [`Tippers::ingest`] restricted to the observations this engine
    /// *owns*: every observation still feeds the sensor state (occupancy
    /// conditions must see the whole building, exactly as the unsharded
    /// engine does), but only owned observations are enforced, stored and
    /// counted. The sharded runtime broadcasts each batch to every shard
    /// with that shard's ownership mask.
    pub(crate) fn ingest_with_mask(
        &mut self,
        observations: &[Observation],
        owned: impl Fn(usize) -> bool,
    ) -> (usize, usize) {
        self.ensure_enforcer();
        let mut stored = 0usize;
        let mut dropped = 0usize;
        // Ingest is logged *physically*: the record carries the rows that
        // survived enforcement and fault injection, so replay is a pure
        // data load independent of sensor state or the fault plan.
        let mut batch: Vec<StoredRow> = Vec::new();
        for (index, obs) in observations.iter().enumerate() {
            self.sensors.observe(obs);
            if !owned(index) {
                continue;
            }
            let category = obs.payload.category(&self.ontology);
            match self.storage_grant(obs, category) {
                Some(retention) => {
                    // An injected store-write failure loses the row; it is
                    // counted (never silently swallowed) so experiments can
                    // attribute downstream misses to storage loss.
                    if self.config.fault_plan.should_fail(FaultPoint::StoreWrite) {
                        self.store_write_failures += 1;
                        dropped += 1;
                    } else {
                        let row = StoredRow {
                            observation: obs.clone(),
                            category,
                            policy: retention.0,
                            stored_at: obs.timestamp,
                            expires_at: retention
                                .1
                                .map(|secs| Timestamp(obs.timestamp.seconds() + secs)),
                        };
                        if self.wal.is_some() {
                            batch.push(row.clone());
                        }
                        self.store.insert_row(row);
                        stored += 1;
                    }
                }
                None => dropped += 1,
            }
        }
        if !batch.is_empty() {
            self.log(WalRecord::Ingest { rows: batch });
        }
        (stored, dropped)
    }

    /// Finds the authorizing policy for storing one observation. Returns
    /// the policy id and its retention (seconds), or `None` to drop.
    fn storage_grant(
        &mut self,
        obs: &Observation,
        category: ConceptId,
    ) -> Option<(PolicyId, Option<i64>)> {
        let mut grant: Option<(PolicyId, Option<i64>)> = None;
        let candidates: Vec<BuildingPolicy> = self
            .policies
            .all()
            .iter()
            .filter(|p| p.actions.contains(DataAction::Store))
            .cloned()
            .collect();
        for policy in candidates {
            let applies_space = self.model.contains(policy.space, obs.space);
            if !applies_space {
                continue;
            }
            // Storage authorization is subsumption-directional: the
            // observation's category must fall under the policy's declared
            // collection category (see `policy_applies`).
            if !self.ontology.data.is_a(category, policy.data) {
                continue;
            }
            let authorized = match obs.subject {
                None => {
                    // Subjectless environmental data: the policy's own
                    // condition must hold, nothing else.
                    let ctx = tippers_policy::ConditionContext {
                        model: &self.model,
                        time: obs.timestamp,
                        subject_space: Some(obs.space),
                        requester_space: None,
                        room_occupied: self.sensors.room_occupied(obs.space, obs.timestamp),
                    };
                    policy.condition.is_satisfied(&ctx)
                }
                Some(user) => {
                    let flow = RequestFlow {
                        subject: user,
                        subject_group: self.group_of(user),
                        data: category,
                        purpose: policy.purpose,
                        service: policy.service.clone(),
                        action: DataAction::Store,
                        time: obs.timestamp,
                        subject_space: Some(obs.space),
                        requester_space: None,
                        room_occupied: self.sensors.room_occupied(obs.space, obs.timestamp),
                    };
                    // Fail closed: with no enforcement engine the row is
                    // dropped rather than stored unvetted.
                    let decision = match self.enforcer.as_ref() {
                        Some(e) => e.decide(&flow, &self.ontology, &self.model),
                        None => EnforcementDecision::fail_closed(),
                    };
                    decision.permits()
                }
            };
            if authorized {
                let retention = policy.retention.map(|r| r.as_seconds());
                grant = Some(match grant {
                    None => (policy.id, retention),
                    Some((prev_id, prev_ret)) => {
                        // Shortest retention among authorizers wins.
                        match (prev_ret, retention) {
                            (None, Some(r)) => (policy.id, Some(r)),
                            (Some(a), Some(b)) if b < a => (policy.id, Some(b)),
                            _ => (prev_id, prev_ret),
                        }
                    }
                });
            }
        }
        grant
    }

    /// Ingests directly from a simulator trace and synchronizes
    /// capture-time suppression afterwards.
    pub fn ingest_from(
        &mut self,
        sim: &mut BuildingSimulator,
        observations: &[Observation],
    ) -> (usize, usize) {
        let counts = self.ingest(observations);
        self.sync_capture_settings(sim);
        counts
    }

    // ---- batched, backpressured ingest (see `crate::ingest`) ----------------

    /// Ingests a batch of captured observations through the backpressured
    /// capture pipeline: per-zone capture filters (derived from the same
    /// policy + preference corpus the request path enforces), bounded
    /// per-zone mailboxes, the overload degradation ladder, and one WAL
    /// group commit amortizing fsync across the whole batch.
    ///
    /// Fail-closed: an observation that cannot be filtered, logged, or
    /// admitted is dropped *and audited* ([`Tippers::capture_drops`]),
    /// never stored raw. Observations the mailboxes cannot hold come back
    /// in [`IngestReport::rejected`] — the producer's backpressure signal
    /// (retry capped, or drop-and-account; never buffer without bound).
    ///
    /// Without [`TippersConfig::ingest`] this falls through to the
    /// one-at-a-time [`Tippers::ingest`] path.
    pub fn ingest_batched(&mut self, observations: &[Observation], now_ms: i64) -> IngestReport {
        if self.ingest.is_none() {
            let (stored, _dropped) = self.ingest(observations);
            let mut report = IngestReport::empty();
            report.stored = stored;
            return report;
        }
        self.ensure_enforcer();
        let mut pipeline = self.ingest.take().expect("checked above");
        let filter = CaptureFilter::derive(
            &self.ontology,
            self.policies.all(),
            self.preferences.all(),
            &self.macs,
        );
        let mut report = IngestReport::empty();

        // Admission: bounded per-zone mailboxes; a full zone pushes back.
        for obs in observations {
            if let Err(rejected) = pipeline.admit(now_ms, obs.clone()) {
                let category = rejected.payload.category(&self.ontology);
                pipeline.note_drop(&rejected, category, CaptureDropReason::Backpressure);
                report.rejected.push(rejected);
            }
        }

        // Drain in capture order, each observation under its zone's
        // ladder rung, through the capture filter and the storage-time
        // enforcement decision the one-at-a-time path makes.
        let work = pipeline.drain(now_ms, &self.model, &filter);
        let mut rows: Vec<StoredRow> = Vec::new();
        for (rung, mut obs) in work {
            self.sensors.observe(&obs);
            let category = obs.payload.category(&self.ontology);
            if filter.suppresses(&obs) {
                pipeline.note_drop(&obs, category, CaptureDropReason::CaptureFilter);
                continue;
            }
            if rung >= LadderRung::SuppressNonEssential
                && !filter.essential_category(&self.ontology, &obs)
            {
                pipeline.note_drop(&obs, category, CaptureDropReason::Degraded);
                report.suppressed += 1;
                continue;
            }
            if rung >= LadderRung::CoarsenAtCapture && coarsen_at_capture(&mut obs) {
                pipeline.note_coarsened();
                report.coarsened += 1;
            }
            match self.storage_grant(&obs, category) {
                Some((policy, retention)) => {
                    if self.config.fault_plan.should_fail(FaultPoint::StoreWrite) {
                        self.store_write_failures += 1;
                        pipeline.note_drop(&obs, category, CaptureDropReason::StoreFault);
                    } else {
                        rows.push(StoredRow {
                            category,
                            policy,
                            stored_at: obs.timestamp,
                            expires_at: retention
                                .map(|secs| Timestamp(obs.timestamp.seconds() + secs)),
                            observation: obs,
                        });
                    }
                }
                None => {
                    pipeline.note_drop(&obs, category, CaptureDropReason::Unauthorized);
                    report.unauthorized += 1;
                }
            }
        }

        // Group commit: one fsync for the whole chunk sequence. A commit
        // whose durability cannot be proven (fsync stall, append failure)
        // makes the batch unadmitted — rows are dropped and audited, never
        // stored on an unproven log.
        let batch_max = pipeline.config().batch_max.max(1);
        report.synced = true;
        if let Some(wal) = self.wal.as_mut().filter(|_| !rows.is_empty()) {
            let records: Vec<WalRecord> = rows
                .chunks(batch_max)
                .map(|chunk| WalRecord::Ingest {
                    rows: chunk.to_vec(),
                })
                .collect();
            let plan = self.config.fault_plan.clone();
            let outcome = wal.append_batch(&records, &plan);
            match outcome {
                Ok(commit) if commit.synced => {
                    pipeline.note_group_commit();
                    if let Some(tap) = self.record_tap.as_mut() {
                        tap.extend(records);
                    }
                }
                Ok(_) => report.synced = false,
                Err(_) => {
                    self.wal_append_failures += 1;
                    report.synced = false;
                }
            }
        }
        if report.synced {
            report.stored = rows.len();
            pipeline.note_stored(rows.len() as u64);
            for row in rows {
                self.store.insert_row(row);
            }
        } else {
            report.unadmitted = rows.len();
            for row in &rows {
                pipeline.note_drop(
                    &row.observation,
                    row.category,
                    CaptureDropReason::DurabilityLost,
                );
            }
        }
        self.ingest = Some(pipeline);
        report
    }

    /// Lifetime counters of the batched capture pipeline, when configured.
    pub fn ingest_stats(&self) -> Option<IngestStats> {
        self.ingest.as_ref().map(IngestPipeline::stats)
    }

    /// The audited capture-drop trail (empty without a pipeline): every
    /// observation the pipeline refused to store, with the reason.
    pub fn capture_drops(&self) -> &[CaptureDrop] {
        self.ingest.as_ref().map_or(&[], IngestPipeline::drops)
    }

    /// The batched capture pipeline, when configured (mailbox statistics,
    /// ladder occupancy).
    pub fn ingest_pipeline(&self) -> Option<&IngestPipeline> {
        self.ingest.as_ref()
    }

    /// Pushes capture-time suppression (unconditional location denials) to
    /// the simulator's network devices.
    pub fn sync_capture_settings(&mut self, sim: &mut BuildingSimulator) {
        let suppressed =
            SensorManager::capture_suppression(&self.ontology, self.preferences.all(), &self.macs);
        SensorManager::sync_suppression(&self.ontology, &suppressed, sim);
    }

    /// Policy 1's actuation loop output.
    pub fn thermostat_commands(&self, floors: &[SpaceId], now: Timestamp) -> Vec<HvacCommand> {
        self.sensors.thermostat_commands(&self.model, floors, now)
    }

    /// The live occupancy belief for a room (from motion/camera signals;
    /// `None` when unknown or stale).
    pub fn room_occupied(&self, space: SpaceId, now: Timestamp) -> Option<bool> {
        self.sensors.room_occupied(space, now)
    }

    /// Runs retention garbage collection. Returns rows deleted.
    ///
    /// The legacy single-record path: deletions are logged as one logical
    /// [`WalRecord::Gc`] with no begin/commit bracket and no certificate.
    /// The provable path is [`Tippers::sweep`].
    pub fn gc(&mut self, now: Timestamp) -> usize {
        let removed = self.store.gc(now);
        if removed > 0 {
            self.log(WalRecord::Gc { now });
        }
        removed
    }

    // ---- enforced retention (provable deletion) ------------------------------

    /// Runs one provable retention sweep: expired rows are deleted and the
    /// deletion bracketed in the log ([`WalRecord::SweepBegin`], the
    /// physical [`WalRecord::SweepDelete`], [`WalRecord::SweepCommit`]),
    /// and a [`DeletionCertificate`] is recorded in the audit log and
    /// journaled on the tamper-evident chain. Crash-safe: recovery
    /// finishes a sweep interrupted at any record boundary, so every
    /// expired row is deleted exactly once with a matching certificate.
    /// Returns rows deleted.
    pub fn sweep(&mut self, now: Timestamp) -> usize {
        self.finish_pending_sweep();
        self.last_sweep_at = Some(now);
        let rows = self.store.gc_collect(now);
        if rows.is_empty() {
            return 0;
        }
        let id = self.next_sweep_id;
        self.next_sweep_id += 1;
        let count = rows.len();
        self.log(WalRecord::SweepBegin { id, now });
        self.log(WalRecord::SweepDelete {
            id,
            rows: rows.clone(),
        });
        self.pending_sweep = Some(PendingSweep {
            id,
            now,
            rows,
            deleted_logged: true,
        });
        if self.config.fault_plan.should_fail(FaultPoint::SweepCrash) {
            // Injected crash window: the commit record never lands. The
            // pending sweep stays open for recovery (or the next sweep)
            // to finish exactly once.
            return count;
        }
        self.commit_pending_sweep();
        count
    }

    /// True while a sweep has begun but not committed.
    pub fn sweep_in_progress(&self) -> bool {
        self.pending_sweep.is_some()
    }

    /// Fires the configured virtual-time sweep schedule
    /// ([`TippersConfig::sweep_every_secs`]): sweeps when at least one
    /// period of virtual time has passed since the last sweep. Followers
    /// never sweep — they replay the primary's shipped sweep records.
    fn maybe_sweep(&mut self, now: Timestamp) {
        let Some(every) = self.config.sweep_every_secs else {
            return;
        };
        if self.serve_follower {
            return;
        }
        let due = self
            .last_sweep_at
            .is_none_or(|last| now.seconds().saturating_sub(last.seconds()) >= every);
        if due {
            self.sweep(now);
        }
    }

    /// Finishes a sweep interrupted between its WAL records: if the
    /// deleted-rows record never landed the expired rows are re-collected
    /// (replay reproduces the interrupted run's store state, so the rows —
    /// and therefore the certificate digest — come out identical), then
    /// the commit follows.
    fn finish_pending_sweep(&mut self) {
        let Some(pending) = self.pending_sweep.as_ref() else {
            return;
        };
        if !pending.deleted_logged {
            let (id, now) = (pending.id, pending.now);
            let rows = self.store.gc_collect(now);
            if let Some(p) = self.pending_sweep.as_mut() {
                p.rows = rows.clone();
                p.deleted_logged = true;
            }
            self.log(WalRecord::SweepDelete { id, rows });
        }
        self.commit_pending_sweep();
    }

    /// Commits the pending sweep: derives the deletion digest, records
    /// and journals the certificate, and logs [`WalRecord::SweepCommit`].
    fn commit_pending_sweep(&mut self) {
        let Some(pending) = self.pending_sweep.take() else {
            return;
        };
        let digest = deletion_digest(pending.id, pending.now, &pending.rows);
        let certificate = DeletionCertificate {
            sweep: pending.id,
            time: pending.now,
            rows: pending.rows.len() as u64,
            digest: digest.clone(),
        };
        self.journal_deletion(&certificate);
        self.audit.certify(certificate);
        self.log(WalRecord::SweepCommit {
            id: pending.id,
            now: pending.now,
            rows: pending.rows.len() as u64,
            digest,
        });
    }

    /// All deletion certificates, oldest first.
    pub fn deletion_certificates(&self) -> &[DeletionCertificate] {
        self.audit.certificates()
    }

    // ---- accountability (tamper-evident audit) -------------------------------

    /// The node-local tamper-evident audit chain (read-only).
    pub fn audit_chain(&self) -> &AuditChain {
        &self.audit_chain
    }

    /// Verifies the chain's open (unsealed) run: sequence continuity,
    /// linkage, and every record MAC. Returns records checked.
    ///
    /// # Errors
    ///
    /// The first [`ChainFault`] found.
    pub fn verify_audit_chain(&self) -> Result<u64, ChainFault> {
        self.audit_chain.verify()
    }

    /// Loads every archived sealed segment from the log backend and
    /// verifies the full lineage: each segment internally, segment-to-
    /// segment linkage from genesis, and continuity with the live chain
    /// (so truncating the archive's tail is detected too). Returns
    /// archived records checked.
    ///
    /// # Errors
    ///
    /// [`ChainFault::Corrupt`] for a segment that no longer parses, or
    /// the first lineage/MAC/root fault found.
    pub fn verify_audit_archive(&self) -> Result<u64, ChainFault> {
        let Some(wal) = self.wal.as_ref() else {
            return self.audit_chain.verify_archive(&[]);
        };
        let archived = wal
            .archived(ARCHIVE_PREFIX)
            .map_err(|_| ChainFault::Corrupt {
                name: ARCHIVE_PREFIX.to_owned(),
            })?;
        let mut segments = Vec::with_capacity(archived.len());
        for (name, bytes) in archived {
            let parsed = std::str::from_utf8(&bytes)
                .ok()
                .and_then(|text| serde_json::from_str::<SealedSegment>(text).ok());
            match parsed {
                Some(segment) => segments.push(segment),
                None => return Err(ChainFault::Corrupt { name }),
            }
        }
        segments.sort_by_key(|s| s.first_seq);
        self.audit_chain.verify_archive(&segments)
    }

    /// Sealed-segment archive writes that failed since open.
    pub fn audit_archive_failures(&self) -> u64 {
        self.audit_archive_failures
    }

    // ---- disclosure quotas ---------------------------------------------------

    /// Budget units `(user, service, purpose)` has consumed in the window
    /// containing `now` (0 when quotas are disabled).
    pub fn quota_used(
        &self,
        user: UserId,
        service: &ServiceId,
        purpose: ConceptId,
        now: Timestamp,
    ) -> u32 {
        self.config.quota.map_or(0, |config| {
            self.quotas.used(user, service, purpose, now, config)
        })
    }

    /// Quota charges whose durable record was dropped — each one rolled
    /// back and its request denied fail-closed.
    pub fn quota_charge_drops(&self) -> u64 {
        self.quota_charge_drops
    }

    /// Marks this node a replication follower (or primary again): a
    /// follower serves reads check-only — it never originates quota
    /// charges or sweeps; its durable state moves only through shipped
    /// records.
    pub(crate) fn set_serve_follower(&mut self, follower: bool) {
        self.serve_follower = follower;
    }

    /// Applies the disclosure budget to one subject's decision on the
    /// release path: exhausted budgets — and charges whose durable record
    /// was dropped — turn a permit into a fail-closed
    /// [`crate::DecisionBasis::QuotaExceeded`] denial, which is audited
    /// like any other decision.
    fn apply_quota(
        &mut self,
        user: UserId,
        request: &DataRequest,
        now: Timestamp,
        decision: EnforcementDecision,
    ) -> EnforcementDecision {
        let Some(config) = self.config.quota else {
            return decision;
        };
        if !decision.permits() {
            return decision;
        }
        if self
            .quotas
            .exhausted(user, &request.service, request.purpose, now, config)
        {
            return EnforcementDecision::quota_exceeded();
        }
        if self.serve_follower {
            // Followers check but never charge: the primary's shipped
            // QuotaCharge records drive this ledger.
            return decision;
        }
        if self
            .config
            .fault_plan
            .should_fail(FaultPoint::QuotaCounterDrop)
        {
            // The durable charge was dropped before it could land: deny
            // rather than disclose against an uncharged budget.
            self.quota_charge_drops += 1;
            return EnforcementDecision::quota_exceeded();
        }
        self.quotas
            .charge(user, &request.service, request.purpose, now, config);
        let failures_before = self.wal_append_failures;
        self.log(WalRecord::QuotaCharge {
            user,
            service: request.service.clone(),
            purpose: request.purpose,
            now,
        });
        if self.wal_append_failures > failures_before {
            // The charge is in memory but not durable: roll it back and
            // fail closed — an uncharged counter must mean an undisclosed
            // row, never the other way around.
            self.quotas
                .rollback(user, &request.service, request.purpose);
            self.quota_charge_drops += 1;
            return EnforcementDecision::quota_exceeded();
        }
        decision
    }

    // ---- snapshot & recovery -------------------------------------------------

    /// Captures the BMS's durable state (store, preferences, audit log) for
    /// crash recovery. Policies, ontology, and spatial model are
    /// administrative configuration the operator re-applies on startup and
    /// are not included.
    pub fn snapshot(&self) -> crate::Snapshot {
        let (preferences, next_preference_id) = self.preferences.snapshot_parts();
        crate::Snapshot {
            version: crate::SNAPSHOT_VERSION,
            store: self.store.clone(),
            preferences,
            next_preference_id,
            audit: self.audit.clone(),
            quotas: self.quotas.clone(),
        }
    }

    /// Rebuilds a BMS from a snapshot taken by [`Tippers::snapshot`]. The
    /// caller supplies the administrative configuration (ontology, model,
    /// config) and re-adds policies afterwards, mirroring a real restart.
    ///
    /// # Errors
    ///
    /// [`crate::SnapshotError::UnsupportedVersion`] for a foreign format,
    /// [`crate::SnapshotError::Inconsistent`] if the snapshot's id
    /// allocator trails its own preferences.
    pub fn from_snapshot(
        ontology: Ontology,
        model: SpatialModel,
        config: TippersConfig,
        snapshot: crate::Snapshot,
    ) -> Result<Tippers, crate::SnapshotError> {
        let mut bms = Tippers::new(ontology, model, config);
        bms.restore_durable_state(snapshot)?;
        Ok(bms)
    }

    /// Validates a snapshot and installs its durable state (store,
    /// preferences, audit), invalidating the enforcement engine. Shared
    /// by [`Tippers::from_snapshot`] and checkpoint replay.
    fn restore_durable_state(
        &mut self,
        snapshot: crate::Snapshot,
    ) -> Result<(), crate::SnapshotError> {
        snapshot.check_version()?;
        if let Some(bad) = snapshot
            .preferences
            .iter()
            .find(|p| p.id.0 >= snapshot.next_preference_id)
        {
            return Err(crate::SnapshotError::Inconsistent(format!(
                "preference {} is at or above the id allocator ({})",
                bad.id, snapshot.next_preference_id
            )));
        }
        self.store = snapshot.store;
        self.preferences =
            PreferenceManager::from_parts(snapshot.preferences, snapshot.next_preference_id);
        self.audit = snapshot.audit;
        self.quotas = snapshot.quotas;
        self.enforcer = None;
        Ok(())
    }

    // ---- service requests (steps 9–10) ---------------------------------------

    /// Handles a service's data request, enforcing per-subject decisions.
    ///
    /// When admission control is configured ([`TippersConfig::admission`])
    /// the request first passes a priority-classed gate: expired deadlines
    /// and shed requests are answered *fail-closed* — every subject denied
    /// with [`crate::DecisionBasis::Overload`] and audited — and Emergency
    /// traffic is never shed. The brownout ladder then bounds how much
    /// work an admitted request may do (coarse answers, cached answers).
    pub fn handle_request(&mut self, request: &DataRequest, now: Timestamp) -> DataResponse {
        let now_ms = ms_from_secs(now.seconds());
        // Stage 1: expired work is dropped at the door, not processed.
        if request.deadline.is_some_and(|d| d < now) {
            if let Some(ctrl) = self.admission.as_mut() {
                ctrl.record_external_shed(request.priority);
            }
            return self.shed_response(request, now);
        }
        // Stage 2: priority-classed admission + brownout ladder.
        let mut admitted = false;
        let mut level = BrownoutLevel::Normal;
        if let Some(ctrl) = self.admission.as_mut() {
            let load = ctrl.load(now_ms);
            let previous = self.brownout.level();
            level = self.brownout.observe(now_ms, load);
            if level > previous {
                self.health
                    .mark_degraded(format!("brownout escalated to {level}"));
            } else if level == BrownoutLevel::Normal
                && previous > BrownoutLevel::Normal
                && self.enforcer.is_some()
            {
                self.health.mark_recovered();
            }
            if ctrl.admit(request.priority, now_ms, level).is_err() {
                return self.shed_response(request, now);
            }
            admitted = true;
        }
        // Stage 3: the retention schedule rides the request path (the only
        // place virtual time flows through a live BMS).
        self.maybe_sweep(now);
        self.ensure_enforcer();
        let subjects = self.subjects_of(request, now);
        // Virtual cost per subject: lets the deadline expire *mid-request*,
        // so a long fan-out is abandoned partway instead of finishing late.
        let per_subject_ms = self
            .admission
            .as_ref()
            .map_or(0.0, AdmissionController::service_time_ms);
        let mut results = Vec::with_capacity(subjects.len());
        for (i, user) in subjects.into_iter().enumerate() {
            let stage_ms = now_ms + (per_subject_ms * i as f64) as i64;
            let expired = request
                .deadline
                .is_some_and(|d| ms_from_secs(d.seconds()) < stage_ms);
            // Fail closed: if the engine could not be built, every subject
            // is denied with an explicit InternalError audit record; work
            // reached past its deadline is denied as Overload.
            let decision = if expired {
                EnforcementDecision::shed_overload()
            } else {
                match self.enforcer.as_ref() {
                    Some(e) => {
                        let flow = RequestFlow {
                            subject: user,
                            subject_group: self.group_of(user),
                            data: request.data,
                            purpose: request.purpose,
                            service: Some(request.service.clone()),
                            action: DataAction::Share,
                            time: now,
                            subject_space: self.current_space_of(user, now),
                            requester_space: request.requester_space,
                            room_occupied: None,
                        };
                        e.decide(&flow, &self.ontology, &self.model)
                    }
                    None => EnforcementDecision::fail_closed(),
                }
            };
            // The disclosure budget gates the release *before* the audit
            // record, so an exhausted budget is audited as the
            // QuotaExceeded denial it produced.
            let decision = self.apply_quota(user, request, now, decision);
            self.record_decision(
                now,
                user,
                Some(request.service.clone()),
                request.data,
                request.purpose,
                &decision,
            );
            let records = if decision.permits() {
                self.release_under_brownout(user, request, &decision, level)
            } else {
                Vec::new()
            };
            results.push(SubjectResult {
                user,
                decision,
                records,
            });
        }
        if admitted {
            if let Some(ctrl) = self.admission.as_mut() {
                ctrl.complete(now_ms);
            }
        }
        DataResponse {
            results,
            degraded: self.health.is_degraded(),
        }
    }

    /// Resolves a request's subject selector to concrete users.
    fn subjects_of(&self, request: &DataRequest, now: Timestamp) -> Vec<UserId> {
        match &request.subjects {
            SubjectSelector::One(u) => vec![*u],
            SubjectSelector::All => {
                let mut v: Vec<UserId> = self.groups.keys().copied().collect();
                v.sort();
                v
            }
            SubjectSelector::InSpace(space) => {
                let mut v: Vec<UserId> = self
                    .groups
                    .keys()
                    .copied()
                    .filter(|&u| {
                        self.current_space_of(u, now)
                            .is_some_and(|s| self.model.contains(*space, s))
                    })
                    .collect();
                v.sort();
                v
            }
        }
    }

    /// The fail-closed answer for a shed request: every subject denied
    /// with [`crate::DecisionBasis::Overload`], each denial audited.
    /// Overload never releases data and never masquerades as a policy
    /// decision.
    fn shed_response(&mut self, request: &DataRequest, now: Timestamp) -> DataResponse {
        let subjects = self.subjects_of(request, now);
        let mut results = Vec::with_capacity(subjects.len());
        for user in subjects {
            let decision = EnforcementDecision::shed_overload();
            self.record_decision(
                now,
                user,
                Some(request.service.clone()),
                request.data,
                request.purpose,
                &decision,
            );
            results.push(SubjectResult {
                user,
                decision,
                records: Vec::new(),
            });
        }
        DataResponse {
            results,
            degraded: true,
        }
    }

    /// Releases rows for one permitted subject, applying the brownout
    /// ladder: [`BrownoutLevel::CoarseOnly`] caps location granularity at
    /// floor level, [`BrownoutLevel::CachedOnly`] replays the last fresh
    /// answer (released under an identical decision effect) instead of
    /// querying the store. Emergency traffic always gets the full path.
    fn release_under_brownout(
        &mut self,
        user: UserId,
        request: &DataRequest,
        decision: &EnforcementDecision,
        level: BrownoutLevel,
    ) -> Vec<ReleasedRecord> {
        let emergency = request.priority == Priority::Emergency;
        let key = (request.service.as_str().to_owned(), user, request.data);
        if level >= BrownoutLevel::CachedOnly && !emergency {
            return match self.coarse_cache.get(&key) {
                Some((effect, records)) if *effect == decision.effect => records.clone(),
                _ => Vec::new(),
            };
        }
        let mut records = self.release_rows(user, request, decision);
        if level >= BrownoutLevel::CoarseOnly && !emergency {
            for record in &mut records {
                if let ReleasedValue::Location(loc) = &record.value {
                    if let Some(space) = loc.space {
                        if loc.granularity < Granularity::Floor {
                            record.value = ReleasedValue::Location(GranularLocation::degrade(
                                &self.model,
                                space,
                                None,
                                Granularity::Floor,
                            ));
                        }
                    }
                }
            }
        }
        if self.admission.is_some() {
            self.coarse_cache
                .insert(key, (decision.effect, records.clone()));
        }
        records
    }

    /// Per-class admission counters, when admission control is configured.
    pub fn admission_stats(&self) -> Option<AdmissionStats> {
        self.admission.as_ref().map(AdmissionController::stats)
    }

    /// The brownout ladder's current rung.
    pub fn brownout_level(&self) -> BrownoutLevel {
        self.brownout.level()
    }

    /// Privacy-preserving aggregate occupancy query (§IV.B.2's
    /// "aggregated or anonymized" disclosure level): distinct-subject
    /// counts per time bucket over a space subtree, with per-subject
    /// preference exclusion and k-anonymity suppression.
    pub fn handle_aggregate(
        &mut self,
        request: &AggregateRequest,
        now: Timestamp,
    ) -> AggregateResponse {
        self.ensure_enforcer();
        let c = self.ontology.concepts().clone();
        // Contributions: any subject-bearing row captured inside the space.
        let rows: Vec<(Timestamp, UserId, SpaceId)> = self
            .store
            .query_category(&self.ontology, c.data, request.from, request.to)
            .into_iter()
            .filter(|r| self.model.contains(request.space, r.observation.space))
            .filter_map(|r| {
                r.observation
                    .subject
                    .map(|u| (r.observation.timestamp, u, r.observation.space))
            })
            .collect();
        // Preference filter: a subject whose preferences deny occupancy
        // flowing to this service/purpose is excluded entirely.
        let mut subjects: Vec<UserId> = rows.iter().map(|&(_, u, _)| u).collect();
        subjects.sort();
        subjects.dedup();
        let mut excluded = std::collections::HashSet::new();
        for &user in &subjects {
            let flow = RequestFlow {
                subject: user,
                subject_group: self.group_of(user),
                data: c.occupancy,
                purpose: request.purpose,
                service: Some(request.service.clone()),
                action: DataAction::Share,
                time: now,
                subject_space: Some(request.space),
                requester_space: None,
                room_occupied: None,
            };
            // Fail closed: without an engine every subject is excluded
            // from the aggregate, audited as InternalError.
            let decision = match self.enforcer.as_ref() {
                Some(e) => e.decide(&flow, &self.ontology, &self.model),
                None => EnforcementDecision::fail_closed(),
            };
            self.record_decision(
                now,
                user,
                Some(request.service.clone()),
                c.occupancy,
                request.purpose,
                &decision,
            );
            if !decision.permits() {
                excluded.insert(user);
            }
        }
        let contributions: Vec<(Timestamp, UserId)> = rows
            .into_iter()
            .filter(|(_, u, _)| !excluded.contains(u))
            .map(|(t, u, _)| (t, u))
            .collect();
        AggregateResponse {
            buckets: bucketize(
                &contributions,
                request.from,
                request.to,
                request.bucket_secs,
                self.config.k_anonymity,
            ),
            excluded_subjects: excluded.len() as u32,
            k: self.config.k_anonymity,
            degraded: self.health.is_degraded(),
        }
    }

    /// Convenience: one user's (possibly degraded) current location for a
    /// service (Figure 1's step 9: "a service requests TIPPERS about
    /// Mary's location").
    pub fn locate(
        &mut self,
        request_service: tippers_policy::ServiceId,
        purpose: ConceptId,
        user: UserId,
        now: Timestamp,
    ) -> Option<GranularLocation> {
        let c = self.ontology.concepts().clone();
        let request = DataRequest {
            service: request_service,
            purpose,
            data: c.location_room,
            subjects: SubjectSelector::One(user),
            from: Timestamp(now.seconds() - 3600),
            to: Timestamp(now.seconds() + 1),
            requester_space: None,
            priority: Priority::Interactive,
            deadline: None,
        };
        let response = self.handle_request(&request, now);
        let result = response.results.into_iter().next()?;
        result
            .records
            .into_iter()
            .rev()
            .find_map(|r| match r.value {
                ReleasedValue::Location(l) => Some(l),
                _ => None,
            })
    }

    /// The BMS's belief about a user's current space (latest network row).
    fn current_space_of(&self, user: UserId, now: Timestamp) -> Option<SpaceId> {
        let c = self.ontology.concepts();
        let row = self.store.latest_for(&self.ontology, user, c.data, now)?;
        if now - row.observation.timestamp > 3600 {
            return None;
        }
        Some(row.observation.space)
    }

    fn release_rows(
        &mut self,
        user: UserId,
        request: &DataRequest,
        decision: &EnforcementDecision,
    ) -> Vec<ReleasedRecord> {
        let location_categories = {
            let c = self.ontology.concepts();
            [c.wifi_association, c.bluetooth_sighting, c.location]
        };
        // Location requests are answered from network observations, which
        // is what the store actually holds (the paper's Figure 2: the MAC
        // log *is* the location record).
        let is_location_request = {
            let c = self.ontology.concepts();
            self.ontology.data.is_a(request.data, c.location)
                || self.ontology.data.compatible(request.data, c.location)
        };
        let rows: Vec<crate::store::StoredRow> = if is_location_request {
            let mut rows = Vec::new();
            for cat in location_categories {
                rows.extend(
                    self.store
                        .query_subject(&self.ontology, user, cat, request.from, request.to)
                        .into_iter()
                        .cloned(),
                );
            }
            rows.sort_by_key(|r| r.observation.timestamp);
            rows
        } else {
            self.store
                .query_subject(&self.ontology, user, request.data, request.from, request.to)
                .into_iter()
                .cloned()
                .collect()
        };

        let granularity = match decision.effect {
            Effect::Degrade(g) => g,
            _ => Granularity::Exact,
        };
        let mut out = Vec::with_capacity(rows.len());
        for row in rows {
            let value = match &row.observation.payload {
                ObservationPayload::WifiAssociation { .. }
                | ObservationPayload::BeaconSighting { .. } => {
                    // Network rows reveal the capturing device's space —
                    // room granularity at best.
                    let g = granularity.coarsest(Granularity::Room);
                    ReleasedValue::Location(GranularLocation::degrade(
                        &self.model,
                        row.observation.space,
                        None,
                        g,
                    ))
                }
                ObservationPayload::Motion { detected } => ReleasedValue::Flag(*detected),
                ObservationPayload::PowerReading { watts } => {
                    let noised = match decision.effect {
                        Effect::Noise { sigma } => watts + self.gaussian() * sigma,
                        _ => *watts,
                    };
                    ReleasedValue::Scalar(noised)
                }
                ObservationPayload::Temperature { celsius } => ReleasedValue::Scalar(*celsius),
                ObservationPayload::CameraFrame { occupant_count, .. } => {
                    ReleasedValue::Count(*occupant_count)
                }
                ObservationPayload::BadgeSwipe { user, .. } => ReleasedValue::Identity(*user),
                // Future payload kinds are withheld until a release mapping
                // exists for them (privacy-conservative default).
                _ => continue,
            };
            out.push(ReleasedRecord {
                time: row.observation.timestamp,
                value,
            });
        }
        out
    }

    /// Approximate standard normal via the central limit theorem.
    fn gaussian(&mut self) -> f64 {
        let sum: f64 = (0..12).map(|_| self.noise_rng.gen::<f64>()).sum();
        sum - 6.0
    }

    /// (Re)builds the enforcement engine if needed. An injected
    /// [`FaultPoint::EnforcerBuild`] failure leaves the engine absent and
    /// marks the BMS degraded — subsequent decisions fail closed until a
    /// rebuild succeeds.
    fn ensure_enforcer(&mut self) {
        if self.enforcer.is_some() {
            return;
        }
        if self
            .config
            .fault_plan
            .should_fail(FaultPoint::EnforcerBuild)
        {
            self.health
                .mark_degraded("enforcement engine rebuild failed; failing closed");
            return;
        }
        let policies = self.policies.all().to_vec();
        let prefs = self.preferences.all().to_vec();
        self.enforcer = Some(match self.config.enforcer {
            EnforcerKind::Naive => {
                EnforcerImpl::Naive(NaiveEnforcer::new(policies, prefs, self.config.strategy))
            }
            EnforcerKind::Indexed => EnforcerImpl::Indexed(IndexedEnforcer::new(
                policies,
                prefs,
                self.config.strategy,
                &self.ontology,
            )),
        });
        self.health.mark_recovered();
    }
}

/// The deletion digest a [`DeletionCertificate`] carries: SHA-256 (hex)
/// over the sweep id, sweep time, and the canonical JSON of every deleted
/// row. A pure function of the `SweepDelete` record's contents, so
/// recovery finishing an interrupted sweep re-derives exactly the digest
/// the uninterrupted run would have committed, and replicas replaying the
/// commit can match certificates byte-for-byte.
fn deletion_digest(id: u64, now: Timestamp, rows: &[StoredRow]) -> String {
    let mut input = format!("sweep:{id:016x}:{}:", now.seconds());
    for row in rows {
        input.push_str(&serde_json::to_string(row).expect("stored rows serialize infallibly"));
        input.push('\n');
    }
    hex(&sha256(input.as_bytes()))
}
