//! The User Preference Manager (Figure 1): receives privacy settings from
//! IoT Assistants (step 8) and stores each user's preferences.

use std::fmt;

use tippers_policy::{
    BuildingPolicy, Effect, PreferenceId, PreferenceScope, UserId, UserPreference,
};

/// Errors from settings submission.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SettingsError {
    /// The policy has no setting with that key.
    UnknownSetting {
        /// The missing key.
        key: String,
    },
    /// The option index is out of range.
    InvalidOption {
        /// The offending index.
        index: usize,
        /// How many options exist.
        available: usize,
    },
    /// The enforcement shard owning this user is quarantined and
    /// rebuilding; the choice was not applied. Retry once the shard
    /// recovers — the sharded runtime fails closed rather than applying
    /// a choice it cannot make durable in the owner's WAL partition.
    ShardUnavailable,
}

impl fmt::Display for SettingsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SettingsError::UnknownSetting { key } => write!(f, "unknown setting `{key}`"),
            SettingsError::InvalidOption { index, available } => {
                write!(f, "option {index} out of range (policy offers {available})")
            }
            SettingsError::ShardUnavailable => {
                write!(
                    f,
                    "owning enforcement shard is quarantined; retry after recovery"
                )
            }
        }
    }
}

impl std::error::Error for SettingsError {}

/// Stores user preferences and converts setting choices into them.
#[derive(Debug, Clone, Default)]
pub struct PreferenceManager {
    preferences: Vec<UserPreference>,
    next_id: u64,
}

impl PreferenceManager {
    /// An empty manager.
    pub fn new() -> PreferenceManager {
        PreferenceManager::default()
    }

    /// Adds a preference, assigning a fresh id. Returns the id.
    pub fn add(&mut self, mut pref: UserPreference) -> PreferenceId {
        let id = PreferenceId(self.next_id);
        self.next_id += 1;
        pref.id = id;
        self.preferences.push(pref);
        id
    }

    /// Inserts a preference keeping its caller-assigned id, advancing the
    /// allocator past it. The sharded runtime routes every preference
    /// through a single router-side allocator so that ids match the
    /// unsharded engine byte-for-byte even though each shard stores only
    /// its own users' preferences.
    pub fn insert_assigned(&mut self, pref: UserPreference) -> PreferenceId {
        let id = pref.id;
        self.next_id = self.next_id.max(id.0 + 1);
        self.preferences.push(pref);
        id
    }

    /// Removes a preference. Returns whether it existed.
    pub fn remove(&mut self, id: PreferenceId) -> bool {
        let before = self.preferences.len();
        self.preferences.retain(|p| p.id != id);
        self.preferences.len() != before
    }

    /// All preferences.
    pub fn all(&self) -> &[UserPreference] {
        &self.preferences
    }

    /// One user's preferences.
    pub fn for_user(&self, user: UserId) -> Vec<&UserPreference> {
        self.preferences.iter().filter(|p| p.user == user).collect()
    }

    /// Number of stored preferences.
    pub fn len(&self) -> usize {
        self.preferences.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.preferences.is_empty()
    }

    /// The manager's durable state: the preferences and the id allocator's
    /// next value (for [`crate::Snapshot`]).
    pub fn snapshot_parts(&self) -> (Vec<UserPreference>, u64) {
        (self.preferences.clone(), self.next_id)
    }

    /// The id allocator's next value (without cloning the preferences).
    pub(crate) fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Rebuilds a manager from snapshotted parts.
    ///
    /// # Panics
    ///
    /// Panics if any preference id is at or above `next_id` — such a state
    /// would reissue ids already referenced elsewhere. Callers recovering
    /// untrusted snapshots validate first (see `Tippers::from_snapshot`).
    pub fn from_parts(preferences: Vec<UserPreference>, next_id: u64) -> PreferenceManager {
        assert!(
            preferences.iter().all(|p| p.id.0 < next_id),
            "preference id allocator must be ahead of every stored id"
        );
        PreferenceManager {
            preferences,
            next_id,
        }
    }

    /// Converts an IoTA setting choice (Figure 4: pick an option of a
    /// policy's setting) into a stored preference scoped to that policy's
    /// data, purpose and service.
    ///
    /// Choosing a different option of the same setting later replaces the
    /// earlier choice (the manager removes the previous setting-derived
    /// preference for the same user/policy/setting).
    ///
    /// # Errors
    ///
    /// [`SettingsError::UnknownSetting`] / [`SettingsError::InvalidOption`].
    pub fn apply_setting_choice(
        &mut self,
        user: UserId,
        policy: &BuildingPolicy,
        setting_key: &str,
        option_index: usize,
    ) -> Result<(PreferenceId, Effect), SettingsError> {
        let (pref, effect) =
            self.prepare_setting_choice(user, policy, setting_key, option_index)?;
        Ok((self.add(pref), effect))
    }

    /// [`PreferenceManager::apply_setting_choice`], but keeping a
    /// caller-assigned id for the derived preference (see
    /// [`PreferenceManager::insert_assigned`]).
    ///
    /// # Errors
    ///
    /// [`SettingsError::UnknownSetting`] / [`SettingsError::InvalidOption`].
    pub fn apply_setting_choice_assigned(
        &mut self,
        user: UserId,
        policy: &BuildingPolicy,
        setting_key: &str,
        option_index: usize,
        id: PreferenceId,
    ) -> Result<(PreferenceId, Effect), SettingsError> {
        let (mut pref, effect) =
            self.prepare_setting_choice(user, policy, setting_key, option_index)?;
        pref.id = id;
        Ok((self.insert_assigned(pref), effect))
    }

    /// Validates a setting choice, drops the superseded earlier choice for
    /// the same user/policy/setting, and builds (but does not store) the
    /// derived preference. No mutation happens on a validation error.
    fn prepare_setting_choice(
        &mut self,
        user: UserId,
        policy: &BuildingPolicy,
        setting_key: &str,
        option_index: usize,
    ) -> Result<(UserPreference, Effect), SettingsError> {
        let setting = policy
            .settings
            .iter()
            .find(|s| s.key == setting_key)
            .ok_or_else(|| SettingsError::UnknownSetting {
                key: setting_key.to_owned(),
            })?;
        let option = setting
            .options
            .get(option_index)
            .ok_or(SettingsError::InvalidOption {
                index: option_index,
                available: setting.options.len(),
            })?;
        let marker = setting_marker(policy, setting_key);
        self.preferences
            .retain(|p| !(p.user == user && p.note == marker));
        let pref = UserPreference::new(
            PreferenceId(0),
            user,
            // A setting choice governs the policy's whole practice — every
            // flow under its purpose/service/space, whatever the concrete
            // data category (a WiFi-log policy's "No location sensing"
            // option must also cover the location flows *derived* from
            // the log).
            PreferenceScope {
                data: None,
                purpose: Some(policy.purpose),
                service: policy.service.clone(),
                space: Some(policy.space),
                condition: Default::default(),
            },
            option.effect,
        )
        // Setting-derived preferences act as explicit per-policy choices,
        // above blanket preferences.
        .with_priority(5)
        .with_note(marker);
        Ok((pref, option.effect))
    }
}

fn setting_marker(policy: &BuildingPolicy, setting_key: &str) -> String {
    format!("setting:{}:{}", policy.id, setting_key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tippers_ontology::Ontology;
    use tippers_policy::{catalog, PolicyId};
    use tippers_spatial::fixtures::dbh;

    fn policy_with_setting() -> BuildingPolicy {
        let ont = Ontology::standard();
        let d = dbh();
        catalog::policy2_emergency_location(PolicyId(2), d.building, &ont)
            .with_setting(BuildingPolicy::location_setting())
    }

    #[test]
    fn add_and_query() {
        let ont = Ontology::standard();
        let mut pm = PreferenceManager::new();
        let id = pm.add(catalog::preference2_no_location(
            PreferenceId(99),
            UserId(1),
            &ont,
        ));
        assert_eq!(id, PreferenceId(0));
        assert_eq!(pm.for_user(UserId(1)).len(), 1);
        assert!(pm.for_user(UserId(2)).is_empty());
        assert!(pm.remove(id));
        assert!(pm.is_empty());
    }

    #[test]
    fn setting_choice_creates_scoped_preference() {
        let policy = policy_with_setting();
        let mut pm = PreferenceManager::new();
        let (_, effect) = pm
            .apply_setting_choice(UserId(1), &policy, "location-sensing", 2)
            .unwrap();
        assert_eq!(effect, Effect::Deny);
        let prefs = pm.for_user(UserId(1));
        assert_eq!(prefs.len(), 1);
        assert_eq!(prefs[0].scope.data, None);
        assert_eq!(prefs[0].scope.purpose, Some(policy.purpose));
        assert_eq!(prefs[0].scope.space, Some(policy.space));
        assert_eq!(prefs[0].effect, Effect::Deny);
    }

    #[test]
    fn re_choosing_replaces_previous() {
        let policy = policy_with_setting();
        let mut pm = PreferenceManager::new();
        pm.apply_setting_choice(UserId(1), &policy, "location-sensing", 2)
            .unwrap();
        pm.apply_setting_choice(UserId(1), &policy, "location-sensing", 0)
            .unwrap();
        let prefs = pm.for_user(UserId(1));
        assert_eq!(prefs.len(), 1);
        assert_eq!(prefs[0].effect, Effect::Allow);
        // Different users do not clobber each other.
        pm.apply_setting_choice(UserId(2), &policy, "location-sensing", 2)
            .unwrap();
        assert_eq!(pm.len(), 2);
    }

    #[test]
    fn bad_inputs_are_rejected() {
        let policy = policy_with_setting();
        let mut pm = PreferenceManager::new();
        assert!(matches!(
            pm.apply_setting_choice(UserId(1), &policy, "nope", 0),
            Err(SettingsError::UnknownSetting { .. })
        ));
        assert!(matches!(
            pm.apply_setting_choice(UserId(1), &policy, "location-sensing", 9),
            Err(SettingsError::InvalidOption { available: 3, .. })
        ));
        assert!(pm.is_empty());
    }
}
