//! The Sensor Manager (Figure 1): tracks live occupancy state, drives the
//! HVAC actuation of Policy 1, and pushes capture-time suppression down to
//! devices.

use std::collections::HashMap;

use tippers_ontology::Ontology;
use tippers_policy::{Effect, Timestamp, UserPreference};
use tippers_sensors::{BuildingSimulator, MacAddress, Observation, ObservationPayload};
use tippers_spatial::{SpaceId, SpatialModel};

/// A thermostat command produced by Policy 1's control loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HvacCommand {
    /// The floor whose HVAC unit is addressed.
    pub floor: SpaceId,
    /// Target temperature, Fahrenheit (the paper's 70 °F).
    pub target_fahrenheit: f64,
    /// Whether the unit should run.
    pub active: bool,
}

/// Tracks per-room occupancy and produces actuation commands.
#[derive(Debug, Clone, Default)]
pub struct SensorManager {
    /// Last occupancy signal per room.
    occupancy: HashMap<SpaceId, (Timestamp, bool)>,
    /// How long an occupancy signal stays valid, seconds.
    staleness_secs: i64,
}

impl SensorManager {
    /// Creates a manager with a 15-minute occupancy staleness horizon.
    pub fn new() -> SensorManager {
        SensorManager {
            occupancy: HashMap::new(),
            staleness_secs: 900,
        }
    }

    /// Feeds one observation into the live state.
    pub fn observe(&mut self, obs: &Observation) {
        match &obs.payload {
            ObservationPayload::Motion { detected } => {
                self.occupancy.insert(obs.space, (obs.timestamp, *detected));
            }
            ObservationPayload::CameraFrame { occupant_count, .. } => {
                self.occupancy
                    .insert(obs.space, (obs.timestamp, *occupant_count > 0));
            }
            _ => {}
        }
    }

    /// Whether a room is known occupied at `now` (unknown/stale → `None`).
    pub fn room_occupied(&self, space: SpaceId, now: Timestamp) -> Option<bool> {
        let (t, occupied) = self.occupancy.get(&space)?;
        if now - *t > self.staleness_secs {
            None
        } else {
            Some(*occupied)
        }
    }

    /// Policy 1's control loop: "make a request to motion sensors in each
    /// room to determine whether the room is occupied … change the settings
    /// of the HVAC system" — one command per floor, active when any room on
    /// the floor is occupied.
    pub fn thermostat_commands(
        &self,
        model: &SpatialModel,
        floors: &[SpaceId],
        now: Timestamp,
    ) -> Vec<HvacCommand> {
        floors
            .iter()
            .map(|&floor| {
                let any_occupied = self
                    .occupancy
                    .iter()
                    .filter(|(space, _)| model.contains(floor, **space))
                    .any(|(_, (t, occ))| *occ && now - *t <= self.staleness_secs);
                HvacCommand {
                    floor,
                    target_fahrenheit: 70.0,
                    active: any_occupied,
                }
            })
            .collect()
    }

    /// MACs of users whose preferences deny *capture* of network data —
    /// these are pushed into device settings so the data never leaves the
    /// sensor (the *where = device* enforcement point of §V.C).
    pub fn capture_suppression(
        ontology: &Ontology,
        preferences: &[UserPreference],
        mac_of: &HashMap<tippers_policy::UserId, MacAddress>,
    ) -> Vec<MacAddress> {
        let c = ontology.concepts();
        preferences
            .iter()
            .filter(|p| p.effect == Effect::Deny)
            // Unconditional, building-wide location/network denials only:
            // a conditional preference (after-hours, per-space) cannot be
            // enforced by a static device list and stays BMS-side.
            .filter(|p| p.scope.condition.is_always() && p.scope.service.is_none())
            .filter(|p| match p.scope.data {
                None => true,
                Some(d) => {
                    ontology.data.is_a(c.wifi_association, d)
                        || ontology.data.is_a(c.bluetooth_sighting, d)
                        || ontology.data.is_a(d, c.location)
                }
            })
            .filter_map(|p| mac_of.get(&p.user).copied())
            .collect()
    }

    /// Pushes suppression lists to every network device of a simulator.
    pub fn sync_suppression(
        ontology: &Ontology,
        suppressed: &[MacAddress],
        sim: &mut BuildingSimulator,
    ) {
        let c = ontology.concepts();
        let targets: Vec<_> = sim
            .devices()
            .of_class(c.wifi_ap)
            .into_iter()
            .chain(sim.devices().of_class(c.ble_beacon))
            .collect();
        for id in targets {
            if let Some(device) = sim.devices_mut().get_mut(id) {
                device.settings.suppressed_macs = suppressed.to_vec();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tippers_policy::{PreferenceId, PreferenceScope, UserId};
    use tippers_sensors::DeviceId;
    use tippers_spatial::fixtures::dbh;

    fn motion(space: SpaceId, t: Timestamp, detected: bool) -> Observation {
        Observation {
            device: DeviceId(0),
            timestamp: t,
            space,
            payload: ObservationPayload::Motion { detected },
            subject: None,
        }
    }

    #[test]
    fn occupancy_tracking_and_staleness() {
        let d = dbh();
        let mut sm = SensorManager::new();
        let t0 = Timestamp::at(0, 9, 0);
        sm.observe(&motion(d.offices[0], t0, true));
        assert_eq!(sm.room_occupied(d.offices[0], t0 + 60), Some(true));
        assert_eq!(sm.room_occupied(d.offices[0], t0 + 1000), None);
        assert_eq!(sm.room_occupied(d.offices[1], t0), None);
        sm.observe(&motion(d.offices[0], t0 + 120, false));
        assert_eq!(sm.room_occupied(d.offices[0], t0 + 130), Some(false));
    }

    #[test]
    fn thermostat_targets_occupied_floors_only() {
        let d = dbh();
        let mut sm = SensorManager::new();
        let t0 = Timestamp::at(0, 9, 0);
        // offices[0] is on floor 0.
        sm.observe(&motion(d.offices[0], t0, true));
        let cmds = sm.thermostat_commands(&d.model, &d.floors, t0 + 60);
        assert_eq!(cmds.len(), 6);
        assert!(cmds[0].active);
        assert!((cmds[0].target_fahrenheit - 70.0).abs() < 1e-9);
        assert!(cmds[1..].iter().all(|c| !c.active));
    }

    #[test]
    fn capture_suppression_picks_unconditional_location_denials() {
        let ont = Ontology::standard();
        let c = ont.concepts();
        let mac1 = MacAddress::for_user(1);
        let mac2 = MacAddress::for_user(2);
        let mac_of: HashMap<UserId, MacAddress> =
            [(UserId(1), mac1), (UserId(2), mac2)].into_iter().collect();
        let prefs = vec![
            // Unconditional location deny → suppress.
            UserPreference::new(
                PreferenceId(1),
                UserId(1),
                PreferenceScope {
                    data: Some(c.location),
                    ..Default::default()
                },
                Effect::Deny,
            ),
            // Conditional (after-hours) deny → stays BMS-side.
            UserPreference::new(
                PreferenceId(2),
                UserId(2),
                PreferenceScope {
                    data: Some(c.location),
                    condition: tippers_policy::Condition::during(
                        tippers_policy::TimeWindow::after_hours(),
                    ),
                    ..Default::default()
                },
                Effect::Deny,
            ),
        ];
        let suppressed = SensorManager::capture_suppression(&ont, &prefs, &mac_of);
        assert_eq!(suppressed, vec![mac1]);
    }
}
