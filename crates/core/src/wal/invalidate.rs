//! WAL → analyzer invalidation bridge.
//!
//! An incremental linter (`tippers-lint --cache … --changed …`) wants to
//! know, for each record appended to the log, which *settings-level*
//! units it mutated — so it can re-solve only the dirty region instead
//! of re-analyzing the whole deployment. This module derives that set
//! from the records themselves.
//!
//! One subtlety forces the API to be stateful: `AddPolicy` and
//! `SubmitPreference` records carry the payload *as submitted*, before
//! the id allocator stamped it (replay re-runs the allocator and arrives
//! at the same id deterministically). A tail reader therefore has to
//! shadow both allocators, exactly like replay does, to name the unit a
//! record actually created — hence [`InvalidationTail`] rather than a
//! pure per-record function.

use tippers_policy::{PolicyId, PreferenceId};

use super::WalRecord;

/// One settings-level mutation implied by a WAL record, in core
/// vocabulary (the linter maps these onto its own unit ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SettingsMutation {
    /// A full-state anchor: everything before it is superseded, so any
    /// cached analysis must be rebuilt from scratch.
    Everything,
    /// One building policy was created, removed, or had a setting chosen.
    Policy(PolicyId),
    /// One user preference was submitted or applied retroactively.
    Preference(PreferenceId),
}

/// Shadows the policy/preference id allocators while scanning a log tail
/// in order, mapping each record to the units it dirtied.
///
/// Start from [`InvalidationTail::new`] at the head of a fresh log, or
/// feed it the tail starting at the last checkpoint — `Checkpoint`
/// records resynchronize both allocators, so a tail anchored on one
/// needs no other seed.
#[derive(Debug, Clone, Default)]
pub struct InvalidationTail {
    next_policy_id: u64,
    next_preference_id: u64,
}

impl InvalidationTail {
    /// A tail positioned at the head of an empty log (both allocators
    /// at zero, matching a fresh `Tippers`).
    pub fn new() -> InvalidationTail {
        InvalidationTail::default()
    }

    /// Consumes one record, advancing the shadowed allocators, and
    /// returns the settings-level units it mutated. Data-plane records
    /// (ingest, sweeps, quota charges, epoch fences, notices) mutate no
    /// settings and return an empty set.
    pub fn observe(&mut self, record: &WalRecord) -> Vec<SettingsMutation> {
        match record {
            WalRecord::Checkpoint {
                snapshot,
                next_policy_id,
                ..
            } => {
                self.next_policy_id = *next_policy_id;
                self.next_preference_id = snapshot.next_preference_id;
                vec![SettingsMutation::Everything]
            }
            WalRecord::AddPolicy { .. } => {
                let id = PolicyId(self.next_policy_id);
                self.next_policy_id += 1;
                vec![SettingsMutation::Policy(id)]
            }
            WalRecord::RemovePolicy { policy } => vec![SettingsMutation::Policy(*policy)],
            WalRecord::SubmitPreference { .. } => {
                let id = PreferenceId(self.next_preference_id);
                self.next_preference_id += 1;
                vec![SettingsMutation::Preference(id)]
            }
            WalRecord::SubmitPreferenceAssigned { preference, .. } => {
                // Router-assigned id: the record names the unit itself;
                // the shadow allocator skips past it, like replay does.
                self.next_preference_id = self.next_preference_id.max(preference.id.0 + 1);
                vec![SettingsMutation::Preference(preference.id)]
            }
            WalRecord::SettingChoice { policy, .. } => vec![SettingsMutation::Policy(*policy)],
            WalRecord::SettingChoiceAssigned { policy, id, .. } => {
                self.next_preference_id = self.next_preference_id.max(id.0 + 1);
                vec![SettingsMutation::Policy(*policy)]
            }
            WalRecord::Retroactive { preference } => {
                vec![SettingsMutation::Preference(*preference)]
            }
            WalRecord::Ingest { .. }
            | WalRecord::Gc { .. }
            | WalRecord::SweepBegin { .. }
            | WalRecord::SweepDelete { .. }
            | WalRecord::SweepCommit { .. }
            | WalRecord::QuotaCharge { .. }
            | WalRecord::NewEpoch { .. }
            | WalRecord::Notice { .. } => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use tippers_policy::{
        BuildingPolicy, Effect, PreferenceScope, Timestamp, UserId, UserPreference,
    };

    use super::*;

    fn policy(id: u64) -> BuildingPolicy {
        let spatial = tippers_spatial::fixtures::dbh();
        let c = tippers_ontology::Ontology::standard().concepts().clone();
        BuildingPolicy::new(
            tippers_policy::PolicyId(id),
            "p",
            spatial.building,
            c.occupancy,
            c.comfort,
        )
    }

    #[test]
    fn added_units_are_named_by_the_allocator_not_the_payload() {
        let mut tail = InvalidationTail::new();
        // The submitted policy claims id 999; the allocator assigns 0.
        let got = tail.observe(&WalRecord::AddPolicy {
            policy: policy(999),
        });
        assert_eq!(got, vec![SettingsMutation::Policy(PolicyId(0))]);
        let got = tail.observe(&WalRecord::AddPolicy {
            policy: policy(999),
        });
        assert_eq!(got, vec![SettingsMutation::Policy(PolicyId(1))]);
        let got = tail.observe(&WalRecord::SubmitPreference {
            preference: UserPreference::new(
                PreferenceId(42),
                UserId(7),
                PreferenceScope::default(),
                Effect::Deny,
            ),
            now: Timestamp(0),
        });
        assert_eq!(got, vec![SettingsMutation::Preference(PreferenceId(0))]);
    }

    #[test]
    fn data_plane_records_dirty_nothing() {
        let mut tail = InvalidationTail::new();
        assert!(tail
            .observe(&WalRecord::Gc { now: Timestamp(5) })
            .is_empty());
        assert!(tail.observe(&WalRecord::NewEpoch { epoch: 3 }).is_empty());
        assert!(tail
            .observe(&WalRecord::Notice {
                user: UserId(1),
                now: Timestamp(9),
                text: "hi".into(),
            })
            .is_empty());
    }

    #[test]
    fn removals_and_choices_name_the_logged_unit() {
        let mut tail = InvalidationTail::new();
        assert_eq!(
            tail.observe(&WalRecord::RemovePolicy {
                policy: PolicyId(4)
            }),
            vec![SettingsMutation::Policy(PolicyId(4))]
        );
        assert_eq!(
            tail.observe(&WalRecord::SettingChoice {
                user: UserId(2),
                policy: PolicyId(6),
                setting_key: "share".into(),
                option_index: 1,
            }),
            vec![SettingsMutation::Policy(PolicyId(6))]
        );
        assert_eq!(
            tail.observe(&WalRecord::Retroactive {
                preference: PreferenceId(2)
            }),
            vec![SettingsMutation::Preference(PreferenceId(2))]
        );
    }
}
