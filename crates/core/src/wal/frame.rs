//! Record framing for the write-ahead log.
//!
//! Every record is laid out as `[len: u32 LE][crc32: u32 LE][payload]`,
//! where the checksum covers the payload bytes. Decoding walks a segment
//! front to back and stops at the first frame that does not check out —
//! a torn header, a torn payload, an implausible length, or a checksum
//! mismatch — reporting how many bytes were valid so recovery can
//! truncate there instead of erroring or accepting garbage.

use std::fmt;

/// Bytes of framing overhead per record (length + checksum).
pub const HEADER_LEN: usize = 8;

/// Upper bound on a single record's payload; anything larger is treated
/// as corruption (a bit flip in the length field must not make recovery
/// attempt a gigabyte allocation).
pub const MAX_RECORD_LEN: usize = 64 * 1024 * 1024;

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = build_crc_table();

/// IEEE CRC-32 (the Ethernet/zlib polynomial, reflected).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Frames a payload as one log record.
pub fn encode(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Why a segment's tail was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Fewer bytes remain than a record header needs (torn header).
    TornHeader,
    /// The header promises more payload bytes than the segment holds
    /// (torn write).
    TornPayload,
    /// The length field is implausibly large (corrupted header).
    OversizedLength,
    /// The payload does not match its checksum (bit rot or a torn
    /// overwrite).
    ChecksumMismatch,
    /// The payload passed its checksum but did not decode as a record
    /// (foreign or corrupted content).
    Undecodable,
}

impl fmt::Display for Corruption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Corruption::TornHeader => "torn record header",
            Corruption::TornPayload => "torn record payload",
            Corruption::OversizedLength => "implausible record length",
            Corruption::ChecksumMismatch => "checksum mismatch",
            Corruption::Undecodable => "undecodable record payload",
        })
    }
}

/// The outcome of walking one segment's bytes.
#[derive(Debug)]
pub struct DecodedSegment {
    /// Each intact record's payload, in log order.
    pub payloads: Vec<Vec<u8>>,
    /// Byte offset just past each intact record (so `boundaries[i]` is
    /// where record `i + 1` starts).
    pub boundaries: Vec<usize>,
    /// How many leading bytes were valid; recovery truncates here.
    pub valid_len: usize,
    /// Why decoding stopped early, if it did.
    pub corruption: Option<Corruption>,
}

/// Walks a segment front to back, collecting intact records and stopping
/// at the first torn or corrupt frame.
pub fn decode_segment(bytes: &[u8]) -> DecodedSegment {
    let mut payloads = Vec::new();
    let mut boundaries = Vec::new();
    let mut off = 0usize;
    let corruption = loop {
        let remaining = bytes.len() - off;
        if remaining == 0 {
            break None;
        }
        if remaining < HEADER_LEN {
            break Some(Corruption::TornHeader);
        }
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes")) as usize;
        if len > MAX_RECORD_LEN {
            break Some(Corruption::OversizedLength);
        }
        if remaining < HEADER_LEN + len {
            break Some(Corruption::TornPayload);
        }
        let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().expect("4 bytes"));
        let payload = &bytes[off + HEADER_LEN..off + HEADER_LEN + len];
        if crc32(payload) != crc {
            break Some(Corruption::ChecksumMismatch);
        }
        off += HEADER_LEN + len;
        payloads.push(payload.to_vec());
        boundaries.push(off);
    };
    DecodedSegment {
        payloads,
        boundaries,
        valid_len: off,
        corruption,
    }
}

/// Byte offsets just past each intact record in a segment — the crash
/// points a recovery fuzzer enumerates.
pub fn record_boundaries(bytes: &[u8]) -> Vec<usize> {
    decode_segment(bytes).boundaries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_reference_vectors() {
        // The standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_round_trips() {
        let mut segment = Vec::new();
        segment.extend_from_slice(&encode(b"alpha"));
        segment.extend_from_slice(&encode(b""));
        segment.extend_from_slice(&encode(b"gamma-record"));
        let decoded = decode_segment(&segment);
        assert_eq!(
            decoded.payloads,
            vec![b"alpha".to_vec(), Vec::new(), b"gamma-record".to_vec()]
        );
        assert_eq!(decoded.valid_len, segment.len());
        assert!(decoded.corruption.is_none());
    }

    #[test]
    fn every_truncation_point_is_detected() {
        let mut segment = Vec::new();
        segment.extend_from_slice(&encode(b"first"));
        let boundary = segment.len();
        segment.extend_from_slice(&encode(b"second-record"));
        for cut in boundary + 1..segment.len() {
            let decoded = decode_segment(&segment[..cut]);
            assert_eq!(decoded.payloads.len(), 1, "cut at {cut}");
            assert_eq!(decoded.valid_len, boundary);
            assert!(decoded.corruption.is_some(), "cut at {cut}");
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let segment = encode(b"checksummed payload");
        for byte in 0..segment.len() {
            let mut copy = segment.clone();
            copy[byte] ^= 1 << (byte % 8);
            let decoded = decode_segment(&copy);
            assert!(
                decoded.payloads.is_empty() && decoded.corruption.is_some(),
                "flip at byte {byte} went undetected"
            );
        }
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut segment = Vec::new();
        segment.extend_from_slice(&(u32::MAX).to_le_bytes());
        segment.extend_from_slice(&[0, 0, 0, 0]);
        let decoded = decode_segment(&segment);
        assert_eq!(decoded.corruption, Some(Corruption::OversizedLength));
        assert_eq!(decoded.valid_len, 0);
    }
}
