//! The logical record set of the BMS's write-ahead log.
//!
//! Mutations are logged *after* they are applied in memory, one record
//! per public mutation. Most records are logical (replay re-runs the
//! same deterministic code path); ingest is physical — the record holds
//! the rows that actually survived enforcement, so replay is a pure
//! data load and does not depend on fault-plan or sensor state that the
//! original run consumed.

use serde::{Deserialize, Serialize};
use tippers_ontology::ConceptId;
use tippers_policy::{
    BuildingPolicy, PolicyId, PreferenceId, ServiceId, Timestamp, UserId, UserPreference,
};

use crate::snapshot::Snapshot;
use crate::store::StoredRow;

/// One durable mutation of the BMS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum WalRecord {
    /// A full-state anchor: everything before it in the log is
    /// superseded, so compaction may drop older segments.
    Checkpoint {
        /// The durable state (store, preferences, audit) at the anchor.
        snapshot: Snapshot,
        /// The policies in force at the anchor (policies ride in the log,
        /// unlike the operator-supplied ontology and spatial model, so a
        /// recovered BMS enforces exactly what the crashed one did).
        policies: Vec<BuildingPolicy>,
        /// The policy-id allocator's next value.
        next_policy_id: u64,
    },
    /// `Tippers::add_policy`.
    AddPolicy {
        /// The policy as submitted (its id is reassigned on replay,
        /// deterministically, exactly as it was originally).
        policy: BuildingPolicy,
    },
    /// `Tippers::remove_policy` (logged only when something was removed).
    RemovePolicy {
        /// The removed policy's id.
        policy: PolicyId,
    },
    /// `Tippers::submit_preference`.
    SubmitPreference {
        /// The preference as submitted (id reassigned on replay).
        preference: UserPreference,
        /// Submission time (drives conflict notifications).
        now: Timestamp,
    },
    /// `Tippers::submit_preference_assigned`: a preference whose id was
    /// allocated by the shard router rather than this engine's own
    /// allocator. Replay preserves the id verbatim, so a rebuilt shard
    /// re-derives exactly the ids the router handed out — the property
    /// that keeps sharded decisions byte-identical to the unsharded
    /// engine's.
    SubmitPreferenceAssigned {
        /// The preference, id included (kept on replay).
        preference: UserPreference,
        /// Submission time (drives conflict notifications).
        now: Timestamp,
    },
    /// `Tippers::apply_setting_choice` (logged only on success).
    SettingChoice {
        /// The choosing user.
        user: UserId,
        /// The policy whose setting was chosen.
        policy: PolicyId,
        /// The setting key within that policy.
        setting_key: String,
        /// The chosen option index.
        option_index: usize,
    },
    /// `Tippers::apply_setting_choice_assigned` (logged only on success):
    /// a setting choice whose derived preference carries a router-assigned
    /// id, preserved across replay like
    /// [`WalRecord::SubmitPreferenceAssigned`].
    SettingChoiceAssigned {
        /// The choosing user.
        user: UserId,
        /// The policy whose setting was chosen.
        policy: PolicyId,
        /// The setting key within that policy.
        setting_key: String,
        /// The chosen option index.
        option_index: usize,
        /// The router-assigned id for the derived preference.
        id: PreferenceId,
    },
    /// `Tippers::apply_retroactively` (logged only when rows were purged).
    Retroactive {
        /// The triggering preference.
        preference: PreferenceId,
    },
    /// `Tippers::ingest` — the rows that passed storage-time enforcement
    /// (dropped observations are not logged; an injected store-write loss
    /// during the original run therefore stays lost after replay, exactly
    /// matching the pre-crash state).
    Ingest {
        /// The stored rows, in insertion order.
        rows: Vec<StoredRow>,
    },
    /// `Tippers::gc` (logged only when rows were deleted). The legacy
    /// single-record logical sweep, kept for replaying pre-sweeper logs;
    /// the provable path is `SweepBegin`/`SweepDelete`/`SweepCommit`.
    Gc {
        /// The sweep time.
        now: Timestamp,
    },
    /// A retention sweep opened (`Tippers::sweep`). A begin without a
    /// matching commit marks a sweep that crashed mid-flight; recovery
    /// finishes it exactly once.
    SweepBegin {
        /// Sweep identifier, unique within one log history.
        id: u64,
        /// Virtual time the sweep runs at.
        now: Timestamp,
    },
    /// The rows a retention sweep physically deleted. Physical like
    /// `Ingest`: replay removes exactly these rows, so replicas and
    /// recovery converge byte-for-byte with the sweeping primary.
    SweepDelete {
        /// The owning sweep.
        id: u64,
        /// The deleted rows, in store order.
        rows: Vec<StoredRow>,
    },
    /// A retention sweep committed: the deletions are final and certified.
    /// Replaying it re-issues the identical deletion certificate.
    SweepCommit {
        /// The owning sweep.
        id: u64,
        /// Virtual time the sweep ran at.
        now: Timestamp,
        /// Number of rows the sweep deleted.
        rows: u64,
        /// SHA-256 (hex) over the sweep id, time, and deleted-row JSON.
        digest: String,
    },
    /// One disclosure-quota charge: a permitted release consumed one unit
    /// of the (user, service, purpose) budget. Logged *before* the rows
    /// leave the building — a charge that cannot be made durable rolls
    /// back and the request is denied, so counters never regress below
    /// what was actually disclosed.
    QuotaCharge {
        /// The data subject whose budget is charged.
        user: UserId,
        /// The requesting service.
        service: ServiceId,
        /// The declared purpose.
        purpose: ConceptId,
        /// Charge time (drives budget-window rollover).
        now: Timestamp,
    },
    /// An epoch fence (replicated enforcement): a replica durably records
    /// the new epoch *before* promoting itself to primary, and every node
    /// rejects replication frames stamped with an older epoch afterwards —
    /// a deposed primary is fenced on its next append rather than being
    /// allowed to acknowledge split-brain writes.
    NewEpoch {
        /// The fencing epoch, monotonically increasing across failovers.
        epoch: u64,
    },
    /// A durable, replicated user notification — e.g. the anti-entropy
    /// reconciler superseding one side of a divergent setting update.
    /// Replaying it re-queues the notification on every node, so the
    /// user's IoTA is re-notified no matter which node it polls.
    Notice {
        /// The notified user.
        user: UserId,
        /// Notification time.
        now: Timestamp,
        /// Human-readable notice text.
        text: String,
    },
}

impl WalRecord {
    /// Serializes the record to its log payload bytes.
    pub fn to_payload(&self) -> Vec<u8> {
        serde_json::to_string(self)
            .expect("record serialization is infallible")
            .into_bytes()
    }

    /// Decodes a record from log payload bytes.
    ///
    /// Returns `None` when the payload is not a record this build knows —
    /// recovery treats that exactly like a checksum failure (truncate,
    /// count, never guess).
    pub fn from_payload(payload: &[u8]) -> Option<WalRecord> {
        let text = std::str::from_utf8(payload).ok()?;
        serde_json::from_str(text).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip() {
        let records = [
            WalRecord::RemovePolicy {
                policy: PolicyId(7),
            },
            WalRecord::Gc {
                now: Timestamp(1234),
            },
            WalRecord::SettingChoice {
                user: UserId(3),
                policy: PolicyId(1),
                setting_key: "location-sensing".into(),
                option_index: 2,
            },
            WalRecord::SettingChoiceAssigned {
                user: UserId(3),
                policy: PolicyId(1),
                setting_key: "location-sensing".into(),
                option_index: 1,
                id: PreferenceId(41),
            },
            WalRecord::Ingest { rows: Vec::new() },
            WalRecord::NewEpoch { epoch: 3 },
            WalRecord::Notice {
                user: UserId(5),
                now: Timestamp(99),
                text: "setting superseded during failover".into(),
            },
            WalRecord::SweepBegin {
                id: 4,
                now: Timestamp(5000),
            },
            WalRecord::SweepDelete {
                id: 4,
                rows: Vec::new(),
            },
            WalRecord::SweepCommit {
                id: 4,
                now: Timestamp(5000),
                rows: 12,
                digest: "ab".repeat(32),
            },
            WalRecord::QuotaCharge {
                user: UserId(9),
                service: ServiceId::new("concierge"),
                purpose: tippers_ontology::Ontology::standard().concepts().navigation,
                now: Timestamp(77),
            },
        ];
        for record in records {
            let back = WalRecord::from_payload(&record.to_payload()).expect("round trip");
            assert_eq!(back, record);
        }
    }

    #[test]
    fn foreign_payloads_are_rejected_not_panicked() {
        assert!(WalRecord::from_payload(b"{\"Unknown\":{}}").is_none());
        assert!(WalRecord::from_payload(b"\xFF\xFE not utf8").is_none());
        assert!(WalRecord::from_payload(b"42").is_none());
    }
}
