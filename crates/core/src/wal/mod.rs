//! Crash-consistent durability for the BMS: an append-only,
//! CRC32-checksummed, length-prefixed write-ahead log over `Tippers`
//! mutations, with segment rotation and snapshot-anchored compaction.
//!
//! The paper's TIPPERS component is the system of record for captured
//! observations and user privacy settings — a lost privacy setting
//! silently reverts a user to default data collection, the exact harm
//! the framework exists to prevent. This module makes that state
//! durable and provably recoverable:
//!
//! * every public mutation appends one checksummed [`WalRecord`] and is
//!   synced before the call returns — a record boundary *is* a
//!   durability boundary;
//! * [`Tippers::checkpoint`](crate::Tippers::checkpoint) writes a
//!   full-state [`WalRecord::Checkpoint`] into a fresh segment and drops
//!   the older segments (compaction anchored on the snapshot);
//! * [`Tippers::open`](crate::Tippers::open) replays checkpoint + tail,
//!   and truncates at the first corrupt or torn record — counted in the
//!   [`RecoveryReport`], never silently accepted, never an error that
//!   strands the log.
//!
//! All I/O is routed through [`LogIo`], so every failure a disk can
//! produce is injectable via the fault plane ([`FaultyLog`]): torn
//! appends, flipped bits, dropped syncs, failed segment renames.

mod frame;
mod invalidate;
mod io;
mod record;

use std::fmt;

pub use frame::{crc32, record_boundaries, Corruption};
pub use invalidate::{InvalidationTail, SettingsMutation};
pub use io::{FaultyLog, FsLog, LogIo, MemLog};
pub use record::WalRecord;

use tippers_resilience::{FaultPlan, FaultPoint};

use crate::snapshot::SnapshotError;

/// Write-ahead-log tuning knobs.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Rotate to a fresh segment once the current one exceeds this many
    /// bytes (rotation bounds per-segment replay and loss-on-corruption).
    pub segment_max_bytes: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            segment_max_bytes: 1 << 20,
        }
    }
}

/// Why a write-ahead-log operation failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum WalError {
    /// The storage backend failed.
    Io(std::io::Error),
    /// A recovered record could not be applied — the log and the code
    /// replaying it disagree about semantics, which is never safe to
    /// paper over.
    Replay(String),
    /// A checkpoint's snapshot failed validation on recovery.
    Snapshot(SnapshotError),
    /// A checkpoint could not be published; the previous segments remain
    /// authoritative and the log keeps working.
    Checkpoint(String),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "write-ahead log I/O failed: {e}"),
            WalError::Replay(detail) => write!(f, "write-ahead log replay failed: {detail}"),
            WalError::Snapshot(e) => write!(f, "checkpoint snapshot rejected: {e}"),
            WalError::Checkpoint(detail) => write!(f, "checkpoint not published: {detail}"),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            WalError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

impl From<SnapshotError> for WalError {
    fn from(e: SnapshotError) -> Self {
        WalError::Snapshot(e)
    }
}

/// What recovery found and did while opening a log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Intact records replayed into the recovered BMS.
    pub records_replayed: u64,
    /// Corrupt/torn-tail truncation events (0 on a clean log). Anything
    /// non-zero means bytes were rejected — audited here, never silently
    /// accepted.
    pub truncated_tails: u64,
    /// Bytes discarded by truncation and by dropping post-corruption
    /// segments.
    pub bytes_discarded: u64,
    /// Whole segments discarded because they followed a corruption.
    pub segments_discarded: u64,
    /// Leftover checkpoint temp files discarded (a crash between
    /// checkpoint prepare and publish).
    pub tmp_segments_discarded: u64,
    /// Human-readable description of the first corruption, if any.
    pub corruption: Option<String>,
}

fn segment_name(seq: u64) -> String {
    format!("wal-{seq:010}.log")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if digits.len() != 10 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// The outcome of one group-committed batch append
/// ([`Wal::append_batch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommitReport {
    /// Records handed to the batch (each one its own checksummed frame, so
    /// recovery stays exact at every intra-batch record boundary).
    pub records: usize,
    /// Whether the amortized fsync completed. `false` means the sync
    /// stalled past its budget (injected via
    /// [`FaultPoint::GroupCommitFsyncStall`]): the log rewinds the
    /// segment to its pre-batch length — no later sync can resurrect the
    /// frames — and the caller must treat the batch as unadmitted: drop
    /// and audit, never report stored.
    pub synced: bool,
}

/// The append-only, segmented, checksummed mutation log.
#[derive(Debug)]
pub struct Wal {
    io: Box<dyn LogIo>,
    config: WalConfig,
    /// Live segment sequence numbers, ascending; the last is current.
    live: Vec<u64>,
    current_len: u64,
    /// Records appended since open (single and batched).
    appended_records: u64,
    /// Syncs issued since open — `appended_records / syncs` is the
    /// group-commit amortization factor.
    syncs: u64,
}

impl Wal {
    /// Opens a log over a storage backend, recovering its intact record
    /// prefix. Corrupt or torn tails are truncated (and every segment
    /// after the corruption dropped), counted in the report; leftover
    /// checkpoint temp files are discarded.
    ///
    /// # Errors
    ///
    /// Only genuine backend I/O failures error; corruption never does.
    pub fn open(
        io: Box<dyn LogIo>,
        config: WalConfig,
    ) -> Result<(Wal, Vec<WalRecord>, RecoveryReport), WalError> {
        let mut wal = Wal {
            io,
            config,
            live: Vec::new(),
            current_len: 0,
            appended_records: 0,
            syncs: 0,
        };
        let mut report = RecoveryReport::default();

        let mut seqs = Vec::new();
        for name in wal.io.list()? {
            if name.ends_with(".tmp") {
                // A checkpoint that was prepared but never published; the
                // rename is the commit point, so this is dead weight.
                wal.io.remove(&name)?;
                report.tmp_segments_discarded += 1;
            } else if let Some(seq) = parse_segment_name(&name) {
                seqs.push(seq);
            }
        }
        seqs.sort_unstable();

        // A missing middle segment (a crash can vaporize a whole file
        // whose sync never landed while later files survive) orphans
        // everything after it: those records' predecessors are gone, so
        // replaying them would fabricate a state no run ever had. Keep
        // only the contiguous leading run.
        let contiguous = (1..seqs.len())
            .find(|&i| seqs[i] != seqs[i - 1] + 1)
            .unwrap_or(seqs.len());
        if contiguous < seqs.len() {
            report.truncated_tails += 1;
            report.corruption = Some(format!(
                "segment sequence gap after {}",
                segment_name(seqs[contiguous - 1])
            ));
            for &seq in &seqs[contiguous..] {
                let name = segment_name(seq);
                report.bytes_discarded += wal.io.read(&name)?.len() as u64;
                wal.io.remove(&name)?;
                report.segments_discarded += 1;
            }
            seqs.truncate(contiguous);
        }

        let mut records = Vec::new();
        let mut corrupted_at: Option<usize> = None;
        for (i, &seq) in seqs.iter().enumerate() {
            let name = segment_name(seq);
            let bytes = wal.io.read(&name)?;
            let decoded = frame::decode_segment(&bytes);
            let mut valid_len = decoded.valid_len;
            let mut corruption = decoded.corruption;
            let mut start = 0usize;
            for (payload, &end) in decoded.payloads.iter().zip(&decoded.boundaries) {
                match WalRecord::from_payload(payload) {
                    Some(record) => records.push(record),
                    None => {
                        // Checksum held but the content is foreign:
                        // truncate at this record's start, same as any
                        // other corruption.
                        valid_len = start;
                        corruption = Some(Corruption::Undecodable);
                        break;
                    }
                }
                start = end;
            }
            if let Some(reason) = corruption {
                report.truncated_tails += 1;
                report.bytes_discarded += (bytes.len() - valid_len) as u64;
                report
                    .corruption
                    .get_or_insert_with(|| format!("{reason} in {name} at byte {valid_len}"));
                wal.io.truncate(&name, valid_len as u64)?;
                wal.current_len = valid_len as u64;
                corrupted_at = Some(i);
                break;
            }
            wal.current_len = bytes.len() as u64;
        }
        if let Some(i) = corrupted_at {
            // Everything after a corruption is unordered garbage relative
            // to the truncated prefix; drop it rather than replay records
            // whose predecessors are gone.
            for &seq in &seqs[i + 1..] {
                let name = segment_name(seq);
                report.bytes_discarded += wal.io.read(&name)?.len() as u64;
                wal.io.remove(&name)?;
                report.segments_discarded += 1;
            }
            seqs.truncate(i + 1);
        }
        if seqs.is_empty() {
            seqs.push(1);
            wal.current_len = 0;
        }
        wal.live = seqs;
        report.records_replayed = records.len() as u64;
        Ok((wal, records, report))
    }

    fn current_seq(&self) -> u64 {
        *self
            .live
            .last()
            .expect("a log always has a current segment")
    }

    /// The current segment's file name (diagnostics, tests).
    pub fn current_segment(&self) -> String {
        segment_name(self.current_seq())
    }

    /// Live segment file names, oldest first.
    pub fn segments(&self) -> Vec<String> {
        self.live.iter().map(|&s| segment_name(s)).collect()
    }

    /// Appends one record and syncs it — when this returns `Ok`, the
    /// record survives a crash. Rotates to a fresh segment when the
    /// current one is over [`WalConfig::segment_max_bytes`].
    ///
    /// # Errors
    ///
    /// Backend I/O failures (injected faults corrupt silently instead of
    /// erroring — they are caught by recovery's checksums, not here).
    pub fn append(&mut self, record: &WalRecord) -> Result<(), WalError> {
        let bytes = frame::encode(&record.to_payload());
        if self.current_len > 0
            && self.current_len + bytes.len() as u64 > self.config.segment_max_bytes
        {
            self.live.push(self.current_seq() + 1);
            self.current_len = 0;
        }
        let name = segment_name(self.current_seq());
        self.io.append(&name, &bytes)?;
        self.io.sync(&name)?;
        self.current_len += bytes.len() as u64;
        self.appended_records += 1;
        self.syncs += 1;
        Ok(())
    }

    /// Group-commits a batch: appends every record as its own checksummed
    /// frame, then issues a *single* sync for the whole batch — the fsync
    /// cost is amortized across the batch while recovery stays exact at
    /// every record boundary (each frame is atomic under its CRC, and a
    /// crash between frames recovers the intact prefix).
    ///
    /// Two capture-path faults are consulted on `plan`:
    ///
    /// * [`FaultPoint::IngestBatchTorn`] — only a prefix of the batch's
    ///   frames reaches the log, the last of them cut mid-frame. Silent,
    ///   like a real crash cut: only recovery sees it, and recovery keeps
    ///   each surviving record atomic.
    /// * [`FaultPoint::GroupCommitFsyncStall`] — the amortized sync never
    ///   completes. Reported via [`GroupCommitReport::synced`]`== false`
    ///   (a real stall is a timeout, which *is* observable): the caller
    ///   must treat the batch as unadmitted and drop-and-audit it. The
    ///   log rewinds the segment to its pre-batch length, so the
    ///   unproven frames can never become durable via a later batch's
    ///   sync and contradict that audit trail.
    ///
    /// # Errors
    ///
    /// Backend I/O failures.
    pub fn append_batch(
        &mut self,
        records: &[WalRecord],
        plan: &FaultPlan,
    ) -> Result<GroupCommitReport, WalError> {
        if records.is_empty() {
            return Ok(GroupCommitReport {
                records: 0,
                synced: true,
            });
        }
        let frames: Vec<Vec<u8>> = records
            .iter()
            .map(|r| frame::encode(&r.to_payload()))
            .collect();
        let total: u64 = frames.iter().map(|f| f.len() as u64).sum();
        // The whole batch lands in one segment (rotate up front if the
        // current one is full), so a batch never straddles a segment
        // boundary and recovery's per-segment scan sees it contiguously.
        if self.current_len > 0 && self.current_len + total > self.config.segment_max_bytes {
            self.live.push(self.current_seq() + 1);
            self.current_len = 0;
        }
        let name = segment_name(self.current_seq());
        let pre_len = self.current_len;
        let torn = plan.should_fail(FaultPoint::IngestBatchTorn);
        let surviving = if torn {
            let param = plan.param(FaultPoint::IngestBatchTorn);
            if param > 0 {
                (param as usize).min(frames.len() - 1)
            } else {
                frames.len() / 2
            }
        } else {
            frames.len()
        };
        for frame_bytes in &frames[..surviving] {
            self.io.append(&name, frame_bytes)?;
            self.current_len += frame_bytes.len() as u64;
        }
        if torn {
            // Cut the next frame mid-record: recovery must truncate it
            // whole (all-out), never replay a partial row set.
            let cut = &frames[surviving][..frames[surviving].len() / 2];
            if !cut.is_empty() {
                self.io.append(&name, cut)?;
                self.current_len += cut.len() as u64;
            }
        }
        if plan.should_fail(FaultPoint::GroupCommitFsyncStall) {
            // The sync stalled: the batch's durability cannot be proven,
            // and the caller will drop it as unadmitted. Fail closed in
            // the log too — rewind the segment to its pre-batch length so
            // a *later* batch's fsync can never quietly make these frames
            // durable and resurrect rows the audit trail says were
            // dropped.
            self.io.truncate(&name, pre_len)?;
            self.current_len = pre_len;
            return Ok(GroupCommitReport {
                records: records.len(),
                synced: false,
            });
        }
        self.appended_records += surviving as u64;
        self.io.sync(&name)?;
        self.syncs += 1;
        Ok(GroupCommitReport {
            records: records.len(),
            synced: true,
        })
    }

    /// Records appended since open (single and group-committed).
    pub fn appended_records(&self) -> u64 {
        self.appended_records
    }

    /// Syncs issued since open; `appended_records() / sync_count()` is the
    /// group-commit amortization factor.
    pub fn sync_count(&self) -> u64 {
        self.syncs
    }

    /// Writes an immutable auxiliary blob (e.g. a sealed audit segment)
    /// into the log directory and syncs it. Archive files share the
    /// [`LogIo`] backend — and therefore its injectable failure modes —
    /// but are invisible to recovery's segment scan (non-`wal-*` names are
    /// skipped) and to checkpoint compaction (which removes only live log
    /// segments).
    ///
    /// # Errors
    ///
    /// Backend I/O failures.
    pub fn archive(&mut self, name: &str, bytes: &[u8]) -> Result<(), WalError> {
        assert!(
            parse_segment_name(name).is_none() && !name.ends_with(".tmp"),
            "archive names must not collide with log segments"
        );
        self.io.append(name, bytes)?;
        self.io.sync(name)?;
        Ok(())
    }

    /// Reads every archived blob whose name starts with `prefix`, sorted
    /// by name (archive names embed zero-padded sequence numbers, so name
    /// order is chain order).
    ///
    /// # Errors
    ///
    /// Backend I/O failures.
    pub fn archived(&self, prefix: &str) -> Result<Vec<(String, Vec<u8>)>, WalError> {
        let mut names: Vec<String> = self
            .io
            .list()?
            .into_iter()
            .filter(|n| n.starts_with(prefix))
            .collect();
        names.sort();
        let mut out = Vec::with_capacity(names.len());
        for name in names {
            let bytes = self.io.read(&name)?;
            out.push((name, bytes));
        }
        Ok(out)
    }

    /// Publishes a checkpoint: writes `record` (which must carry the full
    /// durable state) into a fresh segment via a temp file, syncs and
    /// verifies it, atomically renames it live, then drops all older
    /// segments. On any failure the old segments remain authoritative.
    ///
    /// # Errors
    ///
    /// [`WalError::Checkpoint`] when the new segment could not be made
    /// durable or visible; the log keeps appending to the old segments.
    pub fn checkpoint(&mut self, record: &WalRecord) -> Result<(), WalError> {
        let new_seq = self.current_seq() + 1;
        let tmp = format!("{}.tmp", segment_name(new_seq));
        let name = segment_name(new_seq);
        let bytes = frame::encode(&record.to_payload());
        let _ = self.io.remove(&tmp); // stale leftover from a failed attempt
        self.io.append(&tmp, &bytes)?;
        self.io.sync(&tmp)?;
        // A dropped sync here would let us delete the only copy of the
        // state; verify durability before committing.
        if self.io.durable_len(&tmp).unwrap_or(0) != bytes.len() as u64 {
            let _ = self.io.remove(&tmp);
            return Err(WalError::Checkpoint(
                "checkpoint segment did not become durable (dropped sync)".into(),
            ));
        }
        if let Err(e) = self.io.rename(&tmp, &name) {
            let _ = self.io.remove(&tmp);
            return Err(WalError::Checkpoint(format!(
                "checkpoint segment rename failed: {e}"
            )));
        }
        // Rename is the commit point: from here the anchor is durable,
        // and older segments are superseded. A crash mid-removal leaves
        // stale segments that replay harmlessly (the checkpoint record
        // resets state).
        let old: Vec<u64> = self.live.drain(..).collect();
        self.live.push(new_seq);
        self.current_len = bytes.len() as u64;
        for seq in old {
            let _ = self.io.remove(&segment_name(seq));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tippers_policy::{PolicyId, Timestamp};

    fn open_mem(mem: &MemLog, max: u64) -> (Wal, Vec<WalRecord>, RecoveryReport) {
        Wal::open(
            Box::new(mem.clone()),
            WalConfig {
                segment_max_bytes: max,
            },
        )
        .expect("open")
    }

    fn sample(i: u64) -> WalRecord {
        WalRecord::RemovePolicy {
            policy: PolicyId(i),
        }
    }

    #[test]
    fn append_reopen_replays_in_order() {
        let mem = MemLog::new();
        let (mut wal, records, report) = open_mem(&mem, 1 << 20);
        assert!(records.is_empty());
        assert_eq!(report, RecoveryReport::default());
        for i in 0..5 {
            wal.append(&sample(i)).unwrap();
        }
        drop(wal);
        mem.crash();
        let (_, records, report) = open_mem(&mem, 1 << 20);
        assert_eq!(records.len(), 5);
        assert_eq!(report.records_replayed, 5);
        assert_eq!(report.truncated_tails, 0);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(*r, sample(i as u64));
        }
    }

    #[test]
    fn segments_rotate_and_replay_across_files() {
        let mem = MemLog::new();
        let (mut wal, _, _) = open_mem(&mem, 64);
        for i in 0..20 {
            wal.append(&sample(i)).unwrap();
        }
        assert!(wal.segments().len() > 1, "rotation must have happened");
        drop(wal);
        let (_, records, _) = open_mem(&mem, 64);
        assert_eq!(records.len(), 20);
    }

    #[test]
    fn torn_tail_is_truncated_and_counted() {
        let mem = MemLog::new();
        let (mut wal, _, _) = open_mem(&mem, 1 << 20);
        for i in 0..3 {
            wal.append(&sample(i)).unwrap();
        }
        let name = wal.current_segment();
        drop(wal);
        let bytes = mem.file_bytes(&name).unwrap();
        mem.set_file(&name, bytes[..bytes.len() - 3].to_vec());
        let (wal, records, report) = open_mem(&mem, 1 << 20);
        assert_eq!(records.len(), 2, "the torn final record is dropped");
        assert_eq!(report.truncated_tails, 1);
        assert!(report.bytes_discarded > 0);
        assert!(report.corruption.as_deref().unwrap().contains("torn"));
        // The file was physically truncated to the valid prefix.
        let healed = mem.file_bytes(&wal.current_segment()).unwrap();
        assert_eq!(frame::decode_segment(&healed).corruption, None);
    }

    #[test]
    fn corruption_drops_later_segments_too() {
        let mem = MemLog::new();
        let (mut wal, _, _) = open_mem(&mem, 64);
        for i in 0..20 {
            wal.append(&sample(i)).unwrap();
        }
        let first = wal.segments()[0].clone();
        let n_segments = wal.segments().len();
        assert!(n_segments > 2);
        drop(wal);
        let mut bytes = mem.file_bytes(&first).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        mem.set_file(&first, bytes);
        let (wal, records, report) = open_mem(&mem, 64);
        assert!(records.len() < 20);
        assert_eq!(report.truncated_tails, 1);
        assert_eq!(report.segments_discarded as usize, n_segments - 1);
        assert_eq!(wal.segments().len(), 1);
        // Replayed records are exactly the intact prefix.
        for (i, r) in records.iter().enumerate() {
            assert_eq!(*r, sample(i as u64));
        }
    }

    #[test]
    fn checkpoint_compacts_and_recovers() {
        let mem = MemLog::new();
        let (mut wal, _, _) = open_mem(&mem, 64);
        for i in 0..10 {
            wal.append(&sample(i)).unwrap();
        }
        assert!(wal.segments().len() > 1);
        wal.checkpoint(&sample(99)).unwrap();
        assert_eq!(wal.segments().len(), 1, "older segments compacted away");
        wal.append(&sample(100)).unwrap();
        drop(wal);
        let (_, records, report) = open_mem(&mem, 64);
        assert_eq!(records, vec![sample(99), sample(100)]);
        assert_eq!(report.truncated_tails, 0);
    }

    #[test]
    fn failed_checkpoint_rename_keeps_old_segments_authoritative() {
        use tippers_resilience::{FaultPlan, FaultPoint};
        let mem = MemLog::new();
        let plan = FaultPlan::seeded(5);
        let (mut wal, _, _) = Wal::open(
            Box::new(FaultyLog::new(mem.clone(), plan.clone())),
            WalConfig::default(),
        )
        .unwrap();
        for i in 0..4 {
            wal.append(&sample(i)).unwrap();
        }
        plan.arm_limited(FaultPoint::WalSegmentRename, 1.0, 1);
        let err = wal.checkpoint(&sample(99)).unwrap_err();
        assert!(matches!(err, WalError::Checkpoint(_)));
        // The log keeps working and nothing was lost.
        wal.append(&sample(4)).unwrap();
        drop(wal);
        let (_, records, report) = open_mem(&mem, 1 << 20);
        assert_eq!(records.len(), 5);
        assert_eq!(report.tmp_segments_discarded, 0, "tmp was cleaned up");
    }

    #[test]
    fn dropped_checkpoint_sync_is_detected_before_compaction() {
        use tippers_resilience::{FaultPlan, FaultPoint};
        let mem = MemLog::new();
        let plan = FaultPlan::seeded(6);
        let (mut wal, _, _) = Wal::open(
            Box::new(FaultyLog::new(mem.clone(), plan.clone())),
            WalConfig::default(),
        )
        .unwrap();
        for i in 0..4 {
            wal.append(&sample(i)).unwrap();
        }
        plan.arm(FaultPoint::WalSyncDrop, 1.0);
        let err = wal.checkpoint(&sample(99)).unwrap_err();
        assert!(matches!(err, WalError::Checkpoint(_)));
        plan.disarm(FaultPoint::WalSyncDrop);
        drop(wal);
        mem.crash();
        let (_, records, _) = open_mem(&mem, 1 << 20);
        assert_eq!(
            records.len(),
            4,
            "no record was lost to the failed checkpoint"
        );
    }

    #[test]
    fn segment_sequence_gap_drops_orphaned_tail() {
        let mem = MemLog::new();
        let (mut wal, _, _) = open_mem(&mem, 64);
        for i in 0..20 {
            wal.append(&sample(i)).unwrap();
        }
        let segments = wal.segments();
        assert!(segments.len() > 2);
        drop(wal);
        // Lose a middle segment wholesale (its sync never landed and the
        // crash removed the file) while later segments survive.
        let gap = &segments[1];
        let orphans: usize = segments[2..]
            .iter()
            .map(|n| mem.file_bytes(n).unwrap().len())
            .sum();
        let raw = MemLog::new();
        for name in mem.file_names() {
            if name != *gap {
                raw.set_file(&name, mem.file_bytes(&name).unwrap());
            }
        }
        let (wal, records, report) = open_mem(&raw, 64);
        assert_eq!(wal.segments().len(), 1, "only the leading run survives");
        assert_eq!(report.truncated_tails, 1);
        assert_eq!(report.segments_discarded as usize, segments.len() - 2);
        assert_eq!(report.bytes_discarded as usize, orphans);
        assert!(report.corruption.as_deref().unwrap().contains("gap"));
        // Replayed records are exactly the first segment's prefix.
        for (i, r) in records.iter().enumerate() {
            assert_eq!(*r, sample(i as u64));
        }
    }

    #[test]
    fn group_commit_amortizes_sync_and_replays_in_order() {
        use tippers_resilience::FaultPlan;
        let mem = MemLog::new();
        let (mut wal, _, _) = open_mem(&mem, 1 << 20);
        let batch: Vec<WalRecord> = (0..8).map(sample).collect();
        let report = wal.append_batch(&batch, &FaultPlan::disarmed()).unwrap();
        assert_eq!(report.records, 8);
        assert!(report.synced);
        assert_eq!(wal.appended_records(), 8);
        assert_eq!(wal.sync_count(), 1, "one fsync for the whole batch");
        drop(wal);
        mem.crash();
        let (_, records, report) = open_mem(&mem, 1 << 20);
        assert_eq!(records, batch);
        assert_eq!(report.truncated_tails, 0);
    }

    #[test]
    fn torn_batch_recovers_the_intact_record_prefix() {
        use tippers_resilience::{FaultPlan, FaultPoint};
        let mem = MemLog::new();
        let (mut wal, _, _) = open_mem(&mem, 1 << 20);
        let plan = FaultPlan::seeded(9);
        plan.arm_with_param(FaultPoint::IngestBatchTorn, 1.0, 3);
        let batch: Vec<WalRecord> = (0..8).map(sample).collect();
        wal.append_batch(&batch, &plan).unwrap();
        assert_eq!(plan.injected(FaultPoint::IngestBatchTorn), 1);
        drop(wal);
        mem.crash();
        let (_, records, report) = open_mem(&mem, 1 << 20);
        // Three full frames survived the tear; the cut fourth frame is
        // dropped whole — a record is all-in or all-out.
        assert_eq!(records, batch[..3].to_vec());
        assert_eq!(report.truncated_tails, 1);
        assert!(report.bytes_discarded > 0);
    }

    #[test]
    fn stalled_group_commit_sync_loses_the_batch_on_crash() {
        use tippers_resilience::{FaultPlan, FaultPoint};
        let mem = MemLog::new();
        let (mut wal, _, _) = open_mem(&mem, 1 << 20);
        wal.append(&sample(0)).unwrap();
        let plan = FaultPlan::seeded(4);
        plan.arm_limited(FaultPoint::GroupCommitFsyncStall, 1.0, 1);
        let batch: Vec<WalRecord> = (1..5).map(sample).collect();
        let report = wal.append_batch(&batch, &plan).unwrap();
        assert!(!report.synced, "the stall must be reported to the caller");
        drop(wal);
        mem.crash();
        let (_, records, _) = open_mem(&mem, 1 << 20);
        assert_eq!(
            records,
            vec![sample(0)],
            "the unsynced batch vanishes wholesale"
        );
    }

    #[test]
    fn stalled_batch_is_never_resurrected_by_a_later_sync() {
        use tippers_resilience::{FaultPlan, FaultPoint};
        let mem = MemLog::new();
        let (mut wal, _, _) = open_mem(&mem, 1 << 20);
        wal.append(&sample(0)).unwrap();
        let plan = FaultPlan::seeded(4);
        plan.arm_limited(FaultPoint::GroupCommitFsyncStall, 1.0, 1);
        let stalled: Vec<WalRecord> = (1..5).map(sample).collect();
        assert!(!wal.append_batch(&stalled, &plan).unwrap().synced);
        // A later batch commits successfully — its fsync must not drag
        // the rewound, unadmitted frames into durability with it.
        let committed: Vec<WalRecord> = (5..7).map(sample).collect();
        assert!(wal.append_batch(&committed, &plan).unwrap().synced);
        drop(wal);
        let (_, records, report) = open_mem(&mem, 1 << 20);
        assert_eq!(records, vec![sample(0), sample(5), sample(6)]);
        assert_eq!(report.truncated_tails, 0, "the rewind leaves no garbage");
    }

    #[test]
    fn group_commit_rotates_before_the_batch_not_inside_it() {
        use tippers_resilience::FaultPlan;
        let mem = MemLog::new();
        let (mut wal, _, _) = open_mem(&mem, 64);
        for i in 0..3 {
            wal.append(&sample(i)).unwrap();
        }
        let before = wal.segments().len();
        let batch: Vec<WalRecord> = (3..9).map(sample).collect();
        wal.append_batch(&batch, &FaultPlan::disarmed()).unwrap();
        assert_eq!(
            wal.segments().len(),
            before + 1,
            "the batch opened one fresh segment and stayed in it"
        );
        drop(wal);
        let (_, records, _) = open_mem(&mem, 64);
        assert_eq!(records.len(), 9);
    }

    #[test]
    fn gc_now_record_round_trips_through_log() {
        let mem = MemLog::new();
        let (mut wal, _, _) = open_mem(&mem, 1 << 20);
        let record = WalRecord::Gc {
            now: Timestamp(777),
        };
        wal.append(&record).unwrap();
        drop(wal);
        let (_, records, _) = open_mem(&mem, 1 << 20);
        assert_eq!(records, vec![record]);
    }

    #[test]
    fn archive_blobs_survive_recovery_and_checkpoint() {
        let mem = MemLog::new();
        let (mut wal, _, _) = open_mem(&mem, 1 << 20);
        wal.append(&sample(1)).unwrap();
        wal.archive("audit-0000000000.seg", b"sealed segment zero")
            .unwrap();
        wal.archive("audit-0000000064.seg", b"sealed segment one")
            .unwrap();

        // Invisible to the recovery scan: reopening replays only records.
        drop(wal);
        let (mut wal, records, report) = open_mem(&mem, 1 << 20);
        assert_eq!(records.len(), 1);
        assert_eq!(report.truncated_tails, 0);

        // Checkpoint compaction removes only live wal segments.
        let snapshot = crate::Tippers::new(
            tippers_ontology::Ontology::standard(),
            tippers_spatial::fixtures::dbh().model,
            crate::TippersConfig::default(),
        )
        .snapshot();
        wal.checkpoint(&WalRecord::Checkpoint {
            snapshot,
            policies: Vec::new(),
            next_policy_id: 0,
        })
        .unwrap();
        let archived = wal.archived("audit-").unwrap();
        assert_eq!(
            archived.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
            ["audit-0000000000.seg", "audit-0000000064.seg"],
            "archive ordering is name order"
        );
        assert_eq!(archived[0].1, b"sealed segment zero");
    }
}
