//! The write-ahead log's storage layer.
//!
//! All file I/O the log performs goes through the [`LogIo`] trait, so
//! every byte that would hit a disk is injectable: [`FsLog`] is the real
//! filesystem backend, [`MemLog`] is an in-memory backend with an
//! explicit durability line (for crash simulation), and [`FaultyLog`]
//! wraps either to apply the storage faults of a
//! [`FaultPlan`](tippers_resilience::FaultPlan) — torn appends, bit
//! flips, dropped syncs, and failed segment renames.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::Mutex;
use tippers_resilience::{FaultPlan, FaultPoint};

/// Byte-level storage for log segments.
///
/// Implementations model a directory of append-only files. `append`
/// reaches the backend's buffer; only `sync` makes the appended bytes
/// durable — a simulated crash loses everything after the last sync.
pub trait LogIo: fmt::Debug + Send {
    /// Names of all files present, in unspecified order.
    fn list(&self) -> io::Result<Vec<String>>;
    /// A file's full (buffered) contents.
    fn read(&self, name: &str) -> io::Result<Vec<u8>>;
    /// Appends bytes to a file, creating it if absent.
    fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<()>;
    /// Makes all bytes appended so far durable.
    fn sync(&mut self, name: &str) -> io::Result<()>;
    /// How many of a file's bytes are durable (would survive a crash).
    fn durable_len(&self, name: &str) -> io::Result<u64>;
    /// Truncates a file to `len` bytes.
    fn truncate(&mut self, name: &str, len: u64) -> io::Result<()>;
    /// Removes a file.
    fn remove(&mut self, name: &str) -> io::Result<()>;
    /// Atomically renames a file.
    fn rename(&mut self, from: &str, to: &str) -> io::Result<()>;
}

impl LogIo for Box<dyn LogIo> {
    fn list(&self) -> io::Result<Vec<String>> {
        (**self).list()
    }
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        (**self).read(name)
    }
    fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        (**self).append(name, bytes)
    }
    fn sync(&mut self, name: &str) -> io::Result<()> {
        (**self).sync(name)
    }
    fn durable_len(&self, name: &str) -> io::Result<u64> {
        (**self).durable_len(name)
    }
    fn truncate(&mut self, name: &str, len: u64) -> io::Result<()> {
        (**self).truncate(name, len)
    }
    fn remove(&mut self, name: &str) -> io::Result<()> {
        (**self).remove(name)
    }
    fn rename(&mut self, from: &str, to: &str) -> io::Result<()> {
        (**self).rename(from, to)
    }
}

/// Filesystem-backed log storage: one directory, one file per segment.
#[derive(Debug)]
pub struct FsLog {
    dir: PathBuf,
    handles: HashMap<String, fs::File>,
}

impl FsLog {
    /// Opens (creating if needed) a log directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<FsLog> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(FsLog {
            dir,
            handles: HashMap::new(),
        })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    fn handle(&mut self, name: &str) -> io::Result<&mut fs::File> {
        if !self.handles.contains_key(name) {
            let file = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.path(name))?;
            self.handles.insert(name.to_owned(), file);
        }
        Ok(self.handles.get_mut(name).expect("just inserted"))
    }
}

impl LogIo for FsLog {
    fn list(&self) -> io::Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        Ok(out)
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        fs::read(self.path(name))
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.handle(name)?.write_all(bytes)
    }

    fn sync(&mut self, name: &str) -> io::Result<()> {
        self.handle(name)?.sync_data()
    }

    fn durable_len(&self, name: &str) -> io::Result<u64> {
        Ok(fs::metadata(self.path(name))?.len())
    }

    fn truncate(&mut self, name: &str, len: u64) -> io::Result<()> {
        self.handles.remove(name);
        let file = fs::OpenOptions::new().write(true).open(self.path(name))?;
        file.set_len(len)?;
        file.sync_data()
    }

    fn remove(&mut self, name: &str) -> io::Result<()> {
        self.handles.remove(name);
        fs::remove_file(self.path(name))
    }

    fn rename(&mut self, from: &str, to: &str) -> io::Result<()> {
        self.handles.remove(from);
        self.handles.remove(to);
        fs::rename(self.path(from), self.path(to))
    }
}

#[derive(Debug, Clone, Default)]
struct MemFile {
    bytes: Vec<u8>,
    durable: usize,
}

/// In-memory log storage with an explicit durability line.
///
/// Appends land in the buffer; `sync` advances the durable watermark;
/// [`MemLog::crash`] discards everything past it (and files that were
/// never synced at all), simulating a process crash mid-write. Clones
/// share state, so a test can keep a handle, crash the "disk", and
/// recover from the same backend.
#[derive(Debug, Clone, Default)]
pub struct MemLog {
    files: Arc<Mutex<HashMap<String, MemFile>>>,
}

impl MemLog {
    /// An empty in-memory log directory.
    pub fn new() -> MemLog {
        MemLog::default()
    }

    /// Simulates a crash: un-synced bytes vanish, and files that never
    /// reached a successful sync vanish entirely.
    pub fn crash(&self) {
        let mut files = self.files.lock();
        files.retain(|_, f| f.durable > 0);
        for f in files.values_mut() {
            f.bytes.truncate(f.durable);
        }
    }

    /// A deep copy sharing nothing with `self` — the fuzz harness copies
    /// the directory at every record boundary and recovers each copy
    /// independently.
    pub fn deep_copy(&self) -> MemLog {
        MemLog {
            files: Arc::new(Mutex::new(self.files.lock().clone())),
        }
    }

    /// A file's current (buffered) contents, if it exists.
    pub fn file_bytes(&self, name: &str) -> Option<Vec<u8>> {
        self.files.lock().get(name).map(|f| f.bytes.clone())
    }

    /// All file names present.
    pub fn file_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.files.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// Overwrites a file's contents (and marks them durable) — the fuzz
    /// harness's tampering hook for torn tails and bit flips.
    pub fn set_file(&self, name: &str, bytes: Vec<u8>) {
        let durable = bytes.len();
        self.files
            .lock()
            .insert(name.to_owned(), MemFile { bytes, durable });
    }
}

impl LogIo for MemLog {
    fn list(&self) -> io::Result<Vec<String>> {
        Ok(self.files.lock().keys().cloned().collect())
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.files
            .lock()
            .get(name)
            .map(|f| f.bytes.clone())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_owned()))
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.files
            .lock()
            .entry(name.to_owned())
            .or_default()
            .bytes
            .extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self, name: &str) -> io::Result<()> {
        let mut files = self.files.lock();
        let file = files
            .get_mut(name)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_owned()))?;
        file.durable = file.bytes.len();
        Ok(())
    }

    fn durable_len(&self, name: &str) -> io::Result<u64> {
        self.files
            .lock()
            .get(name)
            .map(|f| f.durable as u64)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_owned()))
    }

    fn truncate(&mut self, name: &str, len: u64) -> io::Result<()> {
        let mut files = self.files.lock();
        let file = files
            .get_mut(name)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_owned()))?;
        file.bytes.truncate(len as usize);
        file.durable = file.durable.min(file.bytes.len());
        Ok(())
    }

    fn remove(&mut self, name: &str) -> io::Result<()> {
        self.files
            .lock()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_owned()))
    }

    fn rename(&mut self, from: &str, to: &str) -> io::Result<()> {
        let mut files = self.files.lock();
        let file = files
            .remove(from)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, from.to_owned()))?;
        files.insert(to.to_owned(), file);
        Ok(())
    }
}

/// Routes every I/O call through a [`FaultPlan`], applying the storage
/// fault points before delegating:
///
/// * [`FaultPoint::WalAppendTorn`] — only a prefix of the appended bytes
///   reaches the backend (param > 0 gives the prefix length, else half).
/// * [`FaultPoint::WalBitFlip`] — one bit of the appended bytes is
///   flipped (param selects the byte offset within the record).
/// * [`FaultPoint::WalSyncDrop`] — the sync silently does nothing, so a
///   crash loses the preceding appends.
/// * [`FaultPoint::WalSegmentRename`] — the rename fails with an error
///   (a checkpoint publication that never happened).
#[derive(Debug)]
pub struct FaultyLog<I: LogIo> {
    inner: I,
    plan: FaultPlan,
}

impl<I: LogIo> FaultyLog<I> {
    /// Wraps a backend with a fault plan (a disarmed plan adds one branch
    /// per call).
    pub fn new(inner: I, plan: FaultPlan) -> FaultyLog<I> {
        FaultyLog { inner, plan }
    }
}

impl<I: LogIo> LogIo for FaultyLog<I> {
    fn list(&self) -> io::Result<Vec<String>> {
        self.inner.list()
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.inner.read(name)
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        // Archived audit segments have their own corruption fault point:
        // flipping a bit inside sealed history is exactly the tampering
        // the chain's verification must catch, while the torn/flip faults
        // above model *log* failures recovery truncates away.
        if name.starts_with("audit-") {
            if self.plan.should_fail(FaultPoint::AuditBitFlip) && !bytes.is_empty() {
                let mut corrupted = bytes.to_vec();
                let offset = self.plan.param(FaultPoint::AuditBitFlip).unsigned_abs() as usize
                    % corrupted.len();
                corrupted[offset] ^= 1 << (offset % 8);
                return self.inner.append(name, &corrupted);
            }
            return self.inner.append(name, bytes);
        }
        if self.plan.should_fail(FaultPoint::WalAppendTorn) {
            let param = self.plan.param(FaultPoint::WalAppendTorn);
            let keep = if param > 0 {
                (param as usize).min(bytes.len())
            } else {
                bytes.len() / 2
            };
            return self.inner.append(name, &bytes[..keep]);
        }
        if self.plan.should_fail(FaultPoint::WalBitFlip) && !bytes.is_empty() {
            let mut corrupted = bytes.to_vec();
            let offset =
                self.plan.param(FaultPoint::WalBitFlip).unsigned_abs() as usize % corrupted.len();
            corrupted[offset] ^= 1 << (offset % 8);
            return self.inner.append(name, &corrupted);
        }
        self.inner.append(name, bytes)
    }

    fn sync(&mut self, name: &str) -> io::Result<()> {
        if self.plan.should_fail(FaultPoint::WalSyncDrop) {
            return Ok(());
        }
        self.inner.sync(name)
    }

    fn durable_len(&self, name: &str) -> io::Result<u64> {
        self.inner.durable_len(name)
    }

    fn truncate(&mut self, name: &str, len: u64) -> io::Result<()> {
        self.inner.truncate(name, len)
    }

    fn remove(&mut self, name: &str) -> io::Result<()> {
        self.inner.remove(name)
    }

    fn rename(&mut self, from: &str, to: &str) -> io::Result<()> {
        if self.plan.should_fail(FaultPoint::WalSegmentRename) {
            return Err(io::Error::other("injected segment-rename failure"));
        }
        self.inner.rename(from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_log_crash_drops_unsynced_tail() {
        let mut log = MemLog::new();
        log.append("a", b"durable").unwrap();
        log.sync("a").unwrap();
        log.append("a", b"+lost").unwrap();
        log.append("b", b"never synced").unwrap();
        log.crash();
        assert_eq!(log.read("a").unwrap(), b"durable");
        assert!(log.read("b").is_err(), "unsynced file vanishes on crash");
    }

    #[test]
    fn mem_log_deep_copy_is_independent() {
        let mut log = MemLog::new();
        log.append("a", b"one").unwrap();
        log.sync("a").unwrap();
        let copy = log.deep_copy();
        log.append("a", b"+two").unwrap();
        assert_eq!(copy.read("a").unwrap(), b"one");
    }

    #[test]
    fn fs_log_round_trips_on_disk() {
        let dir = std::env::temp_dir().join(format!("tippers-fslog-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        {
            let mut log = FsLog::open(dir.clone()).unwrap();
            log.append("seg", b"hello ").unwrap();
            log.append("seg", b"world").unwrap();
            log.sync("seg").unwrap();
            assert_eq!(log.durable_len("seg").unwrap(), 11);
            log.append("tmp", b"next").unwrap();
            log.sync("tmp").unwrap();
            log.rename("tmp", "seg2").unwrap();
        }
        // A fresh handle (the post-restart view) sees the same bytes.
        let mut log = FsLog::open(dir.clone()).unwrap();
        let mut names = log.list().unwrap();
        names.sort();
        assert_eq!(names, ["seg", "seg2"]);
        assert_eq!(log.read("seg").unwrap(), b"hello world");
        assert_eq!(log.read("seg2").unwrap(), b"next");
        log.truncate("seg", 5).unwrap();
        assert_eq!(log.read("seg").unwrap(), b"hello");
        log.remove("seg2").unwrap();
        assert_eq!(log.list().unwrap(), ["seg"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn faulty_log_tears_and_flips() {
        let plan = FaultPlan::seeded(1);
        plan.arm_limited(FaultPoint::WalAppendTorn, 1.0, 1);
        let mut log = FaultyLog::new(MemLog::new(), plan.clone());
        log.append("a", b"0123456789").unwrap();
        assert_eq!(log.read("a").unwrap(), b"01234", "half the record survives");

        plan.arm_with_param(FaultPoint::WalBitFlip, 1.0, 2);
        log.append("a", b"abcd").unwrap();
        let bytes = log.read("a").unwrap();
        assert_eq!(bytes.len(), 9);
        assert_eq!(bytes[5 + 2], b'c' ^ (1 << 2), "bit 2 of byte 2 flipped");
    }

    #[test]
    fn faulty_log_drops_syncs_and_fails_renames() {
        let plan = FaultPlan::seeded(2);
        plan.arm(FaultPoint::WalSyncDrop, 1.0);
        let mem = MemLog::new();
        let mut log = FaultyLog::new(mem.clone(), plan.clone());
        log.append("a", b"buffered").unwrap();
        log.sync("a").unwrap();
        assert_eq!(log.durable_len("a").unwrap(), 0, "sync was dropped");
        mem.crash();
        assert!(log.read("a").is_err());

        plan.arm(FaultPoint::WalSegmentRename, 1.0);
        log.append("x", b"tmp").unwrap();
        assert!(log.rename("x", "y").is_err());
    }
}
