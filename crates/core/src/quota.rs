//! Per-(user, service, purpose) disclosure budgets.
//!
//! Notice-and-choice caps *which* flows may happen; quotas cap *how much*
//! of them. A service that keeps re-querying the same subject under the
//! same purpose eventually assembles a trajectory no single release would
//! have revealed, so the release path charges one budget unit per
//! permitted subject result and fails closed once the budget is spent
//! ([`crate::DecisionBasis::QuotaExceeded`]).
//!
//! The ledger is durable state: every charge is WAL-logged before rows
//! leave the building, the ledger rides in snapshots, and replicas rebuild
//! it by replaying the shipped `QuotaCharge` records — so a crash,
//! checkpoint, or epoch-fenced failover can never reset a budget.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use tippers_ontology::ConceptId;
use tippers_policy::{ServiceId, Timestamp, UserId};

/// Disclosure-budget policy for one deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotaConfig {
    /// Permitted releases per (user, service, purpose) per window.
    pub budget: u32,
    /// Budget window in virtual seconds (`None` = one eternal window).
    /// Windows are aligned bucket boundaries of the virtual clock, so
    /// every node rolls a counter over at the same instant.
    pub window_secs: Option<i64>,
}

impl QuotaConfig {
    /// The window bucket `now` falls into (0 when windowless).
    fn bucket(&self, now: Timestamp) -> i64 {
        match self.window_secs {
            Some(w) if w > 0 => now.seconds().div_euclid(w) * w,
            _ => 0,
        }
    }
}

/// One (user, service, purpose) counter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuotaCounter {
    /// Start of the window this count belongs to.
    pub window_start: i64,
    /// Charges within the window.
    pub used: u32,
}

/// The durable disclosure-budget ledger.
///
/// Keys are `"{user}|{service}|{purpose}"` — a `BTreeMap` so serialization
/// (and therefore snapshots and cross-node equality) is order-independent.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QuotaLedger {
    counters: BTreeMap<String, QuotaCounter>,
}

fn key(user: UserId, service: &ServiceId, purpose: ConceptId) -> String {
    format!("{}|{}|{}", user.0, service.as_str(), purpose.index())
}

impl QuotaLedger {
    /// An empty ledger.
    pub fn new() -> QuotaLedger {
        QuotaLedger::default()
    }

    /// Charges consumed by `(user, service, purpose)` in the window
    /// containing `now` (0 if the counter is in an older window).
    pub fn used(
        &self,
        user: UserId,
        service: &ServiceId,
        purpose: ConceptId,
        now: Timestamp,
        config: QuotaConfig,
    ) -> u32 {
        self.counters
            .get(&key(user, service, purpose))
            .filter(|c| c.window_start == config.bucket(now))
            .map_or(0, |c| c.used)
    }

    /// True if one more charge would exceed the budget.
    pub fn exhausted(
        &self,
        user: UserId,
        service: &ServiceId,
        purpose: ConceptId,
        now: Timestamp,
        config: QuotaConfig,
    ) -> bool {
        self.used(user, service, purpose, now, config) >= config.budget
    }

    /// Consumes one budget unit, rolling the counter into `now`'s window
    /// first if it belongs to an older one.
    pub fn charge(
        &mut self,
        user: UserId,
        service: &ServiceId,
        purpose: ConceptId,
        now: Timestamp,
        config: QuotaConfig,
    ) {
        let bucket = config.bucket(now);
        let counter = self
            .counters
            .entry(key(user, service, purpose))
            .or_insert(QuotaCounter {
                window_start: bucket,
                used: 0,
            });
        if counter.window_start != bucket {
            counter.window_start = bucket;
            counter.used = 0;
        }
        counter.used += 1;
    }

    /// Reverts one charge — only for the fail-closed path where the
    /// charge's durable record was lost: an uncharged counter must mean an
    /// undisclosed row, never the other way around.
    pub fn rollback(&mut self, user: UserId, service: &ServiceId, purpose: ConceptId) {
        if let Some(counter) = self.counters.get_mut(&key(user, service, purpose)) {
            counter.used = counter.used.saturating_sub(1);
        }
    }

    /// Total charges across all counters' current windows (diagnostics).
    pub fn total_used(&self) -> u64 {
        self.counters.values().map(|c| u64::from(c.used)).sum()
    }

    /// Number of distinct (user, service, purpose) counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True if no counter exists.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tippers_ontology::Ontology;

    fn setup() -> (UserId, ServiceId, ConceptId) {
        let ont = Ontology::standard();
        (
            UserId(3),
            ServiceId::new("concierge"),
            ont.concepts().navigation,
        )
    }

    #[test]
    fn budget_exhausts_and_windows_roll() {
        let (user, service, purpose) = setup();
        let config = QuotaConfig {
            budget: 2,
            window_secs: Some(3600),
        };
        let mut ledger = QuotaLedger::new();
        let now = Timestamp(100);
        assert!(!ledger.exhausted(user, &service, purpose, now, config));
        ledger.charge(user, &service, purpose, now, config);
        ledger.charge(user, &service, purpose, now, config);
        assert!(ledger.exhausted(user, &service, purpose, now, config));
        // The next window grants a fresh budget.
        let later = Timestamp(3700);
        assert!(!ledger.exhausted(user, &service, purpose, later, config));
        assert_eq!(ledger.used(user, &service, purpose, later, config), 0);
        ledger.charge(user, &service, purpose, later, config);
        assert_eq!(ledger.used(user, &service, purpose, later, config), 1);
    }

    #[test]
    fn windowless_budgets_never_reset() {
        let (user, service, purpose) = setup();
        let config = QuotaConfig {
            budget: 1,
            window_secs: None,
        };
        let mut ledger = QuotaLedger::new();
        ledger.charge(user, &service, purpose, Timestamp(5), config);
        assert!(ledger.exhausted(user, &service, purpose, Timestamp(1_000_000_000), config));
    }

    #[test]
    fn rollback_reverts_exactly_one_charge() {
        let (user, service, purpose) = setup();
        let config = QuotaConfig {
            budget: 1,
            window_secs: None,
        };
        let mut ledger = QuotaLedger::new();
        ledger.charge(user, &service, purpose, Timestamp(5), config);
        assert!(ledger.exhausted(user, &service, purpose, Timestamp(5), config));
        ledger.rollback(user, &service, purpose);
        assert!(!ledger.exhausted(user, &service, purpose, Timestamp(5), config));
        // Rollback on an untouched ledger is a no-op, not a panic.
        ledger.rollback(UserId(99), &service, purpose);
    }

    #[test]
    fn ledger_round_trips_serde() {
        let (user, service, purpose) = setup();
        let config = QuotaConfig {
            budget: 5,
            window_secs: Some(60),
        };
        let mut ledger = QuotaLedger::new();
        ledger.charge(user, &service, purpose, Timestamp(61), config);
        let json = serde_json::to_string(&ledger).unwrap();
        let back: QuotaLedger = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ledger);
        assert_eq!(back.used(user, &service, purpose, Timestamp(61), config), 1);
    }
}
