//! Deterministic shard routing: (zone, user-id hash) → shard.
//!
//! Subject-keyed state (preferences, stored rows, quota counters,
//! notifications) is owned by the shard of the data subject's hashed
//! user id; subjectless observations (ambient temperature, door state)
//! are owned by the shard of their capture zone. Both run through
//! Lamport & Veach's *jump consistent hash*, so the mapping is total
//! and deterministic, and growing the shard count from `n` to `n + 1`
//! moves only ~`1/(n + 1)` of the keys onto the new shard — the
//! "minimal rehashed residue" the routing property tests pin down.
//!
//! Operators can pin individual capture zones to specific shards
//! ([`ShardRouter::with_zone_pins`], declared via
//! [`crate::ShardSpec::zone_pins`]); a pinned zone's subjectless
//! observations always land on its pinned shard, everything else hash-
//! routes. Analyzer lint TA016 validates the same pin table before
//! deployment, so the audited topology and the deployed routing agree.

use std::collections::HashMap;
use std::sync::Arc;

use tippers_policy::UserId;
use tippers_spatial::SpaceId;

/// SplitMix64 finalizer: spreads sequential ids (user ids are dense
/// small integers) over the full 64-bit key space before jump hashing.
fn splitmix64(seed: u64) -> u64 {
    let mut x = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Jump consistent hash (Lamport & Veach, 2014): maps `key` to a bucket
/// in `0..buckets` such that growing `buckets` by one relocates each key
/// with probability `1 / (buckets + 1)`, and only ever *onto the new
/// bucket* — never between existing buckets.
///
/// # Panics
///
/// Panics when `buckets` is zero (there is no fail-closed answer to
/// "which shard?" with no shards; analyzer lint TA016 rejects zero-shard
/// topologies before deployment).
#[allow(
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss
)]
pub fn jump_hash(key: u64, buckets: u32) -> u32 {
    assert!(buckets > 0, "jump_hash needs at least one bucket");
    let mut state = key;
    let mut bucket: i64 = -1;
    let mut next: i64 = 0;
    while next < i64::from(buckets) {
        bucket = next;
        state = state
            .wrapping_mul(2_862_933_555_777_941_757)
            .wrapping_add(1);
        next =
            ((bucket + 1) as f64 * (f64::from(1u32 << 31) / (((state >> 33) + 1) as f64))) as i64;
    }
    bucket as u32
}

// Distinct salts keep the user and zone key spaces independent: a user id
// that happens to equal a zone index must not be forced onto its shard.
const USER_SALT: u64 = 0x7469_7070_6572_7375;
const ZONE_SALT: u64 = 0x7469_7070_6572_737a;

/// Routes users and capture zones to shards. Pure and cheap to clone:
/// every component (router, supervisor, analyzer lint, tests) computes
/// the same owner for the same key and the same pin table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRouter {
    shards: u32,
    /// Zone-index → shard overrides; zones absent here hash-route.
    zone_pins: Arc<HashMap<usize, usize>>,
}

impl ShardRouter {
    /// A router over `shards` shards, hash-routing everything.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero or does not fit in `u32`.
    pub fn new(shards: usize) -> ShardRouter {
        ShardRouter::with_zone_pins(shards, [])
    }

    /// A router over `shards` shards whose pinned capture zones route to
    /// their declared shard instead of hashing — the runtime counterpart
    /// of the pin table analyzer lint TA016 audits.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero, does not fit in `u32`, a pin names
    /// a shard outside `0..shards`, or one zone is pinned to two
    /// different shards (TA016 rejects both topologies pre-deployment;
    /// a runtime that silently ignored them would route observations
    /// the audited topology never covered).
    pub fn with_zone_pins(
        shards: usize,
        pins: impl IntoIterator<Item = (SpaceId, usize)>,
    ) -> ShardRouter {
        let shards_u32 = u32::try_from(shards).expect("shard count fits in u32");
        assert!(shards_u32 > 0, "a sharded runtime needs at least one shard");
        let mut zone_pins = HashMap::new();
        for (zone, shard) in pins {
            assert!(
                shard < shards,
                "zone {zone} is pinned to shard {shard} but only {shards} shards are declared"
            );
            if let Some(prev) = zone_pins.insert(zone.index(), shard) {
                assert_eq!(
                    prev, shard,
                    "zone {zone} is pinned to both shard {prev} and shard {shard}"
                );
            }
        }
        ShardRouter {
            shards: shards_u32,
            zone_pins: Arc::new(zone_pins),
        }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards as usize
    }

    /// The shard owning a data subject's state.
    pub fn shard_of_user(&self, user: UserId) -> usize {
        jump_hash(splitmix64(user.0 ^ USER_SALT), self.shards) as usize
    }

    /// The shard owning a capture zone's subjectless observations:
    /// the zone's pin when one is declared, otherwise hash routing.
    pub fn shard_of_zone(&self, zone: SpaceId) -> usize {
        if let Some(&pinned) = self.zone_pins.get(&zone.index()) {
            return pinned;
        }
        jump_hash(splitmix64(zone.index() as u64 ^ ZONE_SALT), self.shards) as usize
    }

    /// The declared pin for a zone, if any.
    pub fn zone_pin(&self, zone: SpaceId) -> Option<usize> {
        self.zone_pins.get(&zone.index()).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: u64 = 100_000;

    #[test]
    fn routing_is_deterministic_and_total() {
        for shards in [1usize, 2, 3, 8, 64] {
            let a = ShardRouter::new(shards);
            let b = ShardRouter::new(shards);
            for user in 0..SAMPLE {
                let got = a.shard_of_user(UserId(user));
                // Total: exactly one shard, always in range.
                assert!(got < shards, "user {user} routed to {got} of {shards}");
                // Deterministic: identical across router instances.
                assert_eq!(got, b.shard_of_user(UserId(user)));
            }
        }
    }

    #[test]
    fn one_shard_owns_everything() {
        let r = ShardRouter::new(1);
        for user in 0..1000 {
            assert_eq!(r.shard_of_user(UserId(user)), 0);
        }
    }

    #[test]
    fn growth_moves_only_the_minimal_residue_onto_the_new_shard() {
        for shards in [1usize, 2, 4, 8, 16] {
            let old = ShardRouter::new(shards);
            let new = ShardRouter::new(shards + 1);
            let mut moved = 0u64;
            for user in 0..SAMPLE {
                let was = old.shard_of_user(UserId(user));
                let is = new.shard_of_user(UserId(user));
                if was != is {
                    // Stability: a relocated key lands on the *new* shard,
                    // never between surviving shards.
                    assert_eq!(is, shards, "user {user} moved {was} -> {is}");
                    moved += 1;
                }
            }
            // Minimal residue: ~1/(n+1) of keys move, within 25% relative
            // tolerance at this sample size.
            let expected = SAMPLE / (shards as u64 + 1);
            assert!(
                moved > expected - expected / 4 && moved < expected + expected / 4,
                "{moved} of {SAMPLE} keys moved at {shards} -> {} (expected ~{expected})",
                shards + 1
            );
        }
    }

    #[test]
    fn load_is_roughly_balanced() {
        let shards = 8usize;
        let r = ShardRouter::new(shards);
        let mut counts = vec![0u64; shards];
        for user in 0..SAMPLE {
            counts[r.shard_of_user(UserId(user))] += 1;
        }
        let ideal = SAMPLE / shards as u64;
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                count > ideal * 9 / 10 && count < ideal * 11 / 10,
                "shard {shard} owns {count} of {SAMPLE} (ideal {ideal})"
            );
        }
    }

    #[test]
    fn pinned_zones_route_to_their_pin_and_nothing_else_changes() {
        let model = tippers_spatial::fixtures::dbh().model;
        let zones: Vec<SpaceId> = model.iter().map(tippers_spatial::Space::id).collect();
        let pinned = zones[0];
        let unpinned = ShardRouter::new(8);
        let target = (unpinned.shard_of_zone(pinned) + 1) % 8;
        let router = ShardRouter::with_zone_pins(8, [(pinned, target)]);
        assert_eq!(router.shard_of_zone(pinned), target);
        assert_eq!(router.zone_pin(pinned), Some(target));
        for &zone in &zones[1..] {
            assert_eq!(router.shard_of_zone(zone), unpinned.shard_of_zone(zone));
            assert_eq!(router.zone_pin(zone), None);
        }
        // User routing is never pinned.
        for user in 0..1000 {
            assert_eq!(
                router.shard_of_user(UserId(user)),
                unpinned.shard_of_user(UserId(user))
            );
        }
    }

    #[test]
    #[should_panic(expected = "pinned to shard 4 but only 4 shards")]
    fn out_of_range_pin_refuses_to_start() {
        let model = tippers_spatial::fixtures::dbh().model;
        let zone = model.iter().map(tippers_spatial::Space::id).next().unwrap();
        let _ = ShardRouter::with_zone_pins(4, [(zone, 4)]);
    }

    #[test]
    #[should_panic(expected = "pinned to both shard")]
    fn split_pin_refuses_to_start() {
        let model = tippers_spatial::fixtures::dbh().model;
        let zone = model.iter().map(tippers_spatial::Space::id).next().unwrap();
        let _ = ShardRouter::with_zone_pins(4, [(zone, 0), (zone, 2)]);
    }

    #[test]
    fn zone_routing_is_total_and_stable_under_growth() {
        let model = tippers_spatial::fixtures::dbh().model;
        for shards in [1usize, 2, 8] {
            let old = ShardRouter::new(shards);
            let new = ShardRouter::new(shards + 1);
            for zone in model.iter().map(tippers_spatial::Space::id) {
                let was = old.shard_of_zone(zone);
                assert!(was < shards);
                let is = new.shard_of_zone(zone);
                assert!(is == was || is == shards, "zone moved {was} -> {is}");
            }
        }
    }
}
