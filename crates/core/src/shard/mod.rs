//! Sharded, crash-isolated enforcement (§15 of the design).
//!
//! Partitions enforcement state by (zone, user-id hash) across shards,
//! each a full [`Tippers`] engine behind a panic/stall isolation
//! boundary on its own worker thread. The [`EnforcementCore`] trait is
//! the common surface: callers write to it once and run unsharded
//! (single [`Tippers`]) or sharded ([`ShardedTippers`]) without code
//! changes — and the `shard_differential` suite holds the two
//! byte-identical on every decision.
//!
//! * [`route`]: jump-consistent-hash routing — deterministic, total,
//!   minimal movement under shard-count changes — plus operator zone
//!   pins (validated by analyzer lint TA016, honored at runtime).
//! * [`fence`]: writer-epoch fencing of shard WAL partitions, so an
//!   abandoned slow worker can never write concurrently with the
//!   engine rebuilt to replace it.
//! * [`supervisor`]: the quarantine / backoff / rebuild state machine
//!   and its observability counters.
//! * [`runtime`]: the [`ShardedTippers`] router and worker pool.

mod fence;
mod route;
mod runtime;
mod supervisor;

pub use route::{jump_hash, ShardRouter};
pub use runtime::{ShardSpec, ShardedTippers};
pub use supervisor::{ShardHealth, ShardStats};

use tippers_policy::{BuildingPolicy, PolicyId, PreferenceId, Timestamp, UserId, UserPreference};
use tippers_resilience::HealthStatus;
use tippers_sensors::{Observation, Occupant};

use crate::audit::UserNotification;
use crate::preference_manager::SettingsError;
use crate::request::{DataRequest, DataResponse};
use crate::tippers::Tippers;

// The hot decision-path types cross thread boundaries in the sharded
// runtime: worker threads own full engines, and jobs/results (carrying
// snapshots, indexes, decisions) ship over channels. These compile-time
// bounds are load-bearing — a non-Send field anywhere in the engine
// breaks the build here, not at a confusing `thread::spawn` call site.
const _: () = {
    const fn send_and_sync<T: Send + Sync>() {}
    const fn send<T: Send>() {}
    send_and_sync::<crate::Snapshot>();
    send_and_sync::<crate::IndexedEnforcer>();
    send_and_sync::<crate::NaiveEnforcer>();
    send_and_sync::<tippers_policy::ConflictIndex>();
    send_and_sync::<crate::PolicyManager>();
    send_and_sync::<crate::PreferenceManager>();
    send::<Tippers>();
    send::<ShardedTippers>();
};

/// The enforcement surface shared by the single-engine and sharded
/// runtimes.
///
/// Everything a building deployment drives — policy lifecycle,
/// preference intake, occupant registration, sensor ingest, request
/// enforcement, notification delivery, retention sweeps, health — with
/// identical semantics on both implementations (modulo the documented
/// fail-closed degradation a sharded runtime adds while a shard is
/// quarantined).
pub trait EnforcementCore {
    /// Adds a policy; returns its assigned id.
    fn add_policy(&mut self, policy: BuildingPolicy) -> PolicyId;

    /// Removes a policy; true when it existed.
    fn remove_policy(&mut self, id: PolicyId) -> bool;

    /// Stores a user preference; returns its assigned id.
    fn submit_preference(&mut self, pref: UserPreference, now: Timestamp) -> PreferenceId;

    /// Applies an IoTA policy-setting choice, deriving a preference.
    ///
    /// # Errors
    ///
    /// [`SettingsError`] when the policy, setting, or option is unknown —
    /// or, sharded, when the owning shard is quarantined (fail-closed,
    /// nothing applied).
    fn apply_setting_choice(
        &mut self,
        user: UserId,
        policy: PolicyId,
        setting_key: &str,
        option_index: usize,
    ) -> Result<PreferenceId, SettingsError>;

    /// Registers building occupants (group membership, device MACs).
    fn register_occupants(&mut self, occupants: &[Occupant]);

    /// Ingests sensor observations; returns `(stored, dropped)`.
    fn ingest(&mut self, observations: &[Observation]) -> (usize, usize);

    /// Enforces one service data request.
    fn handle_request(&mut self, request: &DataRequest, now: Timestamp) -> DataResponse;

    /// Drains a user's pending notifications.
    fn take_notifications(&mut self, user: UserId) -> Vec<UserNotification>;

    /// Runs a retention sweep; returns rows deleted.
    fn sweep(&mut self, now: Timestamp) -> usize;

    /// Current runtime health.
    fn health(&self) -> HealthStatus;
}

impl EnforcementCore for Tippers {
    fn add_policy(&mut self, policy: BuildingPolicy) -> PolicyId {
        Tippers::add_policy(self, policy)
    }

    fn remove_policy(&mut self, id: PolicyId) -> bool {
        Tippers::remove_policy(self, id)
    }

    fn submit_preference(&mut self, pref: UserPreference, now: Timestamp) -> PreferenceId {
        Tippers::submit_preference(self, pref, now)
    }

    fn apply_setting_choice(
        &mut self,
        user: UserId,
        policy: PolicyId,
        setting_key: &str,
        option_index: usize,
    ) -> Result<PreferenceId, SettingsError> {
        Tippers::apply_setting_choice(self, user, policy, setting_key, option_index)
    }

    fn register_occupants(&mut self, occupants: &[Occupant]) {
        Tippers::register_occupants(self, occupants);
    }

    fn ingest(&mut self, observations: &[Observation]) -> (usize, usize) {
        Tippers::ingest(self, observations)
    }

    fn handle_request(&mut self, request: &DataRequest, now: Timestamp) -> DataResponse {
        Tippers::handle_request(self, request, now)
    }

    fn take_notifications(&mut self, user: UserId) -> Vec<UserNotification> {
        Tippers::take_notifications(self, user)
    }

    fn sweep(&mut self, now: Timestamp) -> usize {
        Tippers::sweep(self, now)
    }

    fn health(&self) -> HealthStatus {
        Tippers::health(self)
    }
}

impl EnforcementCore for ShardedTippers {
    fn add_policy(&mut self, policy: BuildingPolicy) -> PolicyId {
        ShardedTippers::add_policy(self, policy)
    }

    fn remove_policy(&mut self, id: PolicyId) -> bool {
        ShardedTippers::remove_policy(self, id)
    }

    fn submit_preference(&mut self, pref: UserPreference, now: Timestamp) -> PreferenceId {
        ShardedTippers::submit_preference(self, pref, now)
    }

    fn apply_setting_choice(
        &mut self,
        user: UserId,
        policy: PolicyId,
        setting_key: &str,
        option_index: usize,
    ) -> Result<PreferenceId, SettingsError> {
        ShardedTippers::apply_setting_choice(self, user, policy, setting_key, option_index)
    }

    fn register_occupants(&mut self, occupants: &[Occupant]) {
        ShardedTippers::register_occupants(self, occupants);
    }

    fn ingest(&mut self, observations: &[Observation]) -> (usize, usize) {
        ShardedTippers::ingest(self, observations)
    }

    fn handle_request(&mut self, request: &DataRequest, now: Timestamp) -> DataResponse {
        ShardedTippers::handle_request(self, request, now)
    }

    fn take_notifications(&mut self, user: UserId) -> Vec<UserNotification> {
        ShardedTippers::take_notifications(self, user)
    }

    fn sweep(&mut self, now: Timestamp) -> usize {
        ShardedTippers::sweep(self, now)
    }

    fn health(&self) -> HealthStatus {
        ShardedTippers::health(self)
    }
}
