//! The multi-threaded sharded runtime: a router/supervisor in front of
//! `N` per-shard [`Tippers`] engines, each owned by a worker thread
//! behind a `catch_unwind` crash-isolation boundary.
//!
//! # Executors
//!
//! All concurrency goes through the executor-agnostic facade in
//! [`tippers_resilience::sim`]: worker spawn/join, the job and reply
//! channels, the watchdog's `recv_timeout`, and the monotonic clock
//! behind recovery timings. Constructed on plain OS threads the facade
//! is `std::thread` + `std::sync::mpsc` and the watchdog backstop is
//! real time — byte-identical behavior to the pre-facade runtime.
//! Constructed inside a [`tippers_resilience::sim::SimExecutor`] task,
//! the same runtime becomes a deterministic simulation: the watchdog
//! counts *virtual* milliseconds (never the wall clock, so slow CI
//! hosts cannot fire it spuriously), and every interleaving — including
//! a worker committing its WAL record and then losing the reply race
//! against the watchdog — is reachable from a seeded, replayable
//! schedule (`tests/sim_interleavings.rs`).
//!
//! # Ownership
//!
//! Every shard holds a full copy of the policy set (policy mutations are
//! broadcast, so per-shard policy-id allocators stay in lockstep) and
//! the slice of subject-keyed state — preferences, stored rows, quota
//! counters, notifications — owned by its users under
//! [`super::ShardRouter`]. Preference ids are allocated by the router
//! and preserved through each shard's WAL
//! ([`crate::WalRecord::SubmitPreferenceAssigned`]), which keeps sharded
//! decisions byte-identical to the unsharded engine's (the
//! `shard_differential` suite proves it at 1/2/8 shards).
//!
//! # Failure model
//!
//! A worker that panics or stalls is quarantined: its WAL handle is
//! *fenced* (see [`super::fence`] — a slow-but-alive job that outlives
//! its watchdog can finish against its abandoned in-memory engine but
//! can never again append to the partition), its thread abandoned, its
//! in-memory state discarded, and the slot marked `Down`. Requests
//! routed to a down shard are answered fail-closed with an audited
//! [`crate::DecisionBasis::ShardUnavailable`] denial; healthy shards
//! are undisturbed. After a capped virtual-time backoff the supervisor
//! rebuilds the shard by replaying its WAL partition — committed
//! mutations survive, the panicking op's partial state does not — and
//! re-registers its occupants from the router's directory.
//!
//! Policy/preference mutations accepted while a shard is down are
//! committed *durably* through a standby engine (a WAL-replay rebuild
//! the router writes through immediately and promotes at restart), so
//! an accepted mutation survives even a whole-process crash before the
//! shard comes back. The same standby resolves indeterminate writes: a
//! watchdog expiry leaves the router unsure whether the worker
//! committed its record, but fencing guarantees the partition is
//! quiescent, so reading the replayed id allocators settles it —
//! router-assigned ids are consumed exactly when their record
//! committed, never reused for a different mutation.
//!
//! # Documented divergences from the unsharded engine
//!
//! * Noise effects draw from per-shard RNGs (same seed, independent
//!   sequences) instead of one engine-wide RNG.
//! * While a shard is down: its subjects' requests deny fail-closed, its
//!   owned observations drop (counted), and a rebuilt shard's sensor
//!   state misses the batches it was down for.
//! * `InSpace` requests during a shard outage fail closed for *all* of
//!   the down shard's users — the router cannot know who was in the
//!   space without the shard's store.
//! * A request job lost to a watchdog expiry may have committed audit
//!   or quota-charge records before the fence landed; the router still
//!   answers fail-closed, so a rebuilt shard can carry a quota charge
//!   for a disclosure that was never released — over-charging, the
//!   privacy-safe direction.

use std::any::Any;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use tippers_ontology::Ontology;
use tippers_policy::{BuildingPolicy, PolicyId, PreferenceId, Timestamp, UserId, UserPreference};
use tippers_resilience::sim;
use tippers_resilience::{ms_from_secs, FaultPlan, FaultPoint, HealthStatus};
use tippers_sensors::{Observation, Occupant};
use tippers_spatial::{SpaceId, SpatialModel};

use crate::audit::{AuditLog, UserNotification};
use crate::enforce::EnforcementDecision;
use crate::policy_manager::PolicyManager;
use crate::preference_manager::SettingsError;
use crate::request::{DataRequest, DataResponse, SubjectResult, SubjectSelector};
use crate::tippers::{Tippers, TippersConfig};
use crate::wal::{FsLog, LogIo, MemLog, RecoveryReport, WalError};

use super::fence::WriterFence;
use super::route::ShardRouter;
use super::supervisor::{backoff_ms, ShardHealth, ShardStats};

/// Configuration of the sharded runtime.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Number of shards (≥ 1).
    pub shards: usize,
    /// Watchdog backstop (milliseconds): how long the router waits on a
    /// shard worker before declaring it hung and quarantining it. Real
    /// time on OS threads; *virtual* time under the simulation executor,
    /// where it never touches the wall clock. Injected
    /// [`FaultPoint::ShardStall`] faults are detected immediately,
    /// without burning wall-clock time.
    pub watchdog_ms: u64,
    /// Virtual-time restart-backoff base (milliseconds); doubles per
    /// consecutive failed restart.
    pub backoff_base_ms: i64,
    /// Virtual-time backoff cap (milliseconds).
    pub backoff_max_ms: i64,
    /// Capture zones pinned to specific shards (everything unpinned
    /// hash-routes). Analyzer lint TA016 validates the same table
    /// pre-deployment; [`ShardRouter::with_zone_pins`] enforces it at
    /// runtime, so the audited topology and the deployed routing agree.
    pub zone_pins: Vec<(SpaceId, usize)>,
    /// Test hook: deliberately reintroduces the PR 9 abandoned-writer
    /// WAL bug by *skipping* the writer-fence advance at quarantine, so
    /// a slow-but-alive worker can append to a partition the supervisor
    /// already replayed. Exists solely so the simulation harness can
    /// prove it finds the bug (E21's seeds-to-bug metric); never set it
    /// outside that experiment.
    #[doc(hidden)]
    pub sim_reintroduce_fence_bug: bool,
}

impl Default for ShardSpec {
    fn default() -> ShardSpec {
        ShardSpec {
            shards: 8,
            watchdog_ms: 5_000,
            backoff_base_ms: 250,
            backoff_max_ms: 8_000,
            zone_pins: Vec::new(),
            sim_reintroduce_fence_bug: false,
        }
    }
}

impl ShardSpec {
    /// A router over this spec's shard count and zone pins.
    fn router(&self) -> ShardRouter {
        ShardRouter::with_zone_pins(self.shards, self.zone_pins.iter().copied())
    }

    /// How long an injected [`FaultPoint::ShardSlowJob`] delays a worker:
    /// comfortably past the watchdog, so the router has always declared
    /// the worker hung (and fenced it) before the job runs.
    fn slow_job_ms(&self) -> u64 {
        self.watchdog_ms.saturating_mul(2)
    }
}

/// A job shipped to a shard worker, and its type-erased result.
type Job = Box<dyn FnOnce(&mut Tippers) -> Box<dyn Any + Send> + Send>;

enum JobResult {
    Done(Box<dyn Any + Send>),
    Panicked,
    Stalled,
}

struct Worker {
    jobs: sim::Sender<(Job, sim::Sender<JobResult>)>,
    handle: Option<sim::JoinHandle>,
    /// Set at quarantine, checked by the worker at every dequeue: a job
    /// that was still queued when the watchdog fired must never run.
    /// The router already recorded it as lost, and a late execution
    /// would apply a stale op to the abandoned engine — and consume
    /// fault-plan budget armed for the slot's *replacement* worker.
    /// (Found by the deterministic simulation sweep: only a preemptive
    /// schedule can expire the watchdog before an idle worker's first
    /// dequeue, which is why wall-clock chaos never hit it.)
    abandoned: Arc<AtomicBool>,
}

/// Spawns a worker owning one shard's engine (an OS thread, or a
/// scheduled task under the simulation executor). The worker consults
/// the shared fault plan before each job: an armed
/// [`FaultPoint::ShardStall`] reports the watchdog verdict without
/// applying the op, an armed [`FaultPoint::ShardSlowJob`] sleeps past
/// the router's watchdog and then runs the job anyway (the abandoned
/// engine applies it, but its WAL handle has been fenced — the
/// dangerous-half rehearsal of a real hung worker), and an armed
/// [`FaultPoint::ShardPanic`] panics inside the `catch_unwind`
/// boundary. A caught panic abandons the engine (rebuilt from its WAL).
fn spawn_worker(mut bms: Tippers, plan: FaultPlan, slow_job_ms: u64) -> Worker {
    let (tx, rx) = sim::channel::<(Job, sim::Sender<JobResult>)>();
    let abandoned = Arc::new(AtomicBool::new(false));
    let fenced_off = Arc::clone(&abandoned);
    let handle = sim::spawn("shard-worker", move || {
        while let Ok((job, reply)) = rx.recv() {
            if fenced_off.load(Ordering::Acquire) {
                // Quarantined with this job still queued: it is lost,
                // not late. Exit without running it (or drawing the
                // fault plan, whose armed budget belongs to the
                // replacement worker).
                drop((job, reply));
                return;
            }
            if plan.should_fail(FaultPoint::ShardStall) {
                let _ = reply.send(JobResult::Stalled);
                continue;
            }
            if plan.should_fail(FaultPoint::ShardSlowJob) {
                sim::sleep_ms(slow_job_ms);
            }
            let result = catch_unwind(AssertUnwindSafe(|| {
                assert!(
                    !plan.should_fail(FaultPoint::ShardPanic),
                    "injected shard panic"
                );
                job(&mut bms)
            }));
            // The gap between a job's last WAL append and its reply
            // reaching the router is where a watchdog expiry leaves the
            // write indeterminate; a scheduling point here lets seeded
            // simulation schedules exercise exactly that race.
            sim::yield_now();
            match result {
                Ok(value) => {
                    let _ = reply.send(JobResult::Done(value));
                }
                Err(_) => {
                    let _ = reply.send(JobResult::Panicked);
                    // The engine's invariants are suspect: drop it. The
                    // supervisor rebuilds from the WAL partition.
                    return;
                }
            }
        }
    });
    Worker {
        jobs: tx,
        handle: Some(handle),
        abandoned,
    }
}

/// How a shard's WAL partition is reopened at rebuild.
enum ShardBacking {
    /// Shared-state in-memory log (tests, benches): a clone sees every
    /// byte the crashed engine appended.
    Mem(MemLog),
    /// On-disk log directory.
    Fs(PathBuf),
}

impl ShardBacking {
    fn reopen(&self) -> Result<Box<dyn LogIo>, WalError> {
        match self {
            ShardBacking::Mem(log) => Ok(Box::new(log.clone())),
            ShardBacking::Fs(dir) => Ok(Box::new(FsLog::open(dir.clone())?)),
        }
    }
}

/// A policy/preference mutation accepted while its shard was down that
/// could not be committed durably because the shard's WAL partition was
/// unreadable — the in-memory *fallback* tier, replayed in order at the
/// next successful rebuild. The primary tier is the slot's standby
/// engine, which commits accepted mutations straight into the
/// partition. (Observations are never queued on either tier: sensor
/// feed is droppable, and the drop is counted.)
enum PendingOp {
    AddPolicy(BuildingPolicy),
    RemovePolicy(PolicyId),
    SubmitPreference(UserPreference, Timestamp),
}

struct ShardSlot {
    backing: ShardBacking,
    /// The partition's writer-epoch authority: advanced at quarantine,
    /// before anything else touches the partition, so the abandoned
    /// worker's engine can never append concurrently with a rebuild.
    fence: WriterFence,
    worker: Option<Worker>,
    /// The standby engine while the slot is down: a full WAL-replay
    /// rebuild the router writes accepted mutations through (durably,
    /// at the current writer epoch) and promotes at restart. `Some`
    /// implies the slot is `Down`.
    catchup: Option<Tippers>,
    health: ShardHealth,
    pending: Vec<PendingOp>,
    panics: u64,
    stalls: u64,
    restarts: u64,
    restart_losses: u64,
}

enum ShardCall<R> {
    Ok(R),
    Unavailable,
}

/// What became of one dispatched job — the distinction the write paths
/// need that [`ShardCall`] erases.
enum ShardReply<R> {
    Done(R),
    /// The worker skipped the job wholesale (injected stall) or the job
    /// was never dispatched: definitely not applied.
    Skipped,
    /// Panic mid-job or real watchdog expiry: the op may or may not
    /// have committed before the fence landed. The caller must resolve
    /// the doubt against the (now quiescent) WAL partition.
    Lost,
}

/// Why a slot is being quarantined (drives failure counters).
#[derive(Clone, Copy)]
enum FailCause {
    Panic,
    Stall,
    /// A defensively detected dead or misbehaving worker whose original
    /// failure was already counted (or never reported).
    Dead,
}

/// The sharded, supervised, multi-threaded enforcement runtime.
///
/// Implements [`super::EnforcementCore`] identically (byte-for-byte on
/// decisions) to a single [`Tippers`] while it is healthy, and degrades
/// fail-closed per shard when it is not.
pub struct ShardedTippers {
    ontology: Ontology,
    model: SpatialModel,
    config: TippersConfig,
    spec: ShardSpec,
    router: ShardRouter,
    slots: Vec<ShardSlot>,
    /// The building's full occupant directory: rebuilt shards re-register
    /// their slice from here (group/MAC registration is not WAL state),
    /// and fan-out requests fail closed over a down shard's slice.
    directory: HashMap<UserId, Occupant>,
    /// Router-side mirror of the policy set, so policy ids are allocated
    /// deterministically even when some shards are down.
    policy_mirror: PolicyManager,
    /// Router-side preference-id allocator (see
    /// [`Tippers::submit_preference_assigned`]).
    next_preference_id: u64,
    /// Audit of every fail-closed `ShardUnavailable` denial the *router*
    /// issued (per-shard engines audit their own decisions).
    router_audit: AuditLog,
    /// Virtual now (ms), advanced by the timestamps flowing through
    /// operations; drives the restart-backoff watchdog.
    vnow_ms: i64,
    unavailable_denials: u64,
    unavailable_drops: u64,
    pending_replayed: u64,
    /// Wall-clock WAL-replay rebuild durations, microseconds (E20's
    /// recovery percentiles).
    recovery_us: Vec<u64>,
}

impl ShardedTippers {
    /// Creates a sharded BMS whose shards log to in-memory WAL
    /// partitions (crash isolation and WAL-replay recovery work in full;
    /// nothing touches disk).
    ///
    /// # Panics
    ///
    /// Panics when `spec.shards` is zero, a zone pin is out of range or
    /// split across shards, or an injected WAL fault breaks the initial
    /// (empty) open.
    pub fn new(
        ontology: Ontology,
        model: SpatialModel,
        config: TippersConfig,
        spec: ShardSpec,
    ) -> ShardedTippers {
        assert!(
            spec.shards > 0,
            "a sharded runtime needs at least one shard"
        );
        let router = spec.router();
        let mut slots = Vec::with_capacity(spec.shards);
        for _ in 0..spec.shards {
            let log = MemLog::new();
            let fence = WriterFence::new();
            let (bms, _report) = Tippers::open_with(
                Box::new(fence.handle(Box::new(log.clone()))),
                ontology.clone(),
                model.clone(),
                config.clone(),
            )
            .expect("an empty in-memory log opens cleanly");
            slots.push(ShardSlot {
                backing: ShardBacking::Mem(log),
                fence,
                worker: Some(spawn_worker(
                    bms,
                    config.fault_plan.clone(),
                    spec.slow_job_ms(),
                )),
                catchup: None,
                health: ShardHealth::Up,
                pending: Vec::new(),
                panics: 0,
                stalls: 0,
                restarts: 0,
                restart_losses: 0,
            });
        }
        ShardedTippers {
            ontology,
            model,
            config,
            spec,
            router,
            slots,
            directory: HashMap::new(),
            policy_mirror: PolicyManager::new(),
            next_preference_id: 0,
            router_audit: AuditLog::new(),
            vnow_ms: 0,
            unavailable_denials: 0,
            unavailable_drops: 0,
            pending_replayed: 0,
            recovery_us: Vec::new(),
        }
    }

    /// Opens a durable sharded BMS: shard `i` logs to `dir/shard-{i:03}`
    /// (each created if absent, each replayed independently). Router
    /// state is rebuilt from the replayed shards: the policy mirror from
    /// any shard (policies broadcast, so every partition replays the
    /// identical set) and the preference-id allocator from the max
    /// across shards (each partition holds only its owned preferences).
    /// Occupants are administrative configuration, like the unsharded
    /// engine's policies-on-restart: re-register them after opening.
    ///
    /// # Errors
    ///
    /// [`WalError`] when any shard's partition fails to open or replay.
    pub fn open(
        dir: impl AsRef<Path>,
        ontology: Ontology,
        model: SpatialModel,
        config: TippersConfig,
        spec: ShardSpec,
    ) -> Result<(ShardedTippers, Vec<RecoveryReport>), WalError> {
        assert!(
            spec.shards > 0,
            "a sharded runtime needs at least one shard"
        );
        let router = spec.router();
        let mut slots = Vec::with_capacity(spec.shards);
        let mut reports = Vec::with_capacity(spec.shards);
        let mut policy_mirror = PolicyManager::new();
        let mut next_preference_id = 0u64;
        for i in 0..spec.shards {
            let sub = dir.as_ref().join(format!("shard-{i:03}"));
            let fence = WriterFence::new();
            let io = fence.handle(Box::new(FsLog::open(sub.clone())?));
            let (bms, report) = Tippers::open_with(
                Box::new(io),
                ontology.clone(),
                model.clone(),
                config.clone(),
            )?;
            reports.push(report);
            if i == 0 {
                let (policies, next_policy_id) = bms.policy_parts();
                policy_mirror = PolicyManager::from_parts(policies, next_policy_id);
            } else {
                debug_assert_eq!(
                    policy_mirror.all(),
                    bms.policies(),
                    "policy broadcast must replay identically on every shard"
                );
            }
            next_preference_id = next_preference_id.max(bms.preference_next_id());
            slots.push(ShardSlot {
                backing: ShardBacking::Fs(sub),
                fence,
                worker: Some(spawn_worker(
                    bms,
                    config.fault_plan.clone(),
                    spec.slow_job_ms(),
                )),
                catchup: None,
                health: ShardHealth::Up,
                pending: Vec::new(),
                panics: 0,
                stalls: 0,
                restarts: 0,
                restart_losses: 0,
            });
        }
        Ok((
            ShardedTippers {
                ontology,
                model,
                config,
                spec,
                router,
                slots,
                directory: HashMap::new(),
                policy_mirror,
                next_preference_id,
                router_audit: AuditLog::new(),
                vnow_ms: 0,
                unavailable_denials: 0,
                unavailable_drops: 0,
                pending_replayed: 0,
                recovery_us: Vec::new(),
            },
            reports,
        ))
    }

    // ---- supervision ---------------------------------------------------------

    fn note_time(&mut self, now: Timestamp) {
        self.vnow_ms = self.vnow_ms.max(ms_from_secs(now.seconds()));
    }

    /// True when the slot is (or was just brought back) up. A down shard
    /// whose backoff expired gets a restart attempt right here — recovery
    /// rides the operation path, exactly like retention sweeps do.
    fn ensure_up(&mut self, idx: usize) -> bool {
        match self.slots[idx].health {
            ShardHealth::Up => true,
            ShardHealth::Down {
                attempts,
                down_until_ms,
            } => {
                if self.vnow_ms < down_until_ms {
                    return false;
                }
                self.try_restart(idx, attempts)
            }
        }
    }

    fn try_restart(&mut self, idx: usize, attempts: u32) -> bool {
        let started_us = sim::monotonic_us();
        let lost = self
            .config
            .fault_plan
            .should_fail(FaultPoint::ShardRestartLoss);
        let rebuilt = if lost {
            // The injected loss models losing the in-flight rebuild; any
            // standby engine is discarded with it. Every mutation it
            // accepted is durable in the WAL partition, so nothing
            // committed is lost — the next attempt replays it.
            self.slots[idx].catchup = None;
            None
        } else if let Some(bms) = self.slots[idx].catchup.take() {
            // The standby engine *is* the rebuilt engine: a WAL-replay
            // rebuild already caught up with every mutation accepted
            // while the slot was down.
            Some(bms)
        } else {
            self.rebuild(idx).ok()
        };
        match rebuilt {
            Some(mut bms) => {
                self.drain_pending(idx, &mut bms);
                self.recovery_us
                    .push(sim::monotonic_us().saturating_sub(started_us));
                let worker =
                    spawn_worker(bms, self.config.fault_plan.clone(), self.spec.slow_job_ms());
                let slot = &mut self.slots[idx];
                slot.worker = Some(worker);
                slot.health = ShardHealth::Up;
                slot.restarts += 1;
                true
            }
            None => {
                // The rebuild was lost (or failed): stay quarantined,
                // back off harder, never serve half-rebuilt state.
                let next = attempts + 1;
                let delay = backoff_ms(self.spec.backoff_base_ms, self.spec.backoff_max_ms, next);
                let slot = &mut self.slots[idx];
                slot.restart_losses += 1;
                slot.health = ShardHealth::Down {
                    attempts: next,
                    down_until_ms: self.vnow_ms + delay,
                };
                false
            }
        }
    }

    /// Rebuilds a quarantined shard's engine: reopen its WAL partition
    /// through a handle at the current writer epoch, replay it
    /// (committed mutations only — the panicking op's partial state is
    /// gone), and re-register the shard's occupants from the directory.
    fn rebuild(&mut self, idx: usize) -> Result<Tippers, WalError> {
        let slot = &self.slots[idx];
        let io = slot.fence.handle(slot.backing.reopen()?);
        let (mut bms, _report) = Tippers::open_with(
            Box::new(io),
            self.ontology.clone(),
            self.model.clone(),
            self.config.clone(),
        )?;
        let mut owned: Vec<Occupant> = self
            .directory
            .values()
            .filter(|o| self.router.shard_of_user(o.user) == idx)
            .cloned()
            .collect();
        // Directory iteration order is a hash order: sort so rebuilds
        // are identical across processes (schedule replay depends on it).
        owned.sort_unstable_by_key(|o| o.user);
        bms.register_occupants(&owned);
        Ok(bms)
    }

    /// Replays the fallback queue (mutations accepted while the
    /// partition was unreadable) into an engine, in arrival order.
    fn drain_pending(&mut self, idx: usize, bms: &mut Tippers) {
        for op in std::mem::take(&mut self.slots[idx].pending) {
            self.pending_replayed += 1;
            match op {
                PendingOp::AddPolicy(policy) => {
                    bms.add_policy(policy);
                }
                PendingOp::RemovePolicy(id) => {
                    bms.remove_policy(id);
                }
                PendingOp::SubmitPreference(pref, now) => {
                    bms.submit_preference_assigned(pref, now);
                }
            }
        }
    }

    /// Ensures the slot has a standby engine: a WAL-replay rebuild at
    /// the current writer epoch that accepted-while-down mutations
    /// commit through durably (and that resolves whether an
    /// indeterminate write landed — the fence advanced at quarantine,
    /// so what the replay saw is what the partition will ever hold).
    /// Returns false when the partition is unreadable.
    fn ensure_catchup(&mut self, idx: usize) -> bool {
        if self.slots[idx].catchup.is_none() {
            let Ok(mut bms) = self.rebuild(idx) else {
                return false;
            };
            self.drain_pending(idx, &mut bms);
            self.slots[idx].catchup = Some(bms);
        }
        true
    }

    fn quarantine(&mut self, idx: usize, cause: FailCause) {
        // Fence first: from here on the abandoned worker's engine cannot
        // append to (or truncate, or rotate) the WAL partition, and once
        // `advance` returns no write of its is still in flight — the
        // partition is stable for the standby rebuild to replay.
        // (The test-only `sim_reintroduce_fence_bug` hook skips this —
        // reopening the PR 9 abandoned-writer hole on purpose so the
        // simulation harness can prove it finds the bug.)
        if !self.spec.sim_reintroduce_fence_bug {
            self.slots[idx].fence.advance();
        }
        let slot = &mut self.slots[idx];
        // Dropping the worker closes its job channel (a live thread
        // exits); a genuinely hung thread is abandoned, never joined.
        // The abandonment flag stops it from running any job still
        // queued behind the one the watchdog gave up on.
        if let Some(worker) = &slot.worker {
            worker.abandoned.store(true, Ordering::Release);
        }
        slot.worker = None;
        match cause {
            FailCause::Panic => slot.panics += 1,
            FailCause::Stall => slot.stalls += 1,
            // The original failure was already counted when it was
            // detected; a second detection is not a second failure.
            FailCause::Dead => {}
        }
        // Preserve accumulated backoff escalation: re-quarantining an
        // already-down slot keeps its failed-restart attempts.
        let attempts = match slot.health {
            ShardHealth::Up => 0,
            ShardHealth::Down { attempts, .. } => attempts,
        };
        let delay = backoff_ms(
            self.spec.backoff_base_ms,
            self.spec.backoff_max_ms,
            attempts,
        );
        slot.health = ShardHealth::Down {
            attempts,
            down_until_ms: self.vnow_ms + delay,
        };
    }

    // ---- dispatch ------------------------------------------------------------

    fn send_job<R: Send + 'static>(
        &mut self,
        idx: usize,
        job: impl FnOnce(&mut Tippers) -> R + Send + 'static,
    ) -> Option<sim::Receiver<JobResult>> {
        let (reply_tx, reply_rx) = sim::channel();
        let boxed: Job = Box::new(move |bms| Box::new(job(bms)) as Box<dyn Any + Send>);
        let Some(worker) = self.slots[idx].worker.as_ref() else {
            self.quarantine(idx, FailCause::Dead);
            return None;
        };
        if worker.jobs.send((boxed, reply_tx)).is_err() {
            // The worker died after an earlier panic: quarantine now
            // (the panic itself was counted when it was reported).
            self.quarantine(idx, FailCause::Dead);
            return None;
        }
        Some(reply_rx)
    }

    fn await_reply<R: Send + 'static>(
        &mut self,
        idx: usize,
        rx: &sim::Receiver<JobResult>,
    ) -> ShardReply<R> {
        match rx.recv_timeout_ms(self.spec.watchdog_ms) {
            Ok(JobResult::Done(value)) => match value.downcast::<R>() {
                Ok(v) => ShardReply::Done(*v),
                Err(_) => {
                    // A type confusion between router and worker: treat
                    // the op as indeterminate, never as absent.
                    self.quarantine(idx, FailCause::Dead);
                    ShardReply::Lost
                }
            },
            Ok(JobResult::Panicked) => {
                // The job died mid-flight; it may have committed its WAL
                // record before the panic.
                self.quarantine(idx, FailCause::Panic);
                ShardReply::Lost
            }
            Ok(JobResult::Stalled) => {
                // Injected stall: the worker reported the verdict
                // *instead of* running the job — definitely not applied.
                self.quarantine(idx, FailCause::Stall);
                ShardReply::Skipped
            }
            Err(_) => {
                // Watchdog expiry (real time on OS threads, virtual time
                // under the simulation executor): the worker is hung (or
                // slow) with the job in an unknown state. Quarantining fences its
                // WAL handle, so whatever it committed up to this moment
                // is all it ever will.
                self.quarantine(idx, FailCause::Stall);
                ShardReply::Lost
            }
        }
    }

    /// Dispatches one job to a (known-up) shard worker. `Skipped` when
    /// the worker was already dead and nothing was sent.
    fn dispatch<R: Send + 'static>(
        &mut self,
        idx: usize,
        job: impl FnOnce(&mut Tippers) -> R + Send + 'static,
    ) -> ShardReply<R> {
        match self.send_job(idx, job) {
            Some(rx) => self.await_reply(idx, &rx),
            None => ShardReply::Skipped,
        }
    }

    /// One synchronous round trip to a shard worker (the per-op
    /// crash-isolation boundary), for operations that fail closed
    /// without needing to know *why* the shard answer is missing.
    fn call<R: Send + 'static>(
        &mut self,
        idx: usize,
        job: impl FnOnce(&mut Tippers) -> R + Send + 'static,
    ) -> ShardCall<R> {
        if !self.ensure_up(idx) {
            return ShardCall::Unavailable;
        }
        match self.dispatch(idx, job) {
            ShardReply::Done(v) => ShardCall::Ok(v),
            ShardReply::Skipped | ShardReply::Lost => ShardCall::Unavailable,
        }
    }

    // ---- durable offline commits ---------------------------------------------

    /// Commits a preference accepted while its owner shard is down:
    /// durably through the standby engine when the partition is readable
    /// (skipping it when an indeterminate earlier write turns out to
    /// have committed it already — ids are consumed exactly once),
    /// otherwise onto the in-memory fallback queue.
    fn commit_preference_offline(&mut self, idx: usize, pref: UserPreference, now: Timestamp) {
        if self.ensure_catchup(idx) {
            let bms = self.slots[idx]
                .catchup
                .as_mut()
                .expect("ensure_catchup built the standby engine");
            // Router ids are allocated in one monotone sequence and the
            // per-shard allocator maxes over committed ids, so the
            // replayed allocator sits past `pref.id` iff this exact
            // record committed before the fence landed.
            if bms.preference_next_id() <= pref.id.0 {
                bms.submit_preference_assigned(pref, now);
                self.pending_replayed += 1;
            }
        } else {
            self.slots[idx]
                .pending
                .push(PendingOp::SubmitPreference(pref, now));
        }
    }

    /// Commits a broadcast policy add on a down shard (durably via the
    /// standby engine, with the same committed-already check keyed on
    /// the lockstep policy-id allocator), or queues it as fallback.
    fn commit_policy_offline(&mut self, idx: usize, policy: BuildingPolicy, expected: PolicyId) {
        if self.ensure_catchup(idx) {
            let bms = self.slots[idx]
                .catchup
                .as_mut()
                .expect("ensure_catchup built the standby engine");
            if bms.policy_next_id() <= expected.0 {
                let got = bms.add_policy(policy);
                debug_assert_eq!(got, expected, "policy allocators must stay in lockstep");
                self.pending_replayed += 1;
            }
        } else {
            self.slots[idx].pending.push(PendingOp::AddPolicy(policy));
        }
    }

    /// Commits a broadcast policy removal on a down shard. Removal is
    /// naturally idempotent: re-removing an already-removed id is a
    /// no-op that logs nothing.
    fn commit_remove_offline(&mut self, idx: usize, id: PolicyId) {
        if self.ensure_catchup(idx) {
            let bms = self.slots[idx]
                .catchup
                .as_mut()
                .expect("ensure_catchup built the standby engine");
            if bms.remove_policy(id) {
                self.pending_replayed += 1;
            }
        } else {
            self.slots[idx].pending.push(PendingOp::RemovePolicy(id));
        }
    }

    // ---- fail-closed answers -------------------------------------------------

    fn unavailable_subject(
        &mut self,
        request: &DataRequest,
        user: UserId,
        now: Timestamp,
    ) -> SubjectResult {
        let decision = EnforcementDecision::shard_unavailable();
        self.router_audit.record(
            now,
            user,
            Some(request.service.clone()),
            request.data,
            request.purpose,
            &decision,
        );
        self.unavailable_denials += 1;
        SubjectResult {
            user,
            decision,
            records: Vec::new(),
        }
    }

    fn unavailable_response(
        &mut self,
        request: &DataRequest,
        user: UserId,
        now: Timestamp,
    ) -> DataResponse {
        DataResponse {
            results: vec![self.unavailable_subject(request, user, now)],
            degraded: true,
        }
    }

    /// The users a down shard owns, sorted — the fail-closed fan-out
    /// slice for `All`/`InSpace` requests.
    fn owned_users(&self, idx: usize) -> Vec<UserId> {
        let mut owned: Vec<UserId> = self
            .directory
            .keys()
            .copied()
            .filter(|&u| self.router.shard_of_user(u) == idx)
            .collect();
        owned.sort_unstable();
        owned
    }

    // ---- the enforcement surface ---------------------------------------------

    /// Registers occupants: recorded in the router's directory (the
    /// rebuild source of truth) and pushed to each occupant's owner
    /// shard.
    pub fn register_occupants(&mut self, occupants: &[Occupant]) {
        for o in occupants {
            self.directory.insert(o.user, o.clone());
        }
        for idx in 0..self.slots.len() {
            let owned: Vec<Occupant> = occupants
                .iter()
                .filter(|o| self.router.shard_of_user(o.user) == idx)
                .cloned()
                .collect();
            if owned.is_empty() {
                continue;
            }
            // A down shard's standby engine registers them right away;
            // a from-scratch rebuild re-registers from the directory.
            let standby_copy = owned.clone();
            match self.call(idx, move |bms| bms.register_occupants(&owned)) {
                ShardCall::Ok(()) => {}
                ShardCall::Unavailable => {
                    if let Some(bms) = self.slots[idx].catchup.as_mut() {
                        bms.register_occupants(&standby_copy);
                    }
                }
            }
        }
    }

    /// Adds a policy, broadcast to every shard (each shard enforces the
    /// full policy set; allocators stay in lockstep). A down shard
    /// commits it durably through its standby engine.
    pub fn add_policy(&mut self, policy: BuildingPolicy) -> PolicyId {
        let id = self.policy_mirror.add(policy.clone());
        for idx in 0..self.slots.len() {
            if !self.ensure_up(idx) {
                self.commit_policy_offline(idx, policy.clone(), id);
                continue;
            }
            let p = policy.clone();
            match self.dispatch(idx, move |bms| bms.add_policy(p)) {
                ShardReply::Done(shard_id) => {
                    debug_assert_eq!(shard_id, id, "policy allocators must stay in lockstep");
                }
                // Skipped: definitely not applied — commit offline.
                // Lost: maybe applied — the offline path checks the
                // replayed allocator and commits at most once.
                ShardReply::Skipped | ShardReply::Lost => {
                    self.commit_policy_offline(idx, policy.clone(), id);
                }
            }
        }
        id
    }

    /// Removes a policy on every shard. A down shard removes it durably
    /// through its standby engine.
    pub fn remove_policy(&mut self, id: PolicyId) -> bool {
        let removed = self.policy_mirror.remove(id);
        for idx in 0..self.slots.len() {
            if !self.ensure_up(idx) {
                self.commit_remove_offline(idx, id);
                continue;
            }
            match self.dispatch(idx, move |bms| bms.remove_policy(id)) {
                ShardReply::Done(_) => {}
                ShardReply::Skipped | ShardReply::Lost => self.commit_remove_offline(idx, id),
            }
        }
        removed
    }

    /// The policy set in force (the router's mirror).
    pub fn policies(&self) -> &[BuildingPolicy] {
        self.policy_mirror.all()
    }

    /// Stores a preference on its subject's owner shard. The id comes
    /// from the router's allocator — the same sequence the unsharded
    /// engine would assign. A submission while the owner shard is down
    /// is committed durably through the shard's standby engine (straight
    /// into its WAL partition), so an accepted preference survives even
    /// a whole-process crash during the quarantine window.
    pub fn submit_preference(&mut self, mut pref: UserPreference, now: Timestamp) -> PreferenceId {
        self.note_time(now);
        let id = PreferenceId(self.next_preference_id);
        self.next_preference_id += 1;
        pref.id = id;
        let idx = self.router.shard_of_user(pref.user);
        if !self.ensure_up(idx) {
            self.commit_preference_offline(idx, pref, now);
            return id;
        }
        let p = pref.clone();
        match self.dispatch(idx, move |bms| bms.submit_preference_assigned(p, now)) {
            ShardReply::Done(got) => debug_assert_eq!(got, id),
            // Skipped: definitely not applied. Lost: maybe applied — the
            // offline path checks the replayed allocator, so the record
            // lands exactly once either way.
            ShardReply::Skipped | ShardReply::Lost => {
                self.commit_preference_offline(idx, pref, now);
            }
        }
        id
    }

    /// Applies an IoTA setting choice on the user's owner shard.
    ///
    /// # Errors
    ///
    /// [`SettingsError`] when the policy/setting/option is unknown, or
    /// [`SettingsError::ShardUnavailable`] (fail-closed, nothing applied)
    /// while the owner shard is quarantined — unlike plain preference
    /// submission, a choice needs the shard's policy table to validate,
    /// so it cannot be accepted blind.
    pub fn apply_setting_choice(
        &mut self,
        user: UserId,
        policy: PolicyId,
        setting_key: &str,
        option_index: usize,
    ) -> Result<PreferenceId, SettingsError> {
        let idx = self.router.shard_of_user(user);
        if !self.ensure_up(idx) {
            // Nothing dispatched, so nothing can have committed under
            // the reserved id — it stays unconsumed for the next caller.
            return Err(SettingsError::ShardUnavailable);
        }
        let id = PreferenceId(self.next_preference_id);
        let key = setting_key.to_owned();
        match self.dispatch(idx, move |bms| {
            bms.apply_setting_choice_assigned(user, policy, &key, option_index, id)
        }) {
            ShardReply::Done(Ok(got)) => {
                // The id is consumed only on success, mirroring the
                // unsharded allocator.
                self.next_preference_id += 1;
                Ok(got)
            }
            ShardReply::Done(Err(e)) => Err(e),
            // The worker skipped the job wholesale: the id was never
            // written anywhere and is safe to hand out again.
            ShardReply::Skipped => Err(SettingsError::ShardUnavailable),
            ShardReply::Lost => {
                // The worker may have committed `SettingChoiceAssigned`
                // under `id` before the fence landed. Replay the (now
                // quiescent) partition: the allocator moved past `id`
                // iff that record committed. Consume the id exactly when
                // the choice actually took effect — never reuse an id
                // that may name a durable preference.
                if self.ensure_catchup(idx) {
                    let committed = self.slots[idx]
                        .catchup
                        .as_ref()
                        .expect("ensure_catchup built the standby engine")
                        .preference_next_id()
                        > id.0;
                    if committed {
                        self.next_preference_id += 1;
                        return Ok(id);
                    }
                    Err(SettingsError::ShardUnavailable)
                } else {
                    // The partition is unreadable, so the doubt cannot
                    // be resolved: burn the id (an allocator gap is
                    // harmless; a reuse is not) and fail closed.
                    self.next_preference_id += 1;
                    Err(SettingsError::ShardUnavailable)
                }
            }
        }
    }

    /// Ingests a batch of observations. Every *up* shard observes the
    /// full batch (sensor/occupancy state is building-global, exactly as
    /// unsharded) but enforces and stores only the observations it owns;
    /// a down shard's owned observations are dropped and counted.
    ///
    /// Returns `(stored, dropped)` across all shards.
    pub fn ingest(&mut self, observations: &[Observation]) -> (usize, usize) {
        if observations.is_empty() {
            return (0, 0);
        }
        if let Some(t) = observations
            .iter()
            .map(|o| ms_from_secs(o.timestamp.seconds()))
            .max()
        {
            self.vnow_ms = self.vnow_ms.max(t);
        }
        let owners: Vec<usize> = observations
            .iter()
            .map(|o| {
                o.subject.map_or_else(
                    || self.router.shard_of_zone(o.space),
                    |u| self.router.shard_of_user(u),
                )
            })
            .collect();
        let mut stored = 0usize;
        let mut dropped = 0usize;
        for idx in 0..self.slots.len() {
            let owned_count = owners.iter().filter(|&&o| o == idx).count();
            let obs = observations.to_vec();
            let mask: Vec<bool> = owners.iter().map(|&o| o == idx).collect();
            match self.call(idx, move |bms| bms.ingest_with_mask(&obs, |i| mask[i])) {
                ShardCall::Ok((s, d)) => {
                    stored += s;
                    dropped += d;
                }
                ShardCall::Unavailable => {
                    dropped += owned_count;
                    self.unavailable_drops += owned_count as u64;
                }
            }
        }
        (stored, dropped)
    }

    /// Routes one request. Single-subject requests go to the subject's
    /// owner shard; `All`/`InSpace` fan out to every shard and merge in
    /// user order (the unsharded engine's order). Subjects on a down
    /// shard are denied fail-closed with an audited
    /// [`crate::DecisionBasis::ShardUnavailable`].
    pub fn handle_request(&mut self, request: &DataRequest, now: Timestamp) -> DataResponse {
        self.note_time(now);
        if let SubjectSelector::One(user) = request.subjects {
            let idx = self.router.shard_of_user(user);
            let req = request.clone();
            return match self.call(idx, move |bms| bms.handle_request(&req, now)) {
                ShardCall::Ok(resp) => resp,
                ShardCall::Unavailable => self.unavailable_response(request, user, now),
            };
        }
        let mut results: Vec<SubjectResult> = Vec::new();
        let mut degraded = false;
        for idx in 0..self.slots.len() {
            let req = request.clone();
            match self.call(idx, move |bms| bms.handle_request(&req, now)) {
                ShardCall::Ok(resp) => {
                    degraded |= resp.degraded;
                    results.extend(resp.results);
                }
                ShardCall::Unavailable => {
                    degraded = true;
                    for user in self.owned_users(idx) {
                        results.push(self.unavailable_subject(request, user, now));
                    }
                }
            }
        }
        results.sort_by_key(|r| r.user);
        DataResponse { results, degraded }
    }

    /// Routes a batch of requests, running the shards *concurrently* —
    /// the runtime's parallel request path (experiment E20). Responses
    /// come back in input order; single-subject requests are partitioned
    /// per shard and dispatched in one job each, fan-out selectors fall
    /// back to sequential [`ShardedTippers::handle_request`].
    pub fn handle_batch(&mut self, requests: &[DataRequest], now: Timestamp) -> Vec<DataResponse> {
        self.note_time(now);
        let mut out: Vec<Option<DataResponse>> = Vec::with_capacity(requests.len());
        out.resize_with(requests.len(), || None);
        let mut per_shard: Vec<Vec<(usize, DataRequest)>> =
            (0..self.slots.len()).map(|_| Vec::new()).collect();
        let mut sequential: Vec<usize> = Vec::new();
        for (i, req) in requests.iter().enumerate() {
            match &req.subjects {
                SubjectSelector::One(u) => {
                    per_shard[self.router.shard_of_user(*u)].push((i, req.clone()));
                }
                _ => sequential.push(i),
            }
        }
        let mut waits = Vec::new();
        for (idx, batch) in per_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            if !self.ensure_up(idx) {
                self.fail_batch(batch, now, &mut out);
                continue;
            }
            let fallback = batch.clone();
            match self.send_job(idx, move |bms| {
                batch
                    .into_iter()
                    .map(|(i, req)| (i, bms.handle_request(&req, now)))
                    .collect::<Vec<(usize, DataResponse)>>()
            }) {
                Some(rx) => waits.push((idx, rx, fallback)),
                None => self.fail_batch(fallback, now, &mut out),
            }
        }
        for (idx, rx, fallback) in waits {
            match self.await_reply::<Vec<(usize, DataResponse)>>(idx, &rx) {
                ShardReply::Done(items) => {
                    for (i, resp) in items {
                        out[i] = Some(resp);
                    }
                }
                // Requests are read-mostly: lost or skipped, the whole
                // batch answers fail-closed either way.
                ShardReply::Skipped | ShardReply::Lost => self.fail_batch(fallback, now, &mut out),
            }
        }
        for i in sequential {
            out[i] = Some(self.handle_request(&requests[i], now));
        }
        out.into_iter()
            .map(|r| r.expect("every request answered"))
            .collect()
    }

    fn fail_batch(
        &mut self,
        batch: Vec<(usize, DataRequest)>,
        now: Timestamp,
        out: &mut [Option<DataResponse>],
    ) {
        for (i, req) in batch {
            let user = match &req.subjects {
                SubjectSelector::One(u) => *u,
                _ => continue,
            };
            out[i] = Some(self.unavailable_response(&req, user, now));
        }
    }

    /// Drains a user's pending notifications from their owner shard
    /// (empty while the shard is down — they are delivered after
    /// recovery, never lost: notifications live in replayed state and
    /// the catch-up queue).
    pub fn take_notifications(&mut self, user: UserId) -> Vec<UserNotification> {
        let idx = self.router.shard_of_user(user);
        match self.call(idx, move |bms| bms.take_notifications(user)) {
            ShardCall::Ok(v) => v,
            ShardCall::Unavailable => Vec::new(),
        }
    }

    /// Runs a retention sweep on every up shard; returns total rows
    /// swept. A down shard sweeps after recovery (retention is enforced
    /// by expiry time, so late sweeps delete the same rows).
    pub fn sweep(&mut self, now: Timestamp) -> usize {
        self.note_time(now);
        let mut total = 0usize;
        for idx in 0..self.slots.len() {
            if let ShardCall::Ok(n) = self.call(idx, move |bms| bms.sweep(now)) {
                total += n;
            }
        }
        total
    }

    /// Runtime health: degraded while any shard is quarantined.
    pub fn health(&self) -> HealthStatus {
        if self.slots.iter().all(|s| s.health.is_up()) {
            HealthStatus::Healthy
        } else {
            HealthStatus::Degraded
        }
    }

    // ---- observability -------------------------------------------------------

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.slots.len()
    }

    /// The shard owning a user's state (exposed so tests, benches and
    /// demos can aim chaos at a specific shard).
    pub fn shard_of_user(&self, user: UserId) -> usize {
        self.router.shard_of_user(user)
    }

    /// Health of every shard slot.
    pub fn shard_healths(&self) -> Vec<ShardHealth> {
        self.slots.iter().map(|s| s.health).collect()
    }

    /// Health of one shard slot.
    pub fn shard_health(&self, idx: usize) -> ShardHealth {
        self.slots[idx].health
    }

    /// The shared fault plan (chaos harnesses arm shard faults here;
    /// every worker consults it before each job).
    pub fn config_fault_plan(&self) -> &FaultPlan {
        &self.config.fault_plan
    }

    /// The router's fail-closed denial audit (`ShardUnavailable` only;
    /// healthy decisions are audited inside their shard).
    pub fn router_audit(&self) -> &AuditLog {
        &self.router_audit
    }

    /// Aggregated supervision counters.
    pub fn stats(&self) -> ShardStats {
        ShardStats {
            shards: self.slots.len(),
            down: self.slots.iter().filter(|s| !s.health.is_up()).count(),
            panics: self.slots.iter().map(|s| s.panics).sum(),
            stalls: self.slots.iter().map(|s| s.stalls).sum(),
            restarts: self.slots.iter().map(|s| s.restarts).sum(),
            restart_losses: self.slots.iter().map(|s| s.restart_losses).sum(),
            unavailable_denials: self.unavailable_denials,
            unavailable_drops: self.unavailable_drops,
            pending_replayed: self.pending_replayed,
            fenced_writes: self.slots.iter().map(|s| s.fence.fenced_writes()).sum(),
        }
    }

    /// Wall-clock durations (µs) of every successful WAL-replay rebuild.
    pub fn recovery_times_us(&self) -> &[u64] {
        &self.recovery_us
    }

    /// The supervisor's virtual clock (ms).
    pub fn virtual_now_ms(&self) -> i64 {
        self.vnow_ms
    }

    /// Runs a read-only closure on one shard's live engine (`None` while
    /// the shard is quarantined) — the observability hook the chaos
    /// harness uses to verify rebuilt state.
    pub fn inspect_shard<R: Send + 'static>(
        &mut self,
        idx: usize,
        f: impl FnOnce(&Tippers) -> R + Send + 'static,
    ) -> Option<R> {
        match self.call(idx, move |bms| f(&*bms)) {
            ShardCall::Ok(v) => Some(v),
            ShardCall::Unavailable => None,
        }
    }
}

impl Drop for ShardedTippers {
    fn drop(&mut self) {
        for slot in &mut self.slots {
            if let Some(worker) = slot.worker.take() {
                let Worker { jobs, handle, .. } = worker;
                // Closing the channel ends the worker loop; join so no
                // thread outlives the runtime. (Quarantined-hung workers
                // were already abandoned without a handle.)
                drop(jobs);
                if let Some(handle) = handle {
                    handle.join();
                }
            }
        }
    }
}

impl std::fmt::Debug for ShardedTippers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedTippers")
            .field("shards", &self.slots.len())
            .field("healths", &self.shard_healths())
            .field("vnow_ms", &self.vnow_ms)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::thread;
    use std::time::Duration;
    use tippers_policy::{Effect, PreferenceScope};
    use tippers_spatial::fixtures::dbh;

    fn small(watchdog_ms: u64) -> ShardedTippers {
        ShardedTippers::new(
            Ontology::standard(),
            dbh().model,
            TippersConfig::default(),
            ShardSpec {
                shards: 2,
                watchdog_ms,
                backoff_base_ms: 10,
                backoff_max_ms: 40,
                ..ShardSpec::default()
            },
        )
    }

    fn deny_pref(user: UserId) -> UserPreference {
        UserPreference::new(
            PreferenceId(0),
            user,
            PreferenceScope::default(),
            Effect::Deny,
        )
    }

    /// The indeterminate half of a watchdog expiry that fault injection
    /// cannot reach from the public API: the worker *commits* the record
    /// and only then outlives the watchdog. The offline path must read
    /// the commit out of the replayed partition and apply nothing twice.
    #[test]
    fn a_write_that_committed_before_the_watchdog_is_not_reapplied() {
        let mut st = small(50);
        let user = UserId(7);
        let idx = st.router.shard_of_user(user);
        let now = Timestamp::at(0, 9, 0);
        st.note_time(now);

        // Reserve the id exactly as submit_preference does.
        let id = PreferenceId(st.next_preference_id);
        st.next_preference_id += 1;
        let mut pref = deny_pref(user);
        pref.id = id;

        let p = pref.clone();
        let (committed_tx, committed_rx) = mpsc::channel();
        let rx = st
            .send_job(idx, move |bms| {
                let got = bms.submit_preference_assigned(p, now);
                committed_tx.send(()).expect("router is waiting");
                thread::sleep(Duration::from_millis(400));
                got
            })
            .expect("worker is up");
        // Only start the watchdog once the record is durably committed,
        // so the expiry is guaranteed to land *after* the commit.
        committed_rx.recv().expect("worker reached the commit");
        assert!(matches!(
            st.await_reply::<PreferenceId>(idx, &rx),
            ShardReply::Lost
        ));
        assert!(!st.slots[idx].health.is_up());
        assert_eq!(st.stats().stalls, 1);

        // The offline commit resolves the doubt against the replayed
        // (fenced, quiescent) partition: already committed, so nothing
        // to redo.
        st.commit_preference_offline(idx, pref, now);
        assert_eq!(st.stats().pending_replayed, 0);

        // After recovery the preference exists exactly once.
        st.note_time(Timestamp::at(0, 9, 10));
        assert!(st.ensure_up(idx));
        let n = st
            .inspect_shard(idx, move |bms| bms.preference_count_for(user))
            .expect("shard recovered");
        assert_eq!(n, 1);
    }

    /// The determinate half: the watchdog expires *before* the worker
    /// commits. The fence rejects the late append, and the offline path
    /// sees an uncommitted id and applies the record itself — exactly
    /// once either way.
    #[test]
    fn a_write_fenced_before_committing_is_applied_by_the_standby() {
        let mut st = small(50);
        let user = UserId(7);
        let idx = st.router.shard_of_user(user);
        let now = Timestamp::at(0, 9, 0);
        st.note_time(now);

        let id = PreferenceId(st.next_preference_id);
        st.next_preference_id += 1;
        let mut pref = deny_pref(user);
        pref.id = id;

        let p = pref.clone();
        let (fenced_tx, fenced_rx) = mpsc::channel();
        let rx = st
            .send_job(idx, move |bms| {
                // Outlive the watchdog first, then commit: the append
                // lands on a fenced handle and never reaches the
                // partition (the engine swallows it into its
                // wal_append_failures counter).
                fenced_rx.recv().expect("router signals after quarantine");
                bms.submit_preference_assigned(p, now)
            })
            .expect("worker is up");
        assert!(matches!(
            st.await_reply::<PreferenceId>(idx, &rx),
            ShardReply::Lost
        ));
        // The fence is up; *now* let the abandoned worker try to commit.
        fenced_tx.send(()).expect("worker is parked on the signal");

        st.commit_preference_offline(idx, pref, now);
        assert_eq!(st.stats().pending_replayed, 1);

        st.note_time(Timestamp::at(0, 9, 10));
        assert!(st.ensure_up(idx));
        let n = st
            .inspect_shard(idx, move |bms| bms.preference_count_for(user))
            .expect("shard recovered");
        assert_eq!(n, 1);
    }

    /// Re-quarantining an already-down slot must not reset its backoff
    /// escalation, and a dead-worker detection must not inflate the
    /// panic counter.
    #[test]
    fn requarantine_preserves_attempts_and_dead_workers_count_nothing() {
        let mut st = small(50);
        st.note_time(Timestamp::at(0, 9, 0));
        st.quarantine(0, FailCause::Panic);
        let ShardHealth::Down { attempts: 0, .. } = st.slots[0].health else {
            panic!("fresh quarantine starts at zero attempts");
        };
        // Two lost restarts escalate the backoff.
        st.slots[0].health = ShardHealth::Down {
            attempts: 2,
            down_until_ms: st.vnow_ms + 40,
        };
        st.quarantine(0, FailCause::Dead);
        let ShardHealth::Down { attempts, .. } = st.slots[0].health else {
            panic!("still down");
        };
        assert_eq!(attempts, 2, "re-quarantine reset backoff escalation");
        let stats = st.stats();
        assert_eq!(stats.panics, 1, "dead-worker detection counted a panic");
        assert_eq!(stats.stalls, 0);
    }
}
