//! Epoch fencing for shard WAL partitions.
//!
//! A quarantined worker's thread is abandoned, never joined — so a
//! slow-but-alive job can outlive its quarantine and try to finish,
//! appending to the same WAL partition the supervisor is about to
//! replay and hand to a rebuilt engine. Two writers on one partition
//! can interleave records and make replay diverge, which would break
//! the crash-consistency guarantee the sharded runtime sells.
//!
//! The fence closes that hole. Every [`LogIo`] handle the runtime
//! opens on a partition is wrapped in a [`FencedLog`] stamped with the
//! partition's *writer epoch* at creation. Mutating operations
//! (append, sync, truncate, remove, rename) check the stamp against
//! the shared current epoch inside a common append lock; a stale
//! handle gets [`io::ErrorKind::PermissionDenied`] and the attempt is
//! counted. Quarantine calls [`WriterFence::advance`], which bumps the
//! epoch and then acquires the lock once — guaranteeing that when it
//! returns, no in-flight write from the old handle is still running
//! and none can start, so the partition is quiescent and safe to
//! reopen.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::wal::LogIo;

/// One WAL partition's writer-epoch authority: shared by the router
/// (which advances it at quarantine) and every handle opened on the
/// partition.
#[derive(Debug, Clone, Default)]
pub(crate) struct WriterFence {
    /// The current writer epoch; handles stamped with an older epoch
    /// are fenced.
    epoch: Arc<AtomicU64>,
    /// Serializes every mutating operation on the partition, so an
    /// epoch check and the write it guards are atomic with respect to
    /// [`WriterFence::advance`].
    lock: Arc<Mutex<()>>,
    /// Mutating operations rejected because their handle was fenced.
    fenced_writes: Arc<AtomicU64>,
}

impl WriterFence {
    pub(crate) fn new() -> WriterFence {
        WriterFence::default()
    }

    /// Wraps `inner` in a handle stamped with the current epoch: valid
    /// until the next [`WriterFence::advance`].
    pub(crate) fn handle(&self, inner: Box<dyn LogIo>) -> FencedLog {
        FencedLog {
            inner,
            fence: self.clone(),
            stamp: self.epoch.load(Ordering::SeqCst),
        }
    }

    /// Fences every handle stamped before now. On return the partition
    /// is quiescent: any write that had already passed its epoch check
    /// has finished, and every later attempt from an old handle fails.
    ///
    /// A worker hung *inside* a single storage write (as opposed to a
    /// slow job) holds the lock and would block this briefly; that is a
    /// local disk write, outside the stall model the watchdog targets.
    pub(crate) fn advance(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        drop(self.lock());
    }

    /// Mutating operations rejected on fenced handles.
    pub(crate) fn fenced_writes(&self) -> u64 {
        self.fenced_writes.load(Ordering::SeqCst)
    }

    fn lock(&self) -> MutexGuard<'_, ()> {
        // A panic while holding the lock (inside a worker's append)
        // poisons it; the lock protects no invariant of its own, so
        // recovery is safe.
        self.lock.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A [`LogIo`] handle that refuses every mutating operation once its
/// partition's writer epoch has advanced past the handle's stamp.
/// Reads pass through unguarded — they cannot corrupt the partition.
#[derive(Debug)]
pub(crate) struct FencedLog {
    inner: Box<dyn LogIo>,
    fence: WriterFence,
    stamp: u64,
}

/// Acquires the partition's append lock and verifies a handle stamped
/// `stamp` is still the current writer. A free function over the fence
/// field alone, so a `FencedLog` method can hold the guard while
/// mutating its inner handle.
fn writer_guard(fence: &WriterFence, stamp: u64) -> io::Result<MutexGuard<'_, ()>> {
    let guard = fence.lock();
    if fence.epoch.load(Ordering::SeqCst) != stamp {
        fence.fenced_writes.fetch_add(1, Ordering::SeqCst);
        return Err(io::Error::new(
            io::ErrorKind::PermissionDenied,
            "shard WAL writer fenced: the partition was quarantined and \
             reassigned to a newer writer epoch",
        ));
    }
    Ok(guard)
}

impl LogIo for FencedLog {
    fn list(&self) -> io::Result<Vec<String>> {
        self.inner.list()
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.inner.read(name)
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let _writer = writer_guard(&self.fence, self.stamp)?;
        self.inner.append(name, bytes)
    }

    fn sync(&mut self, name: &str) -> io::Result<()> {
        let _writer = writer_guard(&self.fence, self.stamp)?;
        self.inner.sync(name)
    }

    fn durable_len(&self, name: &str) -> io::Result<u64> {
        self.inner.durable_len(name)
    }

    fn truncate(&mut self, name: &str, len: u64) -> io::Result<()> {
        let _writer = writer_guard(&self.fence, self.stamp)?;
        self.inner.truncate(name, len)
    }

    fn remove(&mut self, name: &str) -> io::Result<()> {
        let _writer = writer_guard(&self.fence, self.stamp)?;
        self.inner.remove(name)
    }

    fn rename(&mut self, from: &str, to: &str) -> io::Result<()> {
        let _writer = writer_guard(&self.fence, self.stamp)?;
        self.inner.rename(from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::MemLog;

    #[test]
    fn current_handle_writes_and_stale_handle_is_fenced() {
        let log = MemLog::new();
        let fence = WriterFence::new();
        let mut old = fence.handle(Box::new(log.clone()));
        old.append("wal-000", b"first")
            .expect("current epoch writes");

        fence.advance();
        let err = old.append("wal-000", b"late").expect_err("fenced");
        assert_eq!(err.kind(), std::io::ErrorKind::PermissionDenied);
        assert!(old.sync("wal-000").is_err());
        assert!(old.truncate("wal-000", 0).is_err());
        assert!(old.rename("wal-000", "wal-001").is_err());
        assert_eq!(fence.fenced_writes(), 4);

        // A handle opened after the advance is the current writer.
        let mut new = fence.handle(Box::new(log.clone()));
        new.append("wal-000", b"second").expect("new epoch writes");
        assert_eq!(new.read("wal-000").unwrap(), b"firstsecond");
        // Reads on the fenced handle still work (observability, replay).
        assert_eq!(old.read("wal-000").unwrap(), b"firstsecond");
    }

    #[test]
    fn fenced_bytes_never_reach_the_log() {
        let log = MemLog::new();
        let fence = WriterFence::new();
        let mut old = fence.handle(Box::new(log.clone()));
        old.append("wal-000", b"committed").unwrap();
        fence.advance();
        let _ = old.append("wal-000", b"zombie");
        assert_eq!(
            fence.handle(Box::new(log)).read("wal-000").unwrap(),
            b"committed"
        );
    }
}
