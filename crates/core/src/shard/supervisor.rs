//! The shard supervision state machine.
//!
//! Each shard slot is either `Up` (a live worker owns its engine) or
//! `Down` (quarantined). Transitions:
//!
//! ```text
//!            panic / stall / hung watchdog
//!      Up ─────────────────────────────────────▶ Down{attempts: 0}
//!       ▲                                           │
//!       │  WAL-replay rebuild succeeds              │ virtual-time backoff
//!       └───────────────────────────────────────────┤ expires; restart
//!                                                   │ attempted
//!          rebuild fails / shard-restart-loss       ▼
//!      Down{attempts: n} ◀──────────────────── restarting
//!      (backoff doubles, capped)
//! ```
//!
//! While `Down`, the router answers every request for the shard's
//! subjects fail-closed with [`crate::DecisionBasis::ShardUnavailable`]
//! and audits each denial; healthy shards are untouched. The backoff
//! clock is *virtual* (driven by the timestamps flowing through
//! operations), so supervision is deterministic under test and never
//! sleeps.
//!
//! The hung-worker watchdog (`ShardSpec::watchdog_ms`) goes through the
//! executor facade in [`tippers_resilience::sim`]: on OS threads it is
//! the real-time `recv_timeout` backstop it always was, while under the
//! simulation executor it counts virtual milliseconds on the same clock
//! that drives the backoff — so a simulated run never consults the wall
//! clock, and a slow CI host can never fire the watchdog spuriously
//! inside a deterministic test.
//!
//! Quarantine begins by *fencing* the abandoned worker's WAL handle
//! (see [`super::fence`]): a slow-but-alive job that outlives its
//! watchdog can never append to the partition the rebuilt engine
//! replays. Re-quarantining an already-down slot (a defensive path)
//! preserves its accumulated restart-attempt count, so backoff
//! escalation for a repeatedly failing shard is never reset by a
//! second detection of the same failure.

/// Externally visible health of one shard slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// Serving: a live worker owns the shard's engine.
    Up,
    /// Quarantined after a panic, stall, or failed restart. Fail-closed
    /// until the virtual-time backoff expires and a WAL-replay rebuild
    /// succeeds.
    Down {
        /// Failed restart attempts since the quarantine began.
        attempts: u32,
        /// Virtual time (ms) before which no restart is attempted.
        down_until_ms: i64,
    },
}

impl ShardHealth {
    /// True when the slot is serving.
    pub fn is_up(&self) -> bool {
        matches!(self, ShardHealth::Up)
    }
}

/// Capped exponential restart backoff: `base << attempts`, saturating
/// at `max`. `attempts` counts *failed restarts* — the first quarantine
/// waits exactly `base`.
pub(crate) fn backoff_ms(base_ms: i64, max_ms: i64, attempts: u32) -> i64 {
    let shift = attempts.min(20);
    base_ms.saturating_mul(1_i64 << shift).min(max_ms)
}

/// Aggregated sharded-runtime counters (observability for the chaos
/// harness, the E20 bench, and operators).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Number of shards.
    pub shards: usize,
    /// Shards currently quarantined.
    pub down: usize,
    /// Worker panics caught at the crash-isolation boundary.
    pub panics: u64,
    /// Stalls detected (injected or real watchdog expiries).
    pub stalls: u64,
    /// Successful WAL-replay restarts.
    pub restarts: u64,
    /// Restart attempts that failed (including injected
    /// `shard-restart-loss`), each extending the quarantine.
    pub restart_losses: u64,
    /// Subjects denied fail-closed because their shard was down.
    pub unavailable_denials: u64,
    /// Owned observations dropped because their shard was down.
    pub unavailable_drops: u64,
    /// Mutations accepted while their owner shard was down and carried
    /// into the rebuilt engine — committed durably through the standby
    /// engine, or (when the partition was unreadable) replayed from the
    /// in-memory fallback queue at restart.
    pub pending_replayed: u64,
    /// WAL writes rejected because the writer was fenced: a quarantined
    /// worker's late append that, unfenced, would have interleaved with
    /// the rebuilt engine's partition.
    pub fenced_writes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        assert_eq!(backoff_ms(250, 8_000, 0), 250);
        assert_eq!(backoff_ms(250, 8_000, 1), 500);
        assert_eq!(backoff_ms(250, 8_000, 2), 1_000);
        assert_eq!(backoff_ms(250, 8_000, 5), 8_000);
        assert_eq!(backoff_ms(250, 8_000, 63), 8_000);
        // Saturation, not overflow, far past the cap's shift range.
        assert_eq!(backoff_ms(i64::MAX / 2, i64::MAX, 3), i64::MAX);
    }
}
