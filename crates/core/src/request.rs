//! Service-facing data requests and privacy-transformed responses
//! (Figure 1, steps 9–10).

use serde::{Deserialize, Serialize};
use tippers_ontology::ConceptId;
use tippers_policy::{Effect, ServiceId, Timestamp, UserId};
use tippers_resilience::Priority;
use tippers_spatial::{GranularLocation, SpaceId};

use crate::enforce::EnforcementDecision;

/// Which subjects a request is about.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SubjectSelector {
    /// One named user ("Mary's location", step 9).
    One(UserId),
    /// Everyone currently associated with a space subtree.
    InSpace(SpaceId),
    /// Every known subject.
    All,
}

/// A service's data request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataRequest {
    /// The requesting service.
    pub service: ServiceId,
    /// Declared purpose — matched against policy purposes.
    pub purpose: ConceptId,
    /// Data category requested.
    pub data: ConceptId,
    /// Whose data.
    pub subjects: SubjectSelector,
    /// Half-open time range of interest.
    pub from: Timestamp,
    /// End of the range (exclusive).
    pub to: Timestamp,
    /// Where the requester (or its user) currently is, if relevant
    /// (Policy 4's proximity gate).
    pub requester_space: Option<SpaceId>,
    /// Admission class (`Emergency > Interactive > Batch`); under
    /// overload, lower classes are shed first and Emergency is never
    /// shed.
    #[serde(default)]
    pub priority: Priority,
    /// Latest useful answer time. Work whose deadline has passed is
    /// dropped (fail-closed, [`crate::DecisionBasis::Overload`]) at every
    /// stage instead of processed.
    #[serde(default)]
    pub deadline: Option<Timestamp>,
}

impl DataRequest {
    /// Reclassifies the request (builder form).
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> DataRequest {
        self.priority = priority;
        self
    }

    /// Attaches a deadline (builder form).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Timestamp) -> DataRequest {
        self.deadline = Some(deadline);
        self
    }
}

/// A value released to a service, already privacy-transformed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ReleasedValue {
    /// A (possibly degraded) location.
    Location(GranularLocation),
    /// A boolean fact (occupancy, motion).
    Flag(bool),
    /// A numeric reading (possibly noised).
    Scalar(f64),
    /// An identity.
    Identity(UserId),
    /// An opaque count (camera occupant counts).
    Count(u32),
}

/// One released record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReleasedRecord {
    /// Observation time.
    pub time: Timestamp,
    /// The transformed value.
    pub value: ReleasedValue,
}

/// Outcome for one subject within a request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubjectResult {
    /// The subject.
    pub user: UserId,
    /// The enforcement decision applied.
    pub decision: EnforcementDecision,
    /// Released records (empty when denied).
    pub records: Vec<ReleasedRecord>,
}

impl SubjectResult {
    /// True if any data was released.
    pub fn released(&self) -> bool {
        !self.records.is_empty()
    }
}

/// The full response to a [`DataRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct DataResponse {
    /// Per-subject outcomes.
    pub results: Vec<SubjectResult>,
    /// True when the BMS answered in degraded mode (its enforcement engine
    /// was unavailable and every decision failed closed). Services should
    /// treat denials in a degraded response as "cannot decide", not "policy
    /// says no".
    pub degraded: bool,
}

impl DataResponse {
    /// Subjects whose data was (at least partially) released.
    pub fn released_subjects(&self) -> Vec<UserId> {
        self.results
            .iter()
            .filter(|r| r.released())
            .map(|r| r.user)
            .collect()
    }

    /// Subjects denied outright.
    pub fn denied_subjects(&self) -> Vec<UserId> {
        self.results
            .iter()
            .filter(|r| r.decision.effect == Effect::Deny)
            .map(|r| r.user)
            .collect()
    }
}
