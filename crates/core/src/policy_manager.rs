//! The Building Policy Manager (Figure 1): the admin's entry point for
//! defining policies (step 1) and publishing them through IRRs (step 4).

use tippers_irr::{AdvertisementId, DiscoveryBus, RegistryError, RegistryId};
use tippers_ontology::Ontology;
use tippers_policy::{BuildingPolicy, PolicyCodec, PolicyId, Timestamp};
use tippers_spatial::SpatialModel;

/// Stores and publishes building policies.
#[derive(Debug, Clone, Default)]
pub struct PolicyManager {
    policies: Vec<BuildingPolicy>,
    next_id: u64,
}

impl PolicyManager {
    /// An empty manager.
    pub fn new() -> PolicyManager {
        PolicyManager::default()
    }

    /// Adds a policy, assigning it a fresh id (any id on the input is
    /// replaced). Returns the assigned id.
    pub fn add(&mut self, mut policy: BuildingPolicy) -> PolicyId {
        let id = PolicyId(self.next_id);
        self.next_id += 1;
        policy.id = id;
        self.policies.push(policy);
        id
    }

    /// Removes a policy. Returns whether it existed.
    pub fn remove(&mut self, id: PolicyId) -> bool {
        let before = self.policies.len();
        self.policies.retain(|p| p.id != id);
        self.policies.len() != before
    }

    /// Looks a policy up.
    pub fn get(&self, id: PolicyId) -> Option<&BuildingPolicy> {
        self.policies.iter().find(|p| p.id == id)
    }

    /// All policies.
    pub fn all(&self) -> &[BuildingPolicy] {
        &self.policies
    }

    /// Number of policies.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// True if no policies are defined.
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }

    /// The manager's durable state: the policies and the id allocator's
    /// next value (for write-ahead-log checkpoints).
    pub fn snapshot_parts(&self) -> (Vec<BuildingPolicy>, u64) {
        (self.policies.clone(), self.next_id)
    }

    /// The id allocator's next value (without cloning the policy set).
    pub(crate) fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Rebuilds a manager from checkpointed parts.
    ///
    /// # Panics
    ///
    /// Panics if any policy id is at or above `next_id` — such a state
    /// would reissue ids already referenced elsewhere. Callers recovering
    /// untrusted checkpoints validate first (see `Tippers::open`).
    pub fn from_parts(policies: Vec<BuildingPolicy>, next_id: u64) -> PolicyManager {
        assert!(
            policies.iter().all(|p| p.id.0 < next_id),
            "policy id allocator must be ahead of every stored id"
        );
        PolicyManager { policies, next_id }
    }

    /// Publishes every policy to a registry as wire-format documents
    /// (step 4 of Figure 1).
    ///
    /// # Errors
    ///
    /// Propagates the first [`RegistryError`]; policies published before
    /// the failure remain advertised.
    pub fn publish_all(
        &self,
        ontology: &Ontology,
        model: &SpatialModel,
        bus: &mut DiscoveryBus,
        registry: RegistryId,
        now: Timestamp,
        ttl_secs: i64,
    ) -> Result<Vec<AdvertisementId>, RegistryError> {
        let codec = PolicyCodec::new(ontology, model);
        let mut out = Vec::with_capacity(self.policies.len());
        for policy in &self.policies {
            let doc = codec.to_document(policy);
            let space = policy.space;
            let reg = bus
                .registry_mut(registry)
                .ok_or(RegistryError::NotAdvertisable {
                    issues: format!("registry {registry} does not exist"),
                })?;
            out.push(reg.publish(doc, space, now, ttl_secs)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tippers_irr::NetworkConfig;
    use tippers_policy::catalog;
    use tippers_spatial::fixtures::dbh;

    #[test]
    fn ids_are_assigned_sequentially() {
        let ont = Ontology::standard();
        let d = dbh();
        let mut pm = PolicyManager::new();
        let a = pm.add(catalog::policy1_thermostat(PolicyId(99), d.building, &ont));
        let b = pm.add(catalog::policy2_emergency_location(
            PolicyId(99),
            d.building,
            &ont,
        ));
        assert_eq!(a, PolicyId(0));
        assert_eq!(b, PolicyId(1));
        assert_eq!(pm.len(), 2);
        assert!(pm.get(a).is_some());
        assert!(pm.remove(a));
        assert!(!pm.remove(a));
        assert_eq!(pm.len(), 1);
    }

    #[test]
    fn publish_all_advertises_every_policy() {
        let ont = Ontology::standard();
        let d = dbh();
        let mut pm = PolicyManager::new();
        pm.add(catalog::policy1_thermostat(PolicyId(0), d.building, &ont));
        pm.add(catalog::policy2_emergency_location(
            PolicyId(0),
            d.building,
            &ont,
        ));
        let mut bus = DiscoveryBus::new(NetworkConfig::default());
        let irr = bus.add_registry("DBH IRR", d.building);
        let ads = pm
            .publish_all(
                &ont,
                &d.model,
                &mut bus,
                irr,
                Timestamp::at(0, 8, 0),
                86_400,
            )
            .unwrap();
        assert_eq!(ads.len(), 2);
        assert_eq!(bus.registry(irr).unwrap().len(), 2);
    }
}
