//! TIPPERS — the privacy-aware building management system.
//!
//! The third component of the paper's framework: the BMS that "captures raw
//! data from the different sensors in the building, processes higher-level
//! semantic information from such data, and empowers development of
//! different building services … \[and] is also capable of capturing and
//! enforcing privacy preferences expressed by the building's inhabitants"
//! (§II.B).
//!
//! The crate mirrors Figure 1's boxes:
//!
//! * [`PolicyManager`] — the building admin's policies (step 1), published
//!   through IRRs (step 4).
//! * [`SensorManager`] — live occupancy state, HVAC actuation (Policy 1),
//!   capture-time suppression pushed to devices.
//! * [`Store`] — the observation DB (step 3), with retention enforcement.
//! * [`PreferenceManager`] — user preferences received from IoTAs (step 8).
//! * Request Manager — [`Tippers::handle_request`] (steps 9–10), deciding
//!   each flow through an [`Enforcer`].
//! * [`AuditLog`] — decisions and user notifications.
//!
//! The enforcement engine comes in two interchangeable implementations
//! ([`NaiveEnforcer`] and [`IndexedEnforcer`]) to quantify §V.C's claim
//! that naive enforcement is prohibitively expensive at scale.
//!
//! # Examples
//!
//! ```
//! use tippers::{Tippers, TippersConfig};
//! use tippers_ontology::Ontology;
//! use tippers_policy::{catalog, PolicyId, Timestamp};
//! use tippers_spatial::fixtures::dbh;
//!
//! let ontology = Ontology::standard();
//! let building = dbh();
//! let mut bms = Tippers::new(ontology, building.model.clone(), TippersConfig::default());
//! let policy = catalog::policy2_emergency_location(
//!     PolicyId(0),
//!     building.building,
//!     bms.ontology(),
//! );
//! let id = bms.add_policy(policy);
//! assert!(bms.policy(id).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
mod audit;
mod enforce;
pub mod ingest;
mod policy_manager;
mod preference_manager;
mod quota;
pub mod replication;
mod request;
mod sensor_manager;
pub mod shard;
mod snapshot;
mod store;
mod tippers;
pub mod wal;

pub use aggregate::{AggregateBucket, AggregateRequest, AggregateResponse};
pub use audit::chain::{
    verify_segment, AuditChain, ChainFault, ChainedRecord, SealedSegment, ARCHIVE_PREFIX,
    SEGMENT_RECORDS,
};
pub use audit::{AuditEntry, AuditLog, ChainEvent, DeletionCertificate, UserNotification};
pub use enforce::{
    policy_applies, DecisionBasis, EnforcementDecision, Enforcer, IndexedEnforcer, NaiveEnforcer,
    RequestFlow,
};
pub use ingest::{
    CaptureDrop, CaptureDropReason, CaptureFilter, IngestConfig, IngestPipeline, IngestReport,
    IngestStats, LadderRung,
};
pub use policy_manager::PolicyManager;
pub use preference_manager::{PreferenceManager, SettingsError};
pub use quota::{QuotaConfig, QuotaCounter, QuotaLedger};
pub use request::{
    DataRequest, DataResponse, ReleasedRecord, ReleasedValue, SubjectResult, SubjectSelector,
};
pub use sensor_manager::{HvacCommand, SensorManager};
pub use shard::{
    jump_hash, EnforcementCore, ShardHealth, ShardRouter, ShardSpec, ShardStats, ShardedTippers,
};
pub use snapshot::{Snapshot, SnapshotError, SNAPSHOT_VERSION};
pub use store::{Store, StoredRow};
pub use tippers::{EnforcerKind, Tippers, TippersConfig};
pub use wal::{
    GroupCommitReport, InvalidationTail, RecoveryReport, SettingsMutation, WalConfig, WalError,
    WalRecord,
};

// Resilience vocabulary used in this crate's public API (health reporting,
// fault-plan configuration, admission control), re-exported for downstream
// convenience.
pub use tippers_resilience::{
    AdmissionConfig, AdmissionStats, AimdConfig, BrownoutConfig, BrownoutLevel, FaultPlan,
    FaultPoint, HealthStatus, Nemesis, NemesisAction, Priority, ShedReason, StormAction,
    TokenBucketConfig, VirtualClock, MILLIS_PER_SEC,
};
