//! SHA-256 and HMAC-SHA256, implemented in-tree.
//!
//! The audit chain needs a collision-resistant digest and a keyed MAC; the
//! workspace is offline and vendors no cryptography crate, so the two
//! primitives are implemented here directly from FIPS 180-4 and RFC 2104.
//! Both are pure safe Rust over byte slices — no streaming state, no
//! hardware paths — which is plenty for audit-segment sealing (the chain
//! appends tens of bytes per enforcement decision, far off any hot path).

/// First 32 bits of the fractional parts of the cube roots of the first 64
/// primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a_2f98,
    0x7137_4491,
    0xb5c0_fbcf,
    0xe9b5_dba5,
    0x3956_c25b,
    0x59f1_11f1,
    0x923f_82a4,
    0xab1c_5ed5,
    0xd807_aa98,
    0x1283_5b01,
    0x2431_85be,
    0x550c_7dc3,
    0x72be_5d74,
    0x80de_b1fe,
    0x9bdc_06a7,
    0xc19b_f174,
    0xe49b_69c1,
    0xefbe_4786,
    0x0fc1_9dc6,
    0x240c_a1cc,
    0x2de9_2c6f,
    0x4a74_84aa,
    0x5cb0_a9dc,
    0x76f9_88da,
    0x983e_5152,
    0xa831_c66d,
    0xb003_27c8,
    0xbf59_7fc7,
    0xc6e0_0bf3,
    0xd5a7_9147,
    0x06ca_6351,
    0x1429_2967,
    0x27b7_0a85,
    0x2e1b_2138,
    0x4d2c_6dfc,
    0x5338_0d13,
    0x650a_7354,
    0x766a_0abb,
    0x81c2_c92e,
    0x9272_2c85,
    0xa2bf_e8a1,
    0xa81a_664b,
    0xc24b_8b70,
    0xc76c_51a3,
    0xd192_e819,
    0xd699_0624,
    0xf40e_3585,
    0x106a_a070,
    0x19a4_c116,
    0x1e37_6c08,
    0x2748_774c,
    0x34b0_bcb5,
    0x391c_0cb3,
    0x4ed8_aa4a,
    0x5b9c_ca4f,
    0x682e_6ff3,
    0x748f_82ee,
    0x78a5_636f,
    0x84c8_7814,
    0x8cc7_0208,
    0x90be_fffa,
    0xa450_6ceb,
    0xbef9_a3f7,
    0xc671_78f2,
];

/// Initial hash value: fractional parts of the square roots of the first
/// eight primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

/// SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    // Padded message: data || 0x80 || zeros || 64-bit big-endian bit length.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    let mut h = H0;
    let mut w = [0u32; 64];
    for block in msg.chunks_exact(64) {
        for (t, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes([
                block[4 * t],
                block[4 * t + 1],
                block[4 * t + 2],
                block[4 * t + 3],
            ]);
        }
        for t in 16..64 {
            let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
            let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
            w[t] = w[t - 16]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for t in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[t])
                .wrapping_add(w[t]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (slot, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
            *slot = slot.wrapping_add(v);
        }
    }

    let mut out = [0u8; 32];
    for (i, word) in h.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// HMAC-SHA256 of `data` under `key` (RFC 2104).
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    let mut block = [0u8; 64];
    if key.len() > 64 {
        block[..32].copy_from_slice(&sha256(key));
    } else {
        block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Vec::with_capacity(64 + data.len());
    inner.extend(block.iter().map(|b| b ^ 0x36));
    inner.extend_from_slice(data);
    let inner_digest = sha256(&inner);
    let mut outer = Vec::with_capacity(96);
    outer.extend(block.iter().map(|b| b ^ 0x5c));
    outer.extend_from_slice(&inner_digest);
    sha256(&outer)
}

/// Lowercase hex of a digest.
pub fn hex(digest: &[u8; 32]) -> String {
    let mut out = String::with_capacity(64);
    for byte in digest {
        out.push(char::from_digit((byte >> 4) as u32, 16).unwrap());
        out.push(char::from_digit((byte & 0xf) as u32, 16).unwrap());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_known_answers() {
        // FIPS 180-4 / NIST CAVP vectors.
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_padding_edge_lengths() {
        // 55/56/64 bytes straddle the one-vs-two-block padding boundary.
        for len in [55usize, 56, 63, 64, 65, 119, 120] {
            let data = vec![0x61u8; len];
            let digest = sha256(&data);
            // Self-consistency: appending one byte must change the digest.
            let mut longer = data.clone();
            longer.push(0x61);
            assert_ne!(digest, sha256(&longer), "length {len}");
        }
        // 64-byte vector from NIST CAVP (SHA256LongMsg-style sanity check).
        assert_eq!(
            hex(&sha256(&[0x61u8; 64])),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"
        );
    }

    #[test]
    fn hmac_known_answers() {
        // RFC 4231 test case 2.
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        // RFC 4231 test case 1.
        assert_eq!(
            hex(&hmac_sha256(&[0x0b; 20], b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn hmac_long_keys_are_hashed_first() {
        // RFC 4231 test case 6: a 131-byte key exceeds the block size.
        assert_eq!(
            hex(&hmac_sha256(
                &[0xaa; 131],
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }
}
