//! Tamper-evident audit chain: HMAC-linked records, sealed segments.
//!
//! The plain [`crate::AuditLog`] is honest but defenseless — anyone holding
//! the process image (or the snapshot file) could rewrite history. The
//! chain makes rewriting *detectable*: every appended record carries the
//! MAC of its predecessor inside its own MAC, so mutating, dropping,
//! swapping or truncating any record breaks verification of everything
//! after it. Full segments seal under a signed root and archive through
//! the WAL's [`crate::wal::LogIo`] backend, where the resilience harness
//! can flip their bits and verification must notice.
//!
//! The MAC key is a deployment parameter; this reproduction derives a
//! fixed key from a domain-separation string because there is no key
//! provisioning story in the paper. Everything else — linking, sealing,
//! verification — is key-agnostic.

use serde::{Deserialize, Serialize};

use super::hash::{hex, hmac_sha256, sha256};

/// Records per sealed segment. Small enough that a corrupted archive file
/// localizes to tens of decisions, large enough that sealing is rare.
pub const SEGMENT_RECORDS: usize = 64;

/// Archive file-name prefix for sealed segments (`audit-0000000000.seg`).
/// The WAL's recovery scan ignores non-`wal-*` names, so sealed segments
/// can share the log directory and its failure modes.
pub const ARCHIVE_PREFIX: &str = "audit-";

fn mac_key() -> [u8; 32] {
    sha256(b"tippers/audit-chain/mac-key/v1")
}

fn genesis_link() -> String {
    hex(&sha256(b"tippers/audit-chain/genesis-link"))
}

fn genesis_root() -> String {
    hex(&sha256(b"tippers/audit-chain/genesis-root"))
}

fn record_mac(seq: u64, prev: &str, payload: &str) -> String {
    // `prev` is a fixed-width hex digest, so the join is unambiguous.
    let input = format!("{seq:016x}:{prev}:{payload}");
    hex(&hmac_sha256(&mac_key(), input.as_bytes()))
}

fn segment_root(first_seq: u64, last_seq: u64, last_mac: &str, prev_root: &str) -> String {
    let input = format!("seal:{first_seq:016x}:{last_seq:016x}:{last_mac}:{prev_root}");
    hex(&hmac_sha256(&mac_key(), input.as_bytes()))
}

/// One chained audit record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainedRecord {
    /// Position in the chain, starting at 0 and never reused.
    pub seq: u64,
    /// MAC of the predecessor (the genesis link for record 0).
    pub prev: String,
    /// The audited event, as canonical JSON.
    pub payload: String,
    /// HMAC-SHA256 over (seq, prev, payload).
    pub mac: String,
}

/// A sealed, immutable run of [`SEGMENT_RECORDS`] chained records.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SealedSegment {
    /// Sequence number of the first record.
    pub first_seq: u64,
    /// Sequence number of the last record.
    pub last_seq: u64,
    /// The link the first record chains from (previous segment's last MAC).
    pub prev_link: String,
    /// The previous segment's root (the genesis root for the first).
    pub prev_root: String,
    /// The records, in sequence order.
    pub records: Vec<ChainedRecord>,
    /// Signed root over the segment bounds, last MAC, and previous root.
    pub root: String,
}

/// How a chain or archive failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainFault {
    /// A record's MAC does not match its contents (mutation / bit-flip).
    Mac {
        /// Sequence number of the offending record.
        seq: u64,
    },
    /// A record's `prev` is not its predecessor's MAC (swap / splice).
    Link {
        /// Sequence number of the offending record.
        seq: u64,
    },
    /// Sequence numbers are not contiguous (drop / truncation / reorder).
    Sequence {
        /// The sequence number that should have come next.
        expected: u64,
        /// The sequence number actually found.
        found: u64,
    },
    /// A sealed segment's root does not match its contents, or root
    /// lineage across segments is broken.
    Root {
        /// First sequence number of the offending segment.
        first_seq: u64,
    },
    /// An archived segment could not be parsed at all.
    Corrupt {
        /// Archive file name.
        name: String,
    },
}

impl std::fmt::Display for ChainFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainFault::Mac { seq } => write!(f, "record {seq} fails its MAC"),
            ChainFault::Link { seq } => {
                write!(f, "record {seq} does not chain from its predecessor")
            }
            ChainFault::Sequence { expected, found } => {
                write!(f, "expected sequence {expected}, found {found}")
            }
            ChainFault::Root { first_seq } => {
                write!(f, "segment starting at {first_seq} fails its sealed root")
            }
            ChainFault::Corrupt { name } => write!(f, "archived segment {name} is unparseable"),
        }
    }
}

/// The live, append-only audit chain.
///
/// Node-local accountability state: the chain is *about* the replicated
/// audit events but is not itself replicated or snapshotted — each node
/// journals what it witnessed, and recovery resumes after the last sealed
/// segment rather than reconstructing unsealed history.
///
/// # Examples
///
/// ```
/// use tippers::AuditChain;
///
/// let mut chain = AuditChain::new();
/// chain.append("{\"event\":\"demo\"}".to_owned());
/// chain.append("{\"event\":\"demo2\"}".to_owned());
/// assert_eq!(chain.verify().unwrap(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditChain {
    /// Link the next unsealed run chains from.
    base: String,
    /// Root lineage carried into the next seal.
    prev_root: String,
    /// Next sequence number to assign.
    next_seq: u64,
    /// Appended but not yet sealed records.
    open: Vec<ChainedRecord>,
    /// Segments sealed over this chain's lifetime (count only; the bytes
    /// live in the archive).
    sealed: u64,
}

impl Default for AuditChain {
    fn default() -> AuditChain {
        AuditChain::new()
    }
}

impl AuditChain {
    /// An empty chain anchored at the genesis link.
    pub fn new() -> AuditChain {
        AuditChain {
            base: genesis_link(),
            prev_root: genesis_root(),
            next_seq: 0,
            open: Vec::new(),
            sealed: 0,
        }
    }

    /// Appends an event payload, returning the new record.
    pub fn append(&mut self, payload: String) -> &ChainedRecord {
        let seq = self.next_seq;
        let prev = self
            .open
            .last()
            .map_or_else(|| self.base.clone(), |r| r.mac.clone());
        let mac = record_mac(seq, &prev, &payload);
        self.next_seq += 1;
        self.open.push(ChainedRecord {
            seq,
            prev,
            payload,
            mac,
        });
        self.open.last().expect("just pushed")
    }

    /// The not-yet-sealed records, oldest first.
    pub fn open_records(&self) -> &[ChainedRecord] {
        &self.open
    }

    /// Sequence number the next append will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Number of segments sealed over this chain's lifetime.
    pub fn sealed_segments(&self) -> u64 {
        self.sealed
    }

    /// The current head MAC (what the next record will chain from).
    pub fn head(&self) -> &str {
        self.open.last().map_or(self.base.as_str(), |r| &r.mac)
    }

    /// Verifies the open run: sequence continuity, linkage from the base,
    /// and every MAC. Returns the number of records checked.
    ///
    /// # Errors
    ///
    /// The first [`ChainFault`] encountered walking oldest-to-newest.
    pub fn verify(&self) -> Result<u64, ChainFault> {
        let first_seq = self.next_seq - self.open.len() as u64;
        let mut expected_prev = self.base.as_str();
        for (expected_seq, record) in (first_seq..).zip(self.open.iter()) {
            if record.seq != expected_seq {
                return Err(ChainFault::Sequence {
                    expected: expected_seq,
                    found: record.seq,
                });
            }
            if record.prev != expected_prev {
                return Err(ChainFault::Link { seq: record.seq });
            }
            if record.mac != record_mac(record.seq, &record.prev, &record.payload) {
                return Err(ChainFault::Mac { seq: record.seq });
            }
            expected_prev = &record.mac;
        }
        Ok(self.open.len() as u64)
    }

    /// Seals every full run of `cap` records into segments, advancing the
    /// chain's base and root lineage past them. Returns the segments in
    /// order; the caller owns archiving them.
    pub fn seal(&mut self, cap: usize) -> Vec<SealedSegment> {
        assert!(cap > 0, "segment capacity must be positive");
        let mut out = Vec::new();
        while self.open.len() >= cap {
            let records: Vec<ChainedRecord> = self.open.drain(..cap).collect();
            let first_seq = records[0].seq;
            let last = records.last().expect("cap > 0");
            let root = segment_root(first_seq, last.seq, &last.mac, &self.prev_root);
            let segment = SealedSegment {
                first_seq,
                last_seq: last.seq,
                prev_link: records[0].prev.clone(),
                prev_root: self.prev_root.clone(),
                records,
                root,
            };
            self.base = segment.records.last().expect("cap > 0").mac.clone();
            self.prev_root = segment.root.clone();
            self.sealed += 1;
            out.push(segment);
        }
        out
    }

    /// Resumes a recovered chain directly after an archived segment: new
    /// appends continue its sequence numbers, link, and root lineage.
    /// Unsealed pre-crash records are gone by definition — recovery
    /// re-journals replayed events instead of reconstructing them.
    pub fn resume_after(&mut self, segment: &SealedSegment) {
        self.base = segment
            .records
            .last()
            .map_or_else(|| segment.prev_link.clone(), |r| r.mac.clone());
        self.prev_root = segment.root.clone();
        self.next_seq = segment.last_seq + 1;
        self.open.clear();
        self.sealed = 0;
    }

    /// Verifies an ordered archive of sealed segments *and* its continuity
    /// with this live chain: each segment internally, root/link lineage
    /// between segments, and that the newest segment is exactly what this
    /// chain resumed from (so deleting archive tails is detected too).
    /// Returns the total number of records checked.
    ///
    /// # Errors
    ///
    /// The first [`ChainFault`] encountered, oldest segment first.
    pub fn verify_archive(&self, segments: &[SealedSegment]) -> Result<u64, ChainFault> {
        let mut checked = 0u64;
        let mut expected_first = 0u64;
        let mut expected_link = genesis_link();
        let mut expected_root = genesis_root();
        for segment in segments {
            if segment.first_seq != expected_first {
                return Err(ChainFault::Sequence {
                    expected: expected_first,
                    found: segment.first_seq,
                });
            }
            if segment.prev_link != expected_link {
                return Err(ChainFault::Link {
                    seq: segment.first_seq,
                });
            }
            if segment.prev_root != expected_root {
                return Err(ChainFault::Root {
                    first_seq: segment.first_seq,
                });
            }
            checked += verify_segment(segment)?;
            expected_first = segment.last_seq + 1;
            expected_link = segment
                .records
                .last()
                .expect("verified segment is non-empty")
                .mac
                .clone();
            expected_root = segment.root.clone();
        }
        // The live chain must take over exactly where the archive ends.
        let first_open = self.next_seq - self.open.len() as u64;
        if expected_first != first_open {
            return Err(ChainFault::Sequence {
                expected: expected_first,
                found: first_open,
            });
        }
        if self.base != expected_link {
            return Err(ChainFault::Link { seq: first_open });
        }
        if self.prev_root != expected_root {
            return Err(ChainFault::Root {
                first_seq: expected_first,
            });
        }
        Ok(checked)
    }
}

/// Verifies one sealed segment in isolation: bounds, linkage, MACs, root.
/// Returns the number of records checked.
///
/// # Errors
///
/// The first [`ChainFault`] encountered walking the segment.
pub fn verify_segment(segment: &SealedSegment) -> Result<u64, ChainFault> {
    let Some(first) = segment.records.first() else {
        return Err(ChainFault::Root {
            first_seq: segment.first_seq,
        });
    };
    if first.seq != segment.first_seq {
        return Err(ChainFault::Sequence {
            expected: segment.first_seq,
            found: first.seq,
        });
    }
    let mut expected_prev = segment.prev_link.as_str();
    for (expected_seq, record) in (segment.first_seq..).zip(segment.records.iter()) {
        if record.seq != expected_seq {
            return Err(ChainFault::Sequence {
                expected: expected_seq,
                found: record.seq,
            });
        }
        if record.prev != expected_prev {
            return Err(ChainFault::Link { seq: record.seq });
        }
        if record.mac != record_mac(record.seq, &record.prev, &record.payload) {
            return Err(ChainFault::Mac { seq: record.seq });
        }
        expected_prev = &record.mac;
    }
    let last = segment.records.last().expect("non-empty");
    if last.seq != segment.last_seq {
        return Err(ChainFault::Sequence {
            expected: segment.last_seq,
            found: last.seq,
        });
    }
    if segment.root
        != segment_root(
            segment.first_seq,
            segment.last_seq,
            &last.mac,
            &segment.prev_root,
        )
    {
        return Err(ChainFault::Root {
            first_seq: segment.first_seq,
        });
    }
    Ok(segment.records.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_with(n: usize) -> AuditChain {
        let mut chain = AuditChain::new();
        for i in 0..n {
            chain.append(format!("{{\"event\":{i}}}"));
        }
        chain
    }

    #[test]
    fn appends_verify_clean() {
        let chain = chain_with(10);
        assert_eq!(chain.verify().unwrap(), 10);
        assert_eq!(chain.next_seq(), 10);
    }

    #[test]
    fn any_mutation_drop_or_swap_is_detected() {
        let n = 12;
        for i in 0..n {
            // Mutate record i's payload.
            let mut chain = chain_with(n);
            chain.open[i].payload = "{\"event\":\"forged\"}".to_owned();
            assert!(chain.verify().is_err(), "mutation at {i} undetected");

            // Drop record i.
            let mut chain = chain_with(n);
            chain.open.remove(i);
            assert!(chain.verify().is_err(), "drop at {i} undetected");
        }
        for i in 0..n - 1 {
            let mut chain = chain_with(n);
            chain.open.swap(i, i + 1);
            assert!(chain.verify().is_err(), "swap at {i} undetected");
        }
    }

    #[test]
    fn sealing_advances_lineage_and_archive_verifies() {
        let mut chain = chain_with(150);
        let segments = chain.seal(64);
        assert_eq!(segments.len(), 2);
        assert_eq!(chain.open_records().len(), 150 - 128);
        assert_eq!(chain.verify().unwrap(), 22);
        assert_eq!(chain.verify_archive(&segments).unwrap(), 128);
        // Segments chain into each other.
        assert_eq!(segments[1].prev_root, segments[0].root);
        assert_eq!(
            segments[1].prev_link,
            segments[0].records.last().unwrap().mac
        );
    }

    #[test]
    fn archive_tampering_is_detected() {
        let mut chain = chain_with(200);
        let segments = chain.seal(64);
        assert_eq!(segments.len(), 3);
        assert!(chain.verify_archive(&segments).is_ok());

        // Bit-flip a payload deep inside a sealed segment.
        let mut forged = segments.clone();
        forged[1].records[10].payload.push('x');
        assert!(matches!(
            chain.verify_archive(&forged),
            Err(ChainFault::Mac { .. })
        ));

        // Drop a middle segment.
        let mut missing = segments.clone();
        missing.remove(1);
        assert!(chain.verify_archive(&missing).is_err());

        // Drop the newest segment: the live chain no longer lines up.
        let mut truncated = segments.clone();
        truncated.pop();
        assert!(chain.verify_archive(&truncated).is_err());

        // Reorder segments.
        let mut reordered = segments.clone();
        reordered.swap(0, 1);
        assert!(chain.verify_archive(&reordered).is_err());

        // Re-root a segment to hide a lineage break.
        let mut rerooted = segments;
        rerooted[2].prev_root = genesis_root();
        assert!(matches!(
            chain.verify_archive(&rerooted),
            Err(ChainFault::Root { .. })
        ));
    }

    #[test]
    fn resume_continues_sequence_and_lineage() {
        let mut chain = chain_with(64);
        let segments = chain.seal(64);
        assert_eq!(segments.len(), 1);

        let mut recovered = AuditChain::new();
        recovered.resume_after(&segments[0]);
        assert_eq!(recovered.next_seq(), 64);
        recovered.append("{\"event\":\"post-crash\"}".to_owned());
        assert_eq!(recovered.verify().unwrap(), 1);
        assert_eq!(recovered.verify_archive(&segments).unwrap(), 64);
    }

    #[test]
    fn sealed_segments_round_trip_serde() {
        let mut chain = chain_with(64);
        let segment = chain.seal(64).remove(0);
        let json = serde_json::to_string(&segment).unwrap();
        let back: SealedSegment = serde_json::from_str(&json).unwrap();
        assert_eq!(back, segment);
        assert_eq!(verify_segment(&back).unwrap(), 64);
    }
}
