//! Decision audit log and user notifications.
//!
//! Every enforcement decision is recorded; IoTAs pull per-user
//! notifications from here (conflict notices, mandatory overrides), which
//! also serve as the labeled data the IoTA's preference learner consumes
//! (§V.B: "the assistant requires labeled data over a period of time").

use serde::{Deserialize, Serialize};
use tippers_ontology::ConceptId;
use tippers_policy::{Effect, ServiceId, Timestamp, UserId};

use crate::enforce::{DecisionBasis, EnforcementDecision};

pub mod chain;
pub(crate) mod hash;

/// Proof that one retention sweep deleted what it claimed to delete.
///
/// Emitted when a sweep commits (and re-emitted identically by replicas
/// and crash recovery replaying the same `SweepCommit` record); the
/// `digest` is a SHA-256 over the sweep id, sweep time, and the canonical
/// JSON of every deleted row, so auditors holding the deleted rows can
/// re-derive it and auditors without them can still match certificates
/// across nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeletionCertificate {
    /// The sweep this certificate proves.
    pub sweep: u64,
    /// Virtual time the sweep ran at.
    pub time: Timestamp,
    /// Number of rows deleted.
    pub rows: u64,
    /// SHA-256 (hex) over the sweep id, time, and deleted-row JSON.
    pub digest: String,
}

/// An event journaled onto the tamper-evident [`chain::AuditChain`]: the
/// chain's record payloads are the canonical JSON of these.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChainEvent {
    /// An enforcement decision was audited.
    Decision {
        /// The audited entry, exactly as recorded in the [`AuditLog`].
        entry: AuditEntry,
    },
    /// A retention sweep committed and certified its deletions.
    Deletion {
        /// The certificate, exactly as recorded in the [`AuditLog`].
        certificate: DeletionCertificate,
    },
}

/// One audited enforcement decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditEntry {
    /// When the decision was made.
    pub time: Timestamp,
    /// The data subject.
    pub subject: UserId,
    /// The requesting service, if any.
    pub service: Option<ServiceId>,
    /// Data category of the flow.
    pub data: ConceptId,
    /// Purpose of the flow.
    pub purpose: ConceptId,
    /// Resulting effect.
    pub effect: Effect,
    /// Why.
    pub basis: DecisionBasis,
}

/// A message for one user's IoTA.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserNotification {
    /// The addressee.
    pub user: UserId,
    /// When it was generated.
    pub time: Timestamp,
    /// The message.
    pub text: String,
}

/// The audit log.
///
/// # Examples
///
/// ```
/// use tippers::AuditLog;
/// use tippers_policy::{Timestamp, UserId};
///
/// let mut log = AuditLog::new();
/// log.notify(UserId(1), Timestamp::at(0, 9, 0), "hello".to_owned());
/// let mine = log.take_notifications(UserId(1));
/// assert_eq!(mine.len(), 1);
/// assert_eq!(log.pending_notifications(), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AuditLog {
    entries: Vec<AuditEntry>,
    notifications: Vec<UserNotification>,
    /// Deletion certificates, oldest first. `default` so snapshots taken
    /// before the retention sweeper existed still deserialize.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    certificates: Vec<DeletionCertificate>,
}

impl AuditLog {
    /// An empty log.
    pub fn new() -> AuditLog {
        AuditLog::default()
    }

    /// Records a decision; emits an override notification when a mandatory
    /// policy trumped the subject's preference. Returns the recorded entry
    /// so callers can journal it onto the tamper-evident chain.
    pub fn record(
        &mut self,
        time: Timestamp,
        subject: UserId,
        service: Option<ServiceId>,
        data: ConceptId,
        purpose: ConceptId,
        decision: &EnforcementDecision,
    ) -> &AuditEntry {
        if let Some(pref) = decision.overridden_preference {
            self.notify(
                subject,
                time,
                format!(
                    "A mandatory building policy overrode your preference {pref} for this request."
                ),
            );
        }
        self.entries.push(AuditEntry {
            time,
            subject,
            service,
            data,
            purpose,
            effect: decision.effect,
            basis: decision.basis.clone(),
        });
        self.entries.last().expect("just pushed")
    }

    /// Records a deletion certificate.
    pub fn certify(&mut self, certificate: DeletionCertificate) {
        self.certificates.push(certificate);
    }

    /// All deletion certificates, oldest first.
    pub fn certificates(&self) -> &[DeletionCertificate] {
        &self.certificates
    }

    /// Queues a notification.
    pub fn notify(&mut self, user: UserId, time: Timestamp, text: String) {
        self.notifications
            .push(UserNotification { user, time, text });
    }

    /// All entries, oldest first.
    pub fn entries(&self) -> &[AuditEntry] {
        &self.entries
    }

    /// Entries about one subject.
    pub fn entries_for(&self, user: UserId) -> Vec<&AuditEntry> {
        self.entries.iter().filter(|e| e.subject == user).collect()
    }

    /// Drains the pending notifications for one user (the IoTA poll).
    pub fn take_notifications(&mut self, user: UserId) -> Vec<UserNotification> {
        let (mine, rest): (Vec<_>, Vec<_>) =
            self.notifications.drain(..).partition(|n| n.user == user);
        self.notifications = rest;
        mine
    }

    /// Number of pending notifications (all users).
    pub fn pending_notifications(&self) -> usize {
        self.notifications.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tippers_ontology::Ontology;
    use tippers_policy::PreferenceId;

    #[test]
    fn record_and_filter() {
        let ont = Ontology::standard();
        let c = ont.concepts();
        let mut log = AuditLog::new();
        let d = EnforcementDecision {
            effect: Effect::Deny,
            basis: DecisionBasis::NoAuthorizingPolicy,
            overridden_preference: None,
        };
        log.record(
            Timestamp::at(0, 9, 0),
            UserId(1),
            None,
            c.location,
            c.marketing,
            &d,
        );
        log.record(
            Timestamp::at(0, 9, 1),
            UserId(2),
            None,
            c.location,
            c.marketing,
            &d,
        );
        assert_eq!(log.entries().len(), 2);
        assert_eq!(log.entries_for(UserId(1)).len(), 1);
    }

    #[test]
    fn override_generates_notification() {
        let ont = Ontology::standard();
        let c = ont.concepts();
        let mut log = AuditLog::new();
        let d = EnforcementDecision {
            effect: Effect::Allow,
            basis: DecisionBasis::MandatoryPolicy(tippers_policy::PolicyId(2)),
            overridden_preference: Some(PreferenceId(2)),
        };
        log.record(
            Timestamp::at(0, 9, 0),
            UserId(1),
            None,
            c.location,
            c.emergency_response,
            &d,
        );
        let notes = log.take_notifications(UserId(1));
        assert_eq!(notes.len(), 1);
        assert!(notes[0].text.contains("overrode"));
        // Drained.
        assert!(log.take_notifications(UserId(1)).is_empty());
    }

    #[test]
    fn overload_entries_survive_a_serde_round_trip() {
        let ont = Ontology::standard();
        let c = ont.concepts();
        let mut log = AuditLog::new();
        log.record(
            Timestamp::at(0, 9, 0),
            UserId(1),
            Some(ServiceId::new("svc-storm")),
            c.location,
            c.comfort,
            &EnforcementDecision::shed_overload(),
        );
        let json = serde_json::to_string(&log).unwrap();
        let back: AuditLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back, log);
        let entry = &back.entries()[0];
        assert_eq!(entry.basis, DecisionBasis::Overload);
        // Fail closed: a shed is a denial, never a release.
        assert_eq!(entry.effect, Effect::Deny);
    }

    #[test]
    fn take_notifications_is_per_user() {
        let mut log = AuditLog::new();
        log.notify(UserId(1), Timestamp::at(0, 0, 0), "a".into());
        log.notify(UserId(2), Timestamp::at(0, 0, 0), "b".into());
        assert_eq!(log.pending_notifications(), 2);
        let mine = log.take_notifications(UserId(1));
        assert_eq!(mine.len(), 1);
        assert_eq!(log.pending_notifications(), 1);
    }
}
