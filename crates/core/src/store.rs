//! The BMS's observation store (the `DB` box of Figure 1, step 3).
//!
//! Rows are tagged at ingest with the data category, the authorizing
//! policy, and an expiry derived from that policy's retention element —
//! retention enforcement is then a sweep ([`Store::gc`]) that provably
//! never keeps expired rows (property-tested).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use tippers_ontology::{ConceptId, Ontology};
use tippers_policy::{PolicyId, Timestamp, UserId};
use tippers_sensors::Observation;

/// One stored observation row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredRow {
    /// The observation as captured.
    pub observation: Observation,
    /// Data category of the payload.
    pub category: ConceptId,
    /// The policy that authorized storing it.
    pub policy: PolicyId,
    /// When it was stored.
    pub stored_at: Timestamp,
    /// When it must be deleted (`None` = no retention limit).
    pub expires_at: Option<Timestamp>,
}

/// In-memory time-series store with subject and category indexes.
///
/// # Examples
///
/// ```
/// use tippers::Store;
///
/// let store = Store::new();
/// assert!(store.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Store {
    rows: Vec<StoredRow>,
    by_subject: HashMap<UserId, Vec<usize>>,
}

impl Store {
    /// An empty store.
    pub fn new() -> Store {
        Store::default()
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no live rows exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts a row.
    pub fn insert(
        &mut self,
        observation: Observation,
        category: ConceptId,
        policy: PolicyId,
        stored_at: Timestamp,
        retention_secs: Option<i64>,
    ) {
        let expires_at = retention_secs.map(|secs| Timestamp(stored_at.seconds() + secs));
        self.insert_row(StoredRow {
            observation,
            category,
            policy,
            stored_at,
            expires_at,
        });
    }

    /// Inserts an already-built row (write-ahead-log replay: ingest
    /// records are physical, carrying the rows that survived
    /// enforcement).
    pub fn insert_row(&mut self, row: StoredRow) {
        let idx = self.rows.len();
        if let Some(user) = row.observation.subject {
            self.by_subject.entry(user).or_default().push(idx);
        }
        self.rows.push(row);
    }

    /// Diagnostic invariant check: every `by_subject` index entry points
    /// at an in-bounds row whose subject matches, and every subject-
    /// bearing row is indexed exactly once (no dangling or duplicate
    /// entries after a sweep).
    pub fn index_consistent(&self) -> bool {
        let mut indexed = 0usize;
        for (user, idxs) in &self.by_subject {
            for &i in idxs {
                match self.rows.get(i) {
                    Some(row) if row.observation.subject == Some(*user) => indexed += 1,
                    _ => return false,
                }
            }
            let mut sorted = idxs.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != idxs.len() {
                return false;
            }
        }
        let subject_rows = self
            .rows
            .iter()
            .filter(|r| r.observation.subject.is_some())
            .count();
        indexed == subject_rows
    }

    /// Rows about one subject, in a category (subsumption-aware), within
    /// `[from, to)`.
    pub fn query_subject(
        &self,
        ontology: &Ontology,
        subject: UserId,
        category: ConceptId,
        from: Timestamp,
        to: Timestamp,
    ) -> Vec<&StoredRow> {
        let Some(indexes) = self.by_subject.get(&subject) else {
            return Vec::new();
        };
        indexes
            .iter()
            .map(|&i| &self.rows[i])
            .filter(|r| r.observation.timestamp >= from && r.observation.timestamp < to)
            .filter(|r| ontology.data.is_a(r.category, category))
            .collect()
    }

    /// All rows in a category (subsumption-aware) within `[from, to)` —
    /// used for aggregate queries with no single subject.
    pub fn query_category(
        &self,
        ontology: &Ontology,
        category: ConceptId,
        from: Timestamp,
        to: Timestamp,
    ) -> Vec<&StoredRow> {
        self.rows
            .iter()
            .filter(|r| r.observation.timestamp >= from && r.observation.timestamp < to)
            .filter(|r| ontology.data.is_a(r.category, category))
            .collect()
    }

    /// The most recent row about a subject in a category at or before `at`.
    pub fn latest_for(
        &self,
        ontology: &Ontology,
        subject: UserId,
        category: ConceptId,
        at: Timestamp,
    ) -> Option<&StoredRow> {
        self.by_subject
            .get(&subject)?
            .iter()
            .map(|&i| &self.rows[i])
            .filter(|r| r.observation.timestamp <= at)
            .filter(|r| ontology.data.is_a(r.category, category))
            .max_by_key(|r| r.observation.timestamp)
    }

    /// Deletes every row whose expiry has passed. Returns how many were
    /// deleted. Rebuilds indexes; O(n).
    pub fn gc(&mut self, now: Timestamp) -> usize {
        self.gc_collect(now).len()
    }

    /// Like [`Store::gc`] but returns the deleted rows themselves — the
    /// retention sweeper's input for deletion certificates and physical
    /// `SweepDelete` replay.
    pub fn gc_collect(&mut self, now: Timestamp) -> Vec<StoredRow> {
        let mut deleted = Vec::new();
        self.rows.retain(|r| {
            if r.expires_at.is_none_or(|e| e > now) {
                true
            } else {
                deleted.push(r.clone());
                false
            }
        });
        if !deleted.is_empty() {
            self.rebuild_index();
        }
        deleted
    }

    /// Physically removes the given rows (each at most once, by equality)
    /// — replaying a sweep's `SweepDelete` record. Returns how many were
    /// actually removed.
    pub fn remove_rows(&mut self, rows: &[StoredRow]) -> usize {
        let mut removed = 0;
        for target in rows {
            if let Some(i) = self.rows.iter().position(|r| r == target) {
                self.rows.remove(i);
                removed += 1;
            }
        }
        if removed > 0 {
            self.rebuild_index();
        }
        removed
    }

    fn rebuild_index(&mut self) {
        self.by_subject.clear();
        for (i, r) in self.rows.iter().enumerate() {
            if let Some(user) = r.observation.subject {
                self.by_subject.entry(user).or_default().push(i);
            }
        }
    }

    /// Deletes every row about `subject` in `category` (subsumption-aware)
    /// — retroactive enforcement when a user opts out. Returns the count.
    pub fn purge_subject(
        &mut self,
        ontology: &Ontology,
        subject: UserId,
        category: ConceptId,
    ) -> usize {
        let before = self.rows.len();
        self.rows.retain(|r| {
            !(r.observation.subject == Some(subject) && ontology.data.is_a(r.category, category))
        });
        let removed = before - self.rows.len();
        if removed > 0 {
            self.rebuild_index();
        }
        removed
    }

    /// Iterates all rows (diagnostics, experiments).
    pub fn iter(&self) -> impl Iterator<Item = &StoredRow> {
        self.rows.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tippers_sensors::{DeviceId, MacAddress, ObservationPayload};
    use tippers_spatial::{SpaceKind, SpatialModel};

    fn obs(ont: &Ontology, user: u64, t: Timestamp) -> (Observation, ConceptId) {
        let mut m = SpatialModel::new("c");
        let b = m.add_space("B", SpaceKind::Building, m.root());
        let payload = ObservationPayload::WifiAssociation {
            mac: MacAddress::for_user(user),
            ap: DeviceId(0),
        };
        let category = payload.category(ont);
        (
            Observation {
                device: DeviceId(0),
                timestamp: t,
                space: b,
                payload,
                subject: Some(UserId(user)),
            },
            category,
        )
    }

    #[test]
    fn insert_and_query_by_subject() {
        let ont = Ontology::standard();
        let c = ont.concepts();
        let mut store = Store::new();
        let (o1, cat) = obs(&ont, 1, Timestamp::at(0, 9, 0));
        let (o2, _) = obs(&ont, 2, Timestamp::at(0, 9, 5));
        store.insert(o1, cat, PolicyId(1), Timestamp::at(0, 9, 0), None);
        store.insert(o2, cat, PolicyId(1), Timestamp::at(0, 9, 5), None);
        assert_eq!(store.len(), 2);
        let rows = store.query_subject(
            &ont,
            UserId(1),
            c.wifi_association,
            Timestamp::at(0, 0, 0),
            Timestamp::at(1, 0, 0),
        );
        assert_eq!(rows.len(), 1);
        // Subsumption: querying the parent category finds the row too.
        let rows = store.query_subject(
            &ont,
            UserId(1),
            ont.data.id("data/network").unwrap(),
            Timestamp::at(0, 0, 0),
            Timestamp::at(1, 0, 0),
        );
        assert_eq!(rows.len(), 1);
        // But a sibling category does not.
        let rows = store.query_subject(
            &ont,
            UserId(1),
            c.location,
            Timestamp::at(0, 0, 0),
            Timestamp::at(1, 0, 0),
        );
        assert!(rows.is_empty());
    }

    #[test]
    fn time_range_is_half_open() {
        let ont = Ontology::standard();
        let c = ont.concepts();
        let mut store = Store::new();
        let t = Timestamp::at(0, 9, 0);
        let (o, cat) = obs(&ont, 1, t);
        store.insert(o, cat, PolicyId(1), t, None);
        assert_eq!(
            store
                .query_subject(&ont, UserId(1), c.wifi_association, t, t)
                .len(),
            0
        );
        assert_eq!(
            store
                .query_subject(&ont, UserId(1), c.wifi_association, t, t + 1)
                .len(),
            1
        );
    }

    #[test]
    fn gc_removes_exactly_expired_rows() {
        let ont = Ontology::standard();
        let mut store = Store::new();
        let t0 = Timestamp::at(0, 9, 0);
        let (o1, cat) = obs(&ont, 1, t0);
        let (o2, _) = obs(&ont, 2, t0);
        store.insert(o1, cat, PolicyId(1), t0, Some(600));
        store.insert(o2, cat, PolicyId(1), t0, None);
        assert_eq!(store.gc(t0 + 599), 0);
        assert_eq!(store.gc(t0 + 601), 1);
        assert_eq!(store.len(), 1);
        // Index stays consistent after compaction.
        let c = ont.concepts();
        assert_eq!(
            store
                .query_subject(&ont, UserId(2), c.wifi_association, t0, t0 + 1)
                .len(),
            1
        );
        assert!(store
            .query_subject(&ont, UserId(1), c.wifi_association, t0, t0 + 1)
            .is_empty());
    }

    #[test]
    fn latest_for_finds_most_recent() {
        let ont = Ontology::standard();
        let c = ont.concepts();
        let mut store = Store::new();
        for min in [0, 10, 20] {
            let t = Timestamp::at(0, 9, min);
            let (o, cat) = obs(&ont, 1, t);
            store.insert(o, cat, PolicyId(1), t, None);
        }
        let latest = store
            .latest_for(&ont, UserId(1), c.wifi_association, Timestamp::at(0, 9, 15))
            .unwrap();
        assert_eq!(latest.observation.timestamp, Timestamp::at(0, 9, 10));
        assert!(store
            .latest_for(&ont, UserId(1), c.wifi_association, Timestamp::at(0, 8, 0))
            .is_none());
    }

    mod gc_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// After any sweep over any mix of subjectless/subject-bearing
            /// rows and retention windows, the survivors are exactly the
            /// unexpired rows, the `by_subject` index is consistent with
            /// them, and every surviving subject row stays reachable
            /// through a subject query.
            #[test]
            fn gc_leaves_subject_index_consistent_with_survivors(
                rows in proptest::collection::vec(
                    (
                        proptest::option::of(0u64..6),
                        proptest::option::of(0i64..3_600),
                        0i64..7_200,
                    ),
                    0..48,
                ),
                sweep in 0i64..12_000,
            ) {
                let ont = Ontology::standard();
                let c = ont.concepts().clone();
                let mut store = Store::new();
                for (user, retention, offset) in &rows {
                    let t = Timestamp(*offset);
                    let (mut o, cat) = obs(&ont, user.unwrap_or(0), t);
                    o.subject = user.map(UserId);
                    store.insert(o, cat, PolicyId(0), t, *retention);
                }
                prop_assert!(store.index_consistent());

                let now = Timestamp(sweep);
                let expected: Vec<StoredRow> = store
                    .iter()
                    .filter(|r| r.expires_at.is_none_or(|e| e > now))
                    .cloned()
                    .collect();
                let removed = store.gc(now);
                prop_assert_eq!(removed, rows.len() - expected.len());
                prop_assert!(store.index_consistent());
                prop_assert_eq!(
                    store.iter().cloned().collect::<Vec<StoredRow>>(),
                    expected.clone()
                );
                for user in 0..6u64 {
                    let via_index = store
                        .query_subject(
                            &ont,
                            UserId(user),
                            c.wifi_association,
                            Timestamp(0),
                            Timestamp(i64::from(u32::MAX)),
                        )
                        .len();
                    let survivors = expected
                        .iter()
                        .filter(|r| r.observation.subject == Some(UserId(user)))
                        .count();
                    prop_assert_eq!(via_index, survivors);
                }
            }
        }
    }

    #[test]
    fn purge_subject_is_category_scoped() {
        let ont = Ontology::standard();
        let c = ont.concepts();
        let mut store = Store::new();
        let t = Timestamp::at(0, 9, 0);
        let (o, cat) = obs(&ont, 1, t);
        store.insert(o, cat, PolicyId(1), t, None);
        // Purging an unrelated category removes nothing.
        assert_eq!(store.purge_subject(&ont, UserId(1), c.location), 0);
        // Purging the parent category removes the row.
        assert_eq!(
            store.purge_subject(&ont, UserId(1), ont.data.id("data/network").unwrap()),
            1
        );
        assert!(store.is_empty());
    }
}
