//! The enforcement engine: deciding, per flow, what a data subject's
//! preferences and the building's policies jointly permit.
//!
//! §V.C: enforcement maps policies and preferences to a *where* (device or
//! BMS), *when* (capture, storage, processing, sharing) and *how*
//! (accept/deny, granularity reduction, noise). This module is the BMS-side
//! decision point; capture-time suppression lives in the sensor settings
//! (see `tippers-sensors`).
//!
//! Two interchangeable implementations realize design decision **D1**:
//! [`NaiveEnforcer`] scans every policy and preference per decision;
//! [`IndexedEnforcer`] pre-indexes policies by data-category family and
//! preferences by user. They are property-tested equivalent, and
//! experiment E8 benchmarks the gap — the paper's claim that "the cost of
//! enforcement can be large enough to be prohibitive" without optimization.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use tippers_ontology::{ConceptId, Ontology};
use tippers_policy::{
    conflict::data_overlaps, BuildingPolicy, ConditionContext, DataAction, Effect, FlowRef,
    Modality, PolicyId, PreferenceId, ResolutionStrategy, ServiceId, Timestamp, UserGroup, UserId,
    UserPreference,
};
use tippers_spatial::{SpaceId, SpatialModel};

/// One concrete data flow to decide on.
#[derive(Debug, Clone)]
pub struct RequestFlow {
    /// The data subject.
    pub subject: UserId,
    /// The subject's group (for group-scoped policies).
    pub subject_group: UserGroup,
    /// Data category requested.
    pub data: ConceptId,
    /// Purpose of the flow.
    pub purpose: ConceptId,
    /// Consuming service, if any.
    pub service: Option<ServiceId>,
    /// Lifecycle stage.
    pub action: DataAction,
    /// Decision time.
    pub time: Timestamp,
    /// Where the subject is (or where the data was captured), if known.
    pub subject_space: Option<SpaceId>,
    /// Where the requester is, if known (Policy 4's proximity gate).
    pub requester_space: Option<SpaceId>,
    /// Whether the room in question is occupied, if known.
    pub room_occupied: Option<bool>,
}

/// Why a decision came out the way it did.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecisionBasis {
    /// A mandatory policy forced the flow through.
    MandatoryPolicy(PolicyId),
    /// The subject's own preference decided.
    Preference(PreferenceId),
    /// No matching preference; the policy's modality default applied.
    PolicyDefault(PolicyId),
    /// No building policy authorizes this practice at all — default deny.
    NoAuthorizingPolicy,
    /// The BMS could not evaluate the flow (e.g. the enforcement engine
    /// failed to build) and fell back to denying. Enforcement fails
    /// *closed*: an internal error never releases data, and the audit trail
    /// says so explicitly rather than masquerading as a policy decision.
    InternalError,
    /// The request was shed by admission control (rate limit, concurrency
    /// limit, brownout, or an expired deadline) before any policy was
    /// evaluated. Like [`DecisionBasis::InternalError`] this fails
    /// *closed* — overload never releases data — and is audited under its
    /// own basis so shed traffic is distinguishable from policy denials.
    Overload,
    /// A replica answered the request but could not prove its replication
    /// lag was within the configured staleness bound (partitioned from the
    /// primary, or simply too far behind). Bounded-staleness reads fail
    /// *closed*: rather than guessing from possibly-stale settings, the
    /// replica denies and audits the denial under this basis so it is
    /// distinguishable from a policy decision.
    StaleReplica,
    /// The (user, service, purpose) disclosure budget is exhausted — or a
    /// charge against it could not be made durable. Either way the release
    /// path fails *closed*: an over-querying service is denied (and the
    /// denial audited under this basis) rather than allowed to drain a
    /// subject's data past the configured budget, and an unaccountable
    /// charge never discloses.
    QuotaExceeded,
    /// The enforcement shard owning this subject is quarantined — it
    /// panicked or stalled and is being rebuilt from its WAL partition.
    /// The router fails *closed*: rather than guessing what the rebuilt
    /// shard would decide, it denies and audits the denial under this
    /// basis so degraded-mode traffic is distinguishable from policy
    /// denials and from healthy shards' decisions.
    ShardUnavailable,
}

/// The outcome of deciding one flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnforcementDecision {
    /// What to do with the flow.
    pub effect: Effect,
    /// Why.
    pub basis: DecisionBasis,
    /// Set when a mandatory policy overrode a stricter preference — the
    /// IoTA surfaces this to the user (§III.B's "informing users about it").
    pub overridden_preference: Option<PreferenceId>,
}

impl EnforcementDecision {
    /// True if the flow may proceed in some form.
    pub fn permits(&self) -> bool {
        !self.effect.is_deny()
    }

    /// The fail-closed decision: deny, on the basis of an internal error.
    /// Used whenever the BMS cannot evaluate a flow.
    pub fn fail_closed() -> EnforcementDecision {
        EnforcementDecision {
            effect: Effect::Deny,
            basis: DecisionBasis::InternalError,
            overridden_preference: None,
        }
    }

    /// The shed decision: deny, on the basis of overload. Admission
    /// control fails closed — a shed request is never a permit.
    pub fn shed_overload() -> EnforcementDecision {
        EnforcementDecision {
            effect: Effect::Deny,
            basis: DecisionBasis::Overload,
            overridden_preference: None,
        }
    }

    /// The bounded-staleness decision: deny, because the answering replica
    /// cannot prove its lag is within the configured bound. Replicated
    /// reads fail closed rather than guessing from stale settings.
    pub fn stale_replica() -> EnforcementDecision {
        EnforcementDecision {
            effect: Effect::Deny,
            basis: DecisionBasis::StaleReplica,
            overridden_preference: None,
        }
    }

    /// The quota decision: deny, because the (user, service, purpose)
    /// disclosure budget is spent or a charge could not be made durable.
    pub fn quota_exceeded() -> EnforcementDecision {
        EnforcementDecision {
            effect: Effect::Deny,
            basis: DecisionBasis::QuotaExceeded,
            overridden_preference: None,
        }
    }

    /// The quarantined-shard decision: deny, because the shard owning
    /// this subject is down and rebuilding from its WAL partition. The
    /// router fails closed rather than deciding from state it does not
    /// own.
    pub fn shard_unavailable() -> EnforcementDecision {
        EnforcementDecision {
            effect: Effect::Deny,
            basis: DecisionBasis::ShardUnavailable,
            overridden_preference: None,
        }
    }
}

/// A policy/preference decision engine.
///
/// Implementations must agree with [`NaiveEnforcer`] (the executable
/// specification); see the `enforcer_equivalence` property test.
pub trait Enforcer {
    /// Decides one flow.
    fn decide(
        &self,
        flow: &RequestFlow,
        ontology: &Ontology,
        model: &SpatialModel,
    ) -> EnforcementDecision;
}

/// True if `policy` governs `flow`.
pub fn policy_applies(
    policy: &BuildingPolicy,
    flow: &RequestFlow,
    ontology: &Ontology,
    model: &SpatialModel,
) -> bool {
    if !policy.actions.contains(flow.action) {
        return false;
    }
    // Capture-side stages need the observation's category to fall *under*
    // the policy's declared collection category; consumption-side stages
    // also accept categories merely *inferable* from it (a location request
    // is served by the WiFi-log policy, but a WiFi-log policy never
    // authorizes storing, say, motion data just because occupancy is
    // inferable from WiFi logs).
    let data_ok = match flow.action {
        DataAction::Collect | DataAction::Store => ontology.data.is_a(flow.data, policy.data),
        DataAction::Infer | DataAction::Share | DataAction::Actuate => {
            data_overlaps(policy.data, flow.data, ontology)
        }
    };
    if !data_ok {
        return false;
    }
    if !ontology.purposes.is_a(flow.purpose, policy.purpose) {
        return false;
    }
    if !policy.subjects.matches(flow.subject, flow.subject_group) {
        return false;
    }
    if let (Some(policy_svc), Some(flow_svc)) = (&policy.service, &flow.service) {
        if policy_svc != flow_svc {
            return false;
        }
    }
    if let Some(space) = flow.subject_space {
        if !model.contains(policy.space, space) {
            return false;
        }
    }
    let ctx = condition_context(flow, model);
    policy.condition.is_satisfied(&ctx)
}

fn condition_context<'a>(flow: &RequestFlow, model: &'a SpatialModel) -> ConditionContext<'a> {
    ConditionContext {
        model,
        time: flow.time,
        subject_space: flow.subject_space,
        requester_space: flow.requester_space,
        room_occupied: flow.room_occupied,
    }
}

fn flow_ref<'a>(flow: &'a RequestFlow) -> FlowRef<'a> {
    FlowRef {
        data: flow.data,
        purpose: flow.purpose,
        service: flow.service.as_ref(),
        space: flow.subject_space,
    }
}

/// Resolves the subject's matching preferences (highest priority, then
/// strictest) from an iterator of candidates.
fn preference_verdict<'a>(
    prefs: impl Iterator<Item = &'a UserPreference>,
    flow: &RequestFlow,
    ontology: &Ontology,
    model: &SpatialModel,
) -> Option<(Effect, PreferenceId)> {
    let ctx = condition_context(flow, model);
    let fr = flow_ref(flow);
    let matching: Vec<&UserPreference> = prefs
        .filter(|p| p.user == flow.subject)
        .filter(|p| p.scope.covers(&fr, ontology, &ctx))
        .collect();
    let top = matching.iter().map(|p| p.priority).max()?;
    let winner = matching
        .into_iter()
        .filter(|p| p.priority == top)
        .max_by_key(|p| (p.effect.strictness(), std::cmp::Reverse(p.id)))?;
    Some((winner.effect, winner.id))
}

/// Core decision logic shared by both enforcers, given the applicable
/// policies and the preference verdict.
fn decide_from_parts(
    applicable: &[&BuildingPolicy],
    pref: Option<(Effect, PreferenceId)>,
    strategy: ResolutionStrategy,
) -> EnforcementDecision {
    let required = applicable.iter().find(|p| p.modality == Modality::Required);
    if let Some(req) = required {
        // Mandatory policy: by default it prevails; other strategies let
        // the preference bite.
        return match (strategy, pref) {
            (ResolutionStrategy::PolicyPrevails, Some((e, pid))) if e.strictness() > 0 => {
                EnforcementDecision {
                    effect: Effect::Allow,
                    basis: DecisionBasis::MandatoryPolicy(req.id),
                    overridden_preference: Some(pid),
                }
            }
            (ResolutionStrategy::PolicyPrevails, _) => EnforcementDecision {
                effect: Effect::Allow,
                basis: DecisionBasis::MandatoryPolicy(req.id),
                overridden_preference: None,
            },
            (_, Some((e, pid))) => EnforcementDecision {
                effect: e,
                basis: DecisionBasis::Preference(pid),
                overridden_preference: None,
            },
            (_, None) => EnforcementDecision {
                effect: Effect::Allow,
                basis: DecisionBasis::MandatoryPolicy(req.id),
                overridden_preference: None,
            },
        };
    }
    if applicable.is_empty() {
        return EnforcementDecision {
            effect: Effect::Deny,
            basis: DecisionBasis::NoAuthorizingPolicy,
            overridden_preference: None,
        };
    }
    if let Some((e, pid)) = pref {
        return EnforcementDecision {
            effect: e,
            basis: DecisionBasis::Preference(pid),
            overridden_preference: None,
        };
    }
    // No preference: modality default. Opt-out policies default-allow;
    // opt-in policies default-deny. If both kinds apply, the opt-out
    // authorization suffices for the flow.
    let opt_out = applicable.iter().find(|p| p.modality == Modality::OptOut);
    match opt_out {
        Some(p) => EnforcementDecision {
            effect: Effect::Allow,
            basis: DecisionBasis::PolicyDefault(p.id),
            overridden_preference: None,
        },
        None => EnforcementDecision {
            effect: Effect::Deny,
            basis: DecisionBasis::PolicyDefault(applicable[0].id),
            overridden_preference: None,
        },
    }
}

/// The executable specification: linear scan over all policies and
/// preferences per decision.
#[derive(Debug, Clone)]
pub struct NaiveEnforcer {
    policies: Vec<BuildingPolicy>,
    preferences: Vec<UserPreference>,
    strategy: ResolutionStrategy,
}

impl NaiveEnforcer {
    /// Creates a naive enforcer.
    pub fn new(
        policies: Vec<BuildingPolicy>,
        preferences: Vec<UserPreference>,
        strategy: ResolutionStrategy,
    ) -> Self {
        NaiveEnforcer {
            policies,
            preferences,
            strategy,
        }
    }
}

impl Enforcer for NaiveEnforcer {
    fn decide(
        &self,
        flow: &RequestFlow,
        ontology: &Ontology,
        model: &SpatialModel,
    ) -> EnforcementDecision {
        let applicable: Vec<&BuildingPolicy> = self
            .policies
            .iter()
            .filter(|p| policy_applies(p, flow, ontology, model))
            .collect();
        let pref = preference_verdict(self.preferences.iter(), flow, ontology, model);
        decide_from_parts(&applicable, pref, self.strategy)
    }
}

/// The optimized enforcer: policies indexed by data-category family
/// (own category + descendants + inferable categories, the same scheme as
/// `tippers_policy::ConflictIndex`), preferences indexed by user.
#[derive(Debug, Clone)]
pub struct IndexedEnforcer {
    policies: Vec<BuildingPolicy>,
    by_category: HashMap<ConceptId, Vec<usize>>,
    prefs_by_user: HashMap<UserId, Vec<UserPreference>>,
    strategy: ResolutionStrategy,
}

impl IndexedEnforcer {
    /// Builds the indexes.
    pub fn new(
        policies: Vec<BuildingPolicy>,
        preferences: Vec<UserPreference>,
        strategy: ResolutionStrategy,
        ontology: &Ontology,
    ) -> Self {
        let mut by_category: HashMap<ConceptId, Vec<usize>> = HashMap::new();
        let mut family_cache: HashMap<ConceptId, Vec<ConceptId>> = HashMap::new();
        for (i, p) in policies.iter().enumerate() {
            let keys = family_cache.entry(p.data).or_insert_with(|| {
                let mut keys = vec![p.data];
                keys.extend(ontology.data.descendants(p.data));
                for inf in ontology.inferable_from(p.data) {
                    keys.push(inf.concept);
                }
                keys.sort_unstable();
                keys.dedup();
                keys
            });
            for &k in keys.iter() {
                by_category.entry(k).or_default().push(i);
            }
        }
        let mut prefs_by_user: HashMap<UserId, Vec<UserPreference>> = HashMap::new();
        for p in preferences {
            prefs_by_user.entry(p.user).or_default().push(p);
        }
        IndexedEnforcer {
            policies,
            by_category,
            prefs_by_user,
            strategy,
        }
    }

    fn candidates(&self, data: ConceptId, ontology: &Ontology) -> Vec<usize> {
        // Registration covers each policy's own category, its descendants,
        // and everything inferable from it; probing the request category
        // plus its descendants therefore reaches every policy whose data
        // practice overlaps the request (including shared-sub-category and
        // inferred-data overlaps). The precise `policy_applies` check runs
        // on the survivors.
        let mut out: Vec<usize> = self.by_category.get(&data).cloned().unwrap_or_default();
        for d in ontology.data.descendants(data) {
            if let Some(v) = self.by_category.get(&d) {
                out.extend_from_slice(v);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl Enforcer for IndexedEnforcer {
    fn decide(
        &self,
        flow: &RequestFlow,
        ontology: &Ontology,
        model: &SpatialModel,
    ) -> EnforcementDecision {
        let candidate_idx = self.candidates(flow.data, ontology);
        let applicable: Vec<&BuildingPolicy> = candidate_idx
            .into_iter()
            .map(|i| &self.policies[i])
            .filter(|p| policy_applies(p, flow, ontology, model))
            .collect();
        let pref = self
            .prefs_by_user
            .get(&flow.subject)
            .and_then(|prefs| preference_verdict(prefs.iter(), flow, ontology, model));
        decide_from_parts(&applicable, pref, self.strategy)
    }
}

/// A helper constructing flows with sensible unknowns.
impl RequestFlow {
    /// A share-stage flow for a service request.
    pub fn share(
        subject: UserId,
        subject_group: UserGroup,
        data: ConceptId,
        purpose: ConceptId,
        service: Option<ServiceId>,
        time: Timestamp,
    ) -> RequestFlow {
        RequestFlow {
            subject,
            subject_group,
            data,
            purpose,
            service,
            action: DataAction::Share,
            time,
            subject_space: None,
            requester_space: None,
            room_occupied: None,
        }
    }

    /// A store-stage flow for ingest.
    pub fn store(
        subject: UserId,
        subject_group: UserGroup,
        data: ConceptId,
        purpose: ConceptId,
        space: SpaceId,
        time: Timestamp,
    ) -> RequestFlow {
        RequestFlow {
            subject,
            subject_group,
            data,
            purpose,
            service: None,
            action: DataAction::Store,
            time,
            subject_space: Some(space),
            requester_space: None,
            room_occupied: None,
        }
    }

    /// Sets the subject's space (builder-style).
    pub fn at_space(mut self, space: SpaceId) -> RequestFlow {
        self.subject_space = Some(space);
        self
    }

    /// Sets the requester's space (builder-style).
    pub fn requester_at(mut self, space: SpaceId) -> RequestFlow {
        self.requester_space = Some(space);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tippers_policy::catalog;
    use tippers_policy::{PreferenceId, PreferenceScope};
    use tippers_spatial::fixtures::dbh;

    struct Env {
        ontology: Ontology,
        dbh: tippers_spatial::fixtures::Dbh,
    }

    fn env() -> Env {
        Env {
            ontology: Ontology::standard(),
            dbh: dbh(),
        }
    }

    fn paper_policies(env: &Env) -> Vec<BuildingPolicy> {
        vec![
            catalog::policy1_thermostat(PolicyId(1), env.dbh.building, &env.ontology),
            catalog::policy2_emergency_location(PolicyId(2), env.dbh.building, &env.ontology),
            catalog::policy3_meeting_room_access(
                PolicyId(3),
                env.dbh.building,
                env.dbh.meeting_rooms.clone(),
                &env.ontology,
            ),
            catalog::policy4_event_proximity(PolicyId(4), vec![env.dbh.lobby], &env.ontology),
        ]
    }

    #[test]
    fn unauthorized_practice_is_denied() {
        let env = env();
        let c = env.ontology.concepts();
        let enforcer = NaiveEnforcer::new(vec![], vec![], ResolutionStrategy::PolicyPrevails);
        let flow = RequestFlow::share(
            UserId(1),
            UserGroup::Staff,
            c.location_fine,
            c.marketing,
            None,
            Timestamp::at(0, 12, 0),
        );
        let d = enforcer.decide(&flow, &env.ontology, &env.dbh.model);
        assert_eq!(d.effect, Effect::Deny);
        assert_eq!(d.basis, DecisionBasis::NoAuthorizingPolicy);
    }

    #[test]
    fn mandatory_policy_overrides_deny_preference() {
        let env = env();
        let c = env.ontology.concepts();
        let pref = catalog::preference2_no_location(PreferenceId(2), UserId(1), &env.ontology);
        let enforcer = NaiveEnforcer::new(
            paper_policies(&env),
            vec![pref],
            ResolutionStrategy::PolicyPrevails,
        );
        let flow = RequestFlow::share(
            UserId(1),
            UserGroup::GradStudent,
            c.location_room,
            c.emergency_response,
            None,
            Timestamp::at(0, 12, 0),
        );
        let d = enforcer.decide(&flow, &env.ontology, &env.dbh.model);
        assert_eq!(d.effect, Effect::Allow);
        assert_eq!(d.basis, DecisionBasis::MandatoryPolicy(PolicyId(2)));
        assert_eq!(d.overridden_preference, Some(PreferenceId(2)));
    }

    #[test]
    fn preference_denies_non_mandatory_flow() {
        let env = env();
        let c = env.ontology.concepts();
        let pref = catalog::preference2_no_location(PreferenceId(2), UserId(1), &env.ontology);
        let mut policies = paper_policies(&env);
        // Add an opt-out location service policy (the Concierge's).
        policies.push(
            BuildingPolicy::new(
                PolicyId(5),
                "Concierge location",
                env.dbh.building,
                c.location_fine,
                c.navigation,
            )
            .with_actions(tippers_policy::ActionSet::ALL)
            .with_service(catalog::services::concierge()),
        );
        let enforcer = NaiveEnforcer::new(policies, vec![pref], ResolutionStrategy::PolicyPrevails);
        let flow = RequestFlow::share(
            UserId(1),
            UserGroup::GradStudent,
            c.location_fine,
            c.navigation,
            Some(catalog::services::concierge()),
            Timestamp::at(0, 12, 0),
        );
        let d = enforcer.decide(&flow, &env.ontology, &env.dbh.model);
        assert_eq!(d.effect, Effect::Deny);
        assert_eq!(d.basis, DecisionBasis::Preference(PreferenceId(2)));
    }

    #[test]
    fn preference3_exception_allows_concierge() {
        let env = env();
        let c = env.ontology.concepts();
        let prefs = vec![
            catalog::preference2_no_location(PreferenceId(2), UserId(1), &env.ontology),
            catalog::preference3_concierge_location(PreferenceId(3), UserId(1), &env.ontology),
        ];
        let mut policies = paper_policies(&env);
        policies.push(
            BuildingPolicy::new(
                PolicyId(5),
                "Concierge location",
                env.dbh.building,
                c.location_fine,
                c.navigation,
            )
            .with_actions(tippers_policy::ActionSet::ALL)
            .with_service(catalog::services::concierge()),
        );
        let enforcer = NaiveEnforcer::new(policies, prefs, ResolutionStrategy::PolicyPrevails);
        let flow = RequestFlow::share(
            UserId(1),
            UserGroup::GradStudent,
            c.location_fine,
            c.navigation,
            Some(catalog::services::concierge()),
            Timestamp::at(0, 12, 0),
        );
        let d = enforcer.decide(&flow, &env.ontology, &env.dbh.model);
        assert_eq!(d.effect, Effect::Allow);
        assert_eq!(d.basis, DecisionBasis::Preference(PreferenceId(3)));
    }

    #[test]
    fn opt_in_policies_default_deny() {
        let env = env();
        let c = env.ontology.concepts();
        let enforcer = NaiveEnforcer::new(
            paper_policies(&env),
            vec![],
            ResolutionStrategy::PolicyPrevails,
        );
        // Policy 4 (event details) is opt-in; with no grant, deny.
        let flow = RequestFlow::share(
            UserId(1),
            UserGroup::Undergrad,
            c.event_details,
            c.event_coordination,
            Some(catalog::services::concierge()),
            Timestamp::at(0, 12, 0),
        )
        .at_space(env.dbh.lobby)
        .requester_at(env.dbh.lobby);
        let d = enforcer.decide(&flow, &env.ontology, &env.dbh.model);
        assert_eq!(d.effect, Effect::Deny);
        assert!(matches!(d.basis, DecisionBasis::PolicyDefault(_)));
        // With an opt-in grant, allowed.
        let grant = UserPreference::new(
            PreferenceId(9),
            UserId(1),
            PreferenceScope {
                data: Some(c.event_details),
                ..Default::default()
            },
            Effect::Allow,
        );
        let enforcer2 = NaiveEnforcer::new(
            paper_policies(&env),
            vec![grant],
            ResolutionStrategy::PolicyPrevails,
        );
        let d2 = enforcer2.decide(&flow, &env.ontology, &env.dbh.model);
        assert_eq!(d2.effect, Effect::Allow);
    }

    #[test]
    fn policy4_proximity_gate() {
        let env = env();
        let c = env.ontology.concepts();
        let grant = UserPreference::new(
            PreferenceId(9),
            UserId(1),
            PreferenceScope::default(),
            Effect::Allow,
        );
        let enforcer = NaiveEnforcer::new(
            paper_policies(&env),
            vec![grant],
            ResolutionStrategy::PolicyPrevails,
        );
        // Requester far away: the only applicable policy's condition fails,
        // so nothing authorizes the flow.
        let far = RequestFlow::share(
            UserId(1),
            UserGroup::Undergrad,
            c.event_details,
            c.event_coordination,
            Some(catalog::services::concierge()),
            Timestamp::at(0, 12, 0),
        )
        .at_space(env.dbh.lobby)
        .requester_at(env.dbh.offices[50]);
        let d = enforcer.decide(&far, &env.ontology, &env.dbh.model);
        assert_eq!(d.effect, Effect::Deny);
        assert_eq!(d.basis, DecisionBasis::NoAuthorizingPolicy);
    }

    #[test]
    fn degrade_preference_survives_resolution() {
        let env = env();
        let c = env.ontology.concepts();
        let pref = catalog::preference_coarse_location(
            PreferenceId(7),
            UserId(1),
            tippers_spatial::Granularity::Floor,
            &env.ontology,
        );
        let mut policies = paper_policies(&env);
        policies.push(
            BuildingPolicy::new(
                PolicyId(5),
                "location service",
                env.dbh.building,
                c.location_fine,
                c.navigation,
            )
            .with_actions(tippers_policy::ActionSet::ALL),
        );
        let enforcer = NaiveEnforcer::new(policies, vec![pref], ResolutionStrategy::PolicyPrevails);
        let flow = RequestFlow::share(
            UserId(1),
            UserGroup::Faculty,
            c.location_fine,
            c.navigation,
            None,
            Timestamp::at(0, 12, 0),
        );
        let d = enforcer.decide(&flow, &env.ontology, &env.dbh.model);
        assert_eq!(
            d.effect,
            Effect::Degrade(tippers_spatial::Granularity::Floor)
        );
    }

    #[test]
    fn indexed_equals_naive_on_paper_examples() {
        let env = env();
        let c = env.ontology.concepts();
        let policies = paper_policies(&env);
        let prefs = vec![
            catalog::preference1_afterhours_occupancy(
                PreferenceId(1),
                UserId(1),
                env.dbh.offices[0],
                &env.ontology,
            ),
            catalog::preference2_no_location(PreferenceId(2), UserId(1), &env.ontology),
            catalog::preference3_concierge_location(PreferenceId(3), UserId(1), &env.ontology),
        ];
        let naive = NaiveEnforcer::new(
            policies.clone(),
            prefs.clone(),
            ResolutionStrategy::PolicyPrevails,
        );
        let indexed = IndexedEnforcer::new(
            policies,
            prefs,
            ResolutionStrategy::PolicyPrevails,
            &env.ontology,
        );
        let datas = [
            c.location_fine,
            c.occupancy,
            c.wifi_association,
            c.event_details,
        ];
        let purposes = [c.emergency_response, c.navigation, c.comfort, c.marketing];
        for &data in &datas {
            for &purpose in &purposes {
                for hour in [3, 12, 22] {
                    let flow = RequestFlow::share(
                        UserId(1),
                        UserGroup::GradStudent,
                        data,
                        purpose,
                        Some(catalog::services::concierge()),
                        Timestamp::at(0, hour, 0),
                    )
                    .at_space(env.dbh.offices[0]);
                    let a = naive.decide(&flow, &env.ontology, &env.dbh.model);
                    let b = indexed.decide(&flow, &env.ontology, &env.dbh.model);
                    assert_eq!(a, b, "data {data:?} purpose {purpose:?} hour {hour}");
                }
            }
        }
    }
}
