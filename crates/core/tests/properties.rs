//! Property-based tests for the enforcement engine and store.

use proptest::prelude::*;
use tippers::{Enforcer, IndexedEnforcer, NaiveEnforcer, RequestFlow, Store};
use tippers_ontology::{ConceptId, Ontology};
use tippers_policy::{
    BuildingPolicy, Condition, DataAction, Effect, Modality, PolicyId, PreferenceId,
    PreferenceScope, ResolutionStrategy, ServiceId, TimeWindow, Timestamp, UserGroup, UserId,
    UserPreference,
};
use tippers_sensors::{DeviceId, MacAddress, Observation, ObservationPayload};
use tippers_spatial::{Granularity, RoomUse, SpaceId, SpaceKind, SpatialModel};

fn env() -> (Ontology, SpatialModel, Vec<SpaceId>) {
    let ont = Ontology::standard();
    let mut m = SpatialModel::new("campus");
    let b = m.add_space("B", SpaceKind::Building, m.root());
    let mut spaces = vec![m.root(), b];
    for f in 0..2 {
        let floor = m.add_space(format!("B-{f}"), SpaceKind::Floor, b);
        spaces.push(floor);
        for r in 0..4 {
            spaces.push(m.add_space(
                format!("B-{f}{r:02}"),
                SpaceKind::room(RoomUse::Office),
                floor,
            ));
        }
    }
    (ont, m, spaces)
}

/// A tiny deterministic generator driven by a u64 stream.
struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> usize {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) as usize
    }
}

fn gen_policies(
    seed: u64,
    n: usize,
    ont: &Ontology,
    spaces: &[SpaceId],
    datas: &[ConceptId],
    purposes: &[ConceptId],
) -> Vec<BuildingPolicy> {
    let mut lcg = Lcg(seed);
    let _ = ont;
    (0..n)
        .map(|i| {
            let mut p = BuildingPolicy::new(
                PolicyId(i as u64),
                format!("p{i}"),
                spaces[lcg.next() % spaces.len()],
                datas[lcg.next() % datas.len()],
                purposes[lcg.next() % purposes.len()],
            );
            p.modality = [Modality::Required, Modality::OptOut, Modality::OptIn][lcg.next() % 3];
            p.actions = match lcg.next() % 3 {
                0 => tippers_policy::ActionSet::ALL,
                1 => tippers_policy::ActionSet::COLLECT_STORE,
                _ => tippers_policy::ActionSet::of(&[DataAction::Share]),
            };
            if lcg.next().is_multiple_of(3) {
                p.condition = Condition::during(if lcg.next().is_multiple_of(2) {
                    TimeWindow::business_hours()
                } else {
                    TimeWindow::after_hours()
                });
            }
            if lcg.next().is_multiple_of(4) {
                p.service = Some(ServiceId::new(format!("svc{}", lcg.next() % 3)));
            }
            p
        })
        .collect()
}

fn gen_prefs(
    seed: u64,
    n: usize,
    spaces: &[SpaceId],
    datas: &[ConceptId],
    purposes: &[ConceptId],
) -> Vec<UserPreference> {
    let mut lcg = Lcg(seed ^ 0xABCD);
    (0..n)
        .map(|i| {
            let effect = match lcg.next() % 4 {
                0 => Effect::Allow,
                1 => Effect::Deny,
                2 => Effect::Degrade(Granularity::ALL[lcg.next() % 6]),
                _ => Effect::Noise { sigma: 2.0 },
            };
            let scope = PreferenceScope {
                data: if lcg.next().is_multiple_of(4) {
                    None
                } else {
                    Some(datas[lcg.next() % datas.len()])
                },
                purpose: if lcg.next().is_multiple_of(3) {
                    Some(purposes[lcg.next() % purposes.len()])
                } else {
                    None
                },
                service: if lcg.next().is_multiple_of(4) {
                    Some(ServiceId::new(format!("svc{}", lcg.next() % 3)))
                } else {
                    None
                },
                space: if lcg.next().is_multiple_of(2) {
                    Some(spaces[lcg.next() % spaces.len()])
                } else {
                    None
                },
                condition: if lcg.next().is_multiple_of(3) {
                    Condition::during(TimeWindow::after_hours())
                } else {
                    Condition::always()
                },
            };
            UserPreference::new(
                PreferenceId(i as u64),
                UserId((lcg.next() % 4) as u64),
                scope,
                effect,
            )
            .with_priority((lcg.next() % 3) as u8)
        })
        .collect()
}

proptest! {
    /// D1 equivalence: the indexed enforcer and the naive enforcer return
    /// identical decisions on arbitrary policy/preference sets and flows.
    #[test]
    fn enforcer_equivalence(
        seed in any::<u64>(),
        n_policies in 0usize..24,
        n_prefs in 0usize..24,
        n_flows in 1usize..24,
    ) {
        let (ont, model, spaces) = env();
        let datas: Vec<ConceptId> = ont.data.iter().map(tippers_ontology::Concept::id).collect();
        let purposes: Vec<ConceptId> = ont.purposes.iter().map(tippers_ontology::Concept::id).collect();
        for strategy in [
            ResolutionStrategy::PolicyPrevails,
            ResolutionStrategy::PreferencePrevails,
            ResolutionStrategy::Strictest,
        ] {
            let policies = gen_policies(seed, n_policies, &ont, &spaces, &datas, &purposes);
            let prefs = gen_prefs(seed, n_prefs, &spaces, &datas, &purposes);
            let naive = NaiveEnforcer::new(policies.clone(), prefs.clone(), strategy);
            let indexed = IndexedEnforcer::new(policies, prefs, strategy, &ont);
            let mut lcg = Lcg(seed ^ 0x77);
            for _ in 0..n_flows {
                let flow = RequestFlow {
                    subject: UserId((lcg.next() % 4) as u64),
                    subject_group: UserGroup::ALL[lcg.next() % 5],
                    data: datas[lcg.next() % datas.len()],
                    purpose: purposes[lcg.next() % purposes.len()],
                    service: if lcg.next().is_multiple_of(2) {
                        Some(ServiceId::new(format!("svc{}", lcg.next() % 3)))
                    } else {
                        None
                    },
                    action: DataAction::ALL[lcg.next() % 5],
                    time: Timestamp::at((lcg.next() % 7) as i64, (lcg.next() % 24) as u32, 0),
                    subject_space: if lcg.next().is_multiple_of(2) {
                        Some(spaces[lcg.next() % spaces.len()])
                    } else {
                        None
                    },
                    requester_space: if lcg.next().is_multiple_of(2) {
                        Some(spaces[lcg.next() % spaces.len()])
                    } else {
                        None
                    },
                    room_occupied: match lcg.next() % 3 {
                        0 => Some(true),
                        1 => Some(false),
                        _ => None,
                    },
                };
                let a = naive.decide(&flow, &ont, &model);
                let b = indexed.decide(&flow, &ont, &model);
                prop_assert_eq!(a, b, "strategy {:?}", strategy);
            }
        }
    }

    /// With no authorizing policies at all, every flow is denied — the
    /// default-deny invariant.
    #[test]
    fn default_deny_without_policies(seed in any::<u64>()) {
        let (ont, model, spaces) = env();
        let datas: Vec<ConceptId> = ont.data.iter().map(tippers_ontology::Concept::id).collect();
        let purposes: Vec<ConceptId> = ont.purposes.iter().map(tippers_ontology::Concept::id).collect();
        let prefs = gen_prefs(seed, 8, &spaces, &datas, &purposes);
        let enforcer = NaiveEnforcer::new(vec![], prefs, ResolutionStrategy::PolicyPrevails);
        let mut lcg = Lcg(seed);
        let flow = RequestFlow {
            subject: UserId(0),
            subject_group: UserGroup::Staff,
            data: datas[lcg.next() % datas.len()],
            purpose: purposes[lcg.next() % purposes.len()],
            service: None,
            action: DataAction::Share,
            time: Timestamp::at(0, 12, 0),
            subject_space: None,
            requester_space: None,
            room_occupied: None,
        };
        prop_assert_eq!(enforcer.decide(&flow, &ont, &model).effect, Effect::Deny);
    }

    /// Retention GC never keeps an expired row and never deletes an
    /// unexpired one.
    #[test]
    fn gc_is_exact(retentions in proptest::collection::vec(proptest::option::of(1i64..10_000), 1..60), gc_at in 0i64..12_000) {
        let ont = Ontology::standard();
        let mut m = SpatialModel::new("c");
        let b = m.add_space("B", SpaceKind::Building, m.root());
        let mut store = Store::new();
        let t0 = Timestamp::at(0, 0, 0);
        let c = ont.concepts();
        for (i, &ret) in retentions.iter().enumerate() {
            let obs = Observation {
                device: DeviceId(0),
                timestamp: t0,
                space: b,
                payload: ObservationPayload::WifiAssociation {
                    mac: MacAddress::for_user(i as u64),
                    ap: DeviceId(0),
                },
                subject: Some(UserId(i as u64)),
            };
            store.insert(obs, c.wifi_association, PolicyId(0), t0, ret);
        }
        let now = Timestamp(gc_at);
        store.gc(now);
        let expected: usize = retentions
            .iter()
            .filter(|r| r.is_none_or(|secs| t0.seconds() + secs > now.seconds()))
            .count();
        prop_assert_eq!(store.len(), expected);
        for row in store.iter() {
            if let Some(e) = row.expires_at {
                prop_assert!(e > now);
            }
        }
    }
}
