//! Property-based tests for registries and the discovery network.

use proptest::prelude::*;
use tippers_irr::{DiscoveryBus, NetworkConfig, Registry, RegistryId};
use tippers_policy::{figures, PolicyDocument, Timestamp};
use tippers_spatial::fixtures::dbh;

fn doc() -> PolicyDocument {
    figures::fig2_document()
}

proptest! {
    /// Freshness is exact: an advertisement is served iff `now` is within
    /// its TTL of publication.
    #[test]
    fn freshness_is_exact(ttl in 1i64..100_000, probe in 0i64..200_000) {
        let building = dbh();
        let mut registry = Registry::new(RegistryId(0), "irr", building.building);
        let t0 = Timestamp::at(0, 0, 0);
        registry.publish(doc(), building.building, t0, ttl).unwrap();
        let now = Timestamp(probe);
        let served = registry.advertisements(now).len();
        prop_assert_eq!(served == 1, probe <= ttl, "ttl={} probe={}", ttl, probe);
    }

    /// Vicinity results are always a subset of all fresh advertisements,
    /// and a building-wide advertisement is visible from every space in
    /// the building.
    #[test]
    fn vicinity_subset(space_idx in 0usize..200) {
        let building = dbh();
        let mut registry = Registry::new(RegistryId(0), "irr", building.building);
        let t0 = Timestamp::at(0, 0, 0);
        registry.publish(doc(), building.building, t0, 3600).unwrap();
        registry.publish(doc(), building.floors[2], t0, 3600).unwrap();
        let spaces: Vec<_> = building.model.iter().map(tippers_spatial::Space::id).collect();
        let probe = spaces[space_idx % spaces.len()];
        let near = registry.advertisements_near(&building.model, probe, t0);
        let all = registry.advertisements(t0);
        prop_assert!(near.len() <= all.len());
        if building.model.contains(building.building, probe) {
            prop_assert!(
                near.iter().any(|a| a.space == building.building),
                "building-wide ad invisible from {}", probe
            );
        }
    }

    /// Network loss never corrupts: every successful fetch returns the
    /// complete advertisement set, regardless of loss probability.
    #[test]
    fn loss_is_fail_stop(loss in 0.0f64..1.0, attempts in 1usize..40) {
        let building = dbh();
        let mut bus = DiscoveryBus::new(NetworkConfig {
            loss_probability: loss,
            seed: 42,
            ..NetworkConfig::default()
        });
        let irr = bus.add_registry("irr", building.building);
        bus.registry_mut(irr)
            .unwrap()
            .publish(doc(), building.building, Timestamp::at(0, 0, 0), 86_400)
            .unwrap();
        for _ in 0..attempts {
            if let Ok((ads, latency)) = bus.fetch_near(
                irr,
                &building.model,
                building.offices[0],
                Timestamp::at(0, 1, 0),
            ) {
                prop_assert_eq!(ads.len(), 1);
                prop_assert!(latency >= 0.0);
            }
        }
        let stats = bus.stats();
        prop_assert!(stats.lost <= stats.messages);
    }

    /// Withdraw + republish version discipline: versions grow
    /// monotonically and withdrawn ads never come back.
    #[test]
    fn version_monotonic(republshes in 1usize..8) {
        let building = dbh();
        let mut registry = Registry::new(RegistryId(0), "irr", building.building);
        let t0 = Timestamp::at(0, 0, 0);
        let id = registry.publish(doc(), building.building, t0, 3600).unwrap();
        let mut last = 1u32;
        for i in 0..republshes {
            let v = registry
                .republish(id, doc(), t0 + (i as i64 + 1) * 60)
                .unwrap();
            prop_assert!(v > last);
            last = v;
        }
        registry.withdraw(id).unwrap();
        prop_assert!(registry.advertisements(t0 + 60).is_empty());
        prop_assert!(registry.republish(id, doc(), t0).is_err());
    }
}
