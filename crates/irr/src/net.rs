//! A simulated discovery network.
//!
//! The paper leaves the IRR transport unspecified ("one or more IoT
//! Resource Registries"); what matters for the framework is the discovery
//! *semantics* — vicinity-scoped advertisement with realistic latency and
//! loss. [`DiscoveryBus`] hosts registries in-process and models both, so
//! experiment E11 can sweep beacon period and loss rate.

use std::fmt;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tippers_policy::Timestamp;
use tippers_resilience::{ms_from_secs, FaultPlan, FaultPoint, Mailbox, MailboxStats, Transient};
use tippers_spatial::{SpaceId, SpatialModel};

use crate::registry::{Registry, RegistryId, ResourceAdvertisement};

/// Network behaviour parameters.
#[derive(Debug, Clone, Copy)]
pub struct NetworkConfig {
    /// Mean one-way latency, milliseconds.
    pub latency_ms_mean: f64,
    /// Probability any single message is lost.
    ///
    /// Deprecated in favour of arming [`FaultPoint::RegistryDiscover`] /
    /// [`FaultPoint::RegistryFetch`] on the bus's [`FaultPlan`], which
    /// injects per-point, budgeted, separately-seeded loss. Retained so
    /// existing configurations keep working; the two compose (a message
    /// survives only if neither mechanism drops it).
    pub loss_probability: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
    /// Bound on each registry's fetch mailbox: requests in flight (in
    /// virtual time) beyond this are refused with
    /// [`NetError::Backpressure`] instead of queueing without limit. The
    /// default is generous — only a storm-scale burst hits it.
    pub fetch_queue_capacity: usize,
    /// Virtual service time per fetch, milliseconds: how fast a registry
    /// drains its mailbox. Queue wait is added to the reported latency.
    pub fetch_service_ms: f64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            latency_ms_mean: 20.0,
            loss_probability: 0.0,
            seed: 7,
            fetch_queue_capacity: 65_536,
            fetch_service_ms: 2.0,
        }
    }
}

/// A discovery-network failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// The message was lost in transit.
    Lost,
    /// The addressed registry does not exist.
    UnknownRegistry(RegistryId),
    /// The registry's bounded fetch mailbox is full: explicit
    /// backpressure. The client should back off and retry — the queue
    /// drains as virtual time advances.
    Backpressure(RegistryId),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Lost => f.write_str("message lost"),
            NetError::UnknownRegistry(id) => write!(f, "unknown registry {id}"),
            NetError::Backpressure(id) => {
                write!(f, "registry {id} fetch queue full (backpressure)")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl NetError {
    /// True if retrying could plausibly succeed (lost messages can be
    /// resent and full queues drain; addressing a registry that does not
    /// exist cannot be fixed by retrying).
    pub fn is_transient(&self) -> bool {
        match self {
            NetError::Lost | NetError::Backpressure(_) => true,
            NetError::UnknownRegistry(_) => false,
        }
    }
}

impl Transient for NetError {
    fn is_transient(&self) -> bool {
        NetError::is_transient(self)
    }
}

/// Cumulative traffic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NetStats {
    /// Messages attempted.
    pub messages: u64,
    /// Messages lost.
    pub lost: u64,
    /// Fetches refused outright by a full registry mailbox
    /// (backpressure — never attempted, so not counted in `messages`).
    pub rejected: u64,
    /// Sum of simulated latency over delivered messages, milliseconds.
    pub total_latency_ms: f64,
}

impl NetStats {
    /// Mean latency over delivered messages.
    pub fn mean_latency_ms(&self) -> f64 {
        let delivered = self.messages - self.lost;
        if delivered == 0 {
            0.0
        } else {
            self.total_latency_ms / delivered as f64
        }
    }
}

/// The in-process discovery network hosting all registries.
#[derive(Debug)]
pub struct DiscoveryBus {
    config: NetworkConfig,
    registries: Vec<Registry>,
    rng: Mutex<StdRng>,
    stats: Mutex<NetStats>,
    fault_plan: FaultPlan,
    /// One bounded fetch mailbox per registry. Each entry is a fetch in
    /// service; its deadline is the virtual time the registry finishes it,
    /// so advancing time drains the queue and a frozen clock models a
    /// slow consumer.
    fetch_queues: Mutex<Vec<(Mailbox<()>, i64)>>,
}

impl DiscoveryBus {
    /// Creates a bus with a disarmed fault plan.
    pub fn new(config: NetworkConfig) -> DiscoveryBus {
        DiscoveryBus {
            rng: Mutex::new(StdRng::seed_from_u64(config.seed)),
            config,
            registries: Vec::new(),
            stats: Mutex::new(NetStats::default()),
            fault_plan: FaultPlan::disarmed(),
            fetch_queues: Mutex::new(Vec::new()),
        }
    }

    /// Creates a bus consulting `plan` at its network fault points
    /// ([`FaultPoint::RegistryDiscover`], [`FaultPoint::RegistryFetch`],
    /// [`FaultPoint::ClockSkew`]).
    pub fn with_fault_plan(config: NetworkConfig, plan: FaultPlan) -> DiscoveryBus {
        let mut bus = DiscoveryBus::new(config);
        bus.fault_plan = plan;
        bus
    }

    /// Replaces the bus's fault plan.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = plan;
    }

    /// The fault plan this bus consults (clones share state with it).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// Hosts a new registry covering `coverage`, returning its id.
    pub fn add_registry(&mut self, name: impl Into<String>, coverage: SpaceId) -> RegistryId {
        let id = RegistryId(self.registries.len() as u32);
        self.registries.push(Registry::new(id, name, coverage));
        self.fetch_queues
            .lock()
            .push((Mailbox::new(self.config.fetch_queue_capacity), i64::MIN));
        id
    }

    /// Direct (non-lossy) access for the publishing BMS, which reaches its
    /// registries over wired infrastructure.
    pub fn registry_mut(&mut self, id: RegistryId) -> Option<&mut Registry> {
        self.registries.get_mut(id.0 as usize)
    }

    /// Read access to a registry.
    pub fn registry(&self, id: RegistryId) -> Option<&Registry> {
        self.registries.get(id.0 as usize)
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> NetStats {
        *self.stats.lock()
    }

    /// Simulates one message: returns its latency, or loss. A message
    /// survives only if the armed [`FaultPoint::Partition`] cut, the
    /// legacy `loss_probability`, and the fault plan's rule at `point`
    /// all let it through — an armed partition severs the discovery
    /// links symmetrically, exactly as it severs replication frames.
    fn transmit(&self, point: FaultPoint) -> Result<f64, NetError> {
        let mut rng = self.rng.lock();
        let mut stats = self.stats.lock();
        stats.messages += 1;
        if self.fault_plan.is_armed(FaultPoint::Partition)
            && self.fault_plan.should_fail(FaultPoint::Partition)
        {
            stats.lost += 1;
            return Err(NetError::Lost);
        }
        if self.fault_plan.should_fail(point) {
            stats.lost += 1;
            return Err(NetError::Lost);
        }
        if rng.gen::<f64>() < self.config.loss_probability {
            stats.lost += 1;
            return Err(NetError::Lost);
        }
        // Exponentially distributed latency around the mean.
        let u: f64 = rng.gen::<f64>().max(1e-12);
        let latency = -self.config.latency_ms_mean * u.ln();
        stats.total_latency_ms += latency;
        Ok(latency)
    }

    /// Discovery (step 5 of Figure 1): which registries cover the space the
    /// client is standing in? Each responding registry costs one simulated
    /// broadcast round trip; lost responses hide that registry this round.
    pub fn discover(&self, model: &SpatialModel, vicinity: SpaceId) -> (Vec<RegistryId>, f64) {
        let mut found = Vec::new();
        let mut latency = 0.0f64;
        for r in &self.registries {
            if r.covers(model, vicinity) {
                match self.transmit(FaultPoint::RegistryDiscover) {
                    Ok(l) => {
                        latency = latency.max(l);
                        found.push(r.id());
                    }
                    Err(NetError::Lost) => {}
                    Err(_) => {}
                }
            }
        }
        (found, latency)
    }

    /// Fetches the advertisements near `vicinity` from one registry,
    /// paying (and reporting) simulated latency — queue wait in the
    /// registry's bounded mailbox included.
    ///
    /// # Errors
    ///
    /// [`NetError::Lost`] models a dropped response; callers retry on their
    /// own schedule. [`NetError::Backpressure`] means the registry's
    /// bounded fetch mailbox was full — explicit backpressure the caller
    /// must handle (back off, not hammer). [`NetError::UnknownRegistry`]
    /// is a client bug.
    pub fn fetch_near(
        &self,
        registry: RegistryId,
        model: &SpatialModel,
        vicinity: SpaceId,
        now: Timestamp,
    ) -> Result<(Vec<ResourceAdvertisement>, f64), NetError> {
        let r = self
            .registry(registry)
            .ok_or(NetError::UnknownRegistry(registry))?;
        let queue_wait = self.enqueue_fetch(registry, now)?;
        let request = self.transmit(FaultPoint::RegistryFetch)?;
        let response = self.transmit(FaultPoint::RegistryFetch)?;
        // An armed clock-skew rule shifts the freshness clock the registry
        // answers with, modelling a drifted registry host.
        let effective_now = if self.fault_plan.should_fail(FaultPoint::ClockSkew) {
            now + self.fault_plan.param(FaultPoint::ClockSkew)
        } else {
            now
        };
        let ads = r
            .advertisements_near(model, vicinity, effective_now)
            .into_iter()
            .cloned()
            .collect();
        Ok((ads, queue_wait + request + response))
    }

    /// Books one fetch into a registry's bounded mailbox: a single-server
    /// queue in virtual time. The fetch occupies a slot until its
    /// completion instant passes; the returned queue wait (ms) is the time
    /// spent behind earlier fetches.
    ///
    /// # Errors
    ///
    /// [`NetError::Backpressure`] when the mailbox is at capacity.
    fn enqueue_fetch(&self, registry: RegistryId, now: Timestamp) -> Result<f64, NetError> {
        let now_ms = ms_from_secs(now.seconds());
        let service_ms = self.config.fetch_service_ms.max(0.0).ceil() as i64;
        let mut queues = self.fetch_queues.lock();
        let (mailbox, tail) = queues
            .get_mut(registry.0 as usize)
            .ok_or(NetError::UnknownRegistry(registry))?;
        let start = (*tail).max(now_ms);
        let completion = start + service_ms;
        if mailbox.try_push(now_ms, Some(completion), ()).is_err() {
            self.stats.lock().rejected += 1;
            return Err(NetError::Backpressure(registry));
        }
        *tail = completion;
        Ok((start - now_ms) as f64)
    }

    /// How many fetches a registry's mailbox currently holds (in service
    /// plus waiting, at `now`).
    pub fn fetch_queue_depth(&self, registry: RegistryId, now: Timestamp) -> Option<usize> {
        let now_ms = ms_from_secs(now.seconds());
        let mut queues = self.fetch_queues.lock();
        let (mailbox, _) = queues.get_mut(registry.0 as usize)?;
        mailbox.prune(now_ms);
        Some(mailbox.depth())
    }

    /// Lifetime counters of a registry's fetch mailbox.
    pub fn fetch_queue_stats(&self, registry: RegistryId) -> Option<MailboxStats> {
        let queues = self.fetch_queues.lock();
        queues.get(registry.0 as usize).map(|(mb, _)| mb.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tippers_policy::figures;
    use tippers_spatial::fixtures::dbh;

    fn bus_with_ad(loss: f64) -> (DiscoveryBus, tippers_spatial::fixtures::Dbh) {
        let d = dbh();
        let mut bus = DiscoveryBus::new(NetworkConfig {
            loss_probability: loss,
            ..NetworkConfig::default()
        });
        let irr = bus.add_registry("DBH IRR", d.building);
        bus.registry_mut(irr)
            .unwrap()
            .publish(
                figures::fig2_document(),
                d.building,
                Timestamp::at(0, 8, 0),
                86_400,
            )
            .unwrap();
        (bus, d)
    }

    #[test]
    fn lossless_discovery_finds_registry() {
        let (bus, d) = bus_with_ad(0.0);
        let (found, latency) = bus.discover(&d.model, d.offices[0]);
        assert_eq!(found.len(), 1);
        assert!(latency >= 0.0);
        let (ads, _) = bus
            .fetch_near(found[0], &d.model, d.offices[0], Timestamp::at(0, 9, 0))
            .unwrap();
        assert_eq!(ads.len(), 1);
    }

    #[test]
    fn discovery_outside_coverage_finds_nothing() {
        let (bus, d) = bus_with_ad(0.0);
        // The campus root is not inside the building's coverage subtree.
        let (found, _) = bus.discover(&d.model, d.model.root());
        assert!(found.is_empty());
    }

    #[test]
    fn total_loss_hides_everything() {
        let (bus, d) = bus_with_ad(1.0);
        let (found, _) = bus.discover(&d.model, d.offices[0]);
        assert!(found.is_empty());
        assert!(bus.stats().lost > 0);
    }

    #[test]
    fn partial_loss_eventually_succeeds() {
        let (bus, d) = bus_with_ad(0.5);
        let mut successes = 0;
        for _ in 0..50 {
            if let Ok((ads, _)) = bus.fetch_near(
                RegistryId(0),
                &d.model,
                d.offices[0],
                Timestamp::at(0, 9, 0),
            ) {
                assert_eq!(ads.len(), 1);
                successes += 1;
            }
        }
        assert!(successes > 5, "some fetches should survive 50% loss");
        let stats = bus.stats();
        assert!(stats.lost > 0);
        assert!(stats.mean_latency_ms() > 0.0);
    }

    #[test]
    fn armed_fetch_fault_drops_fetches_only() {
        let (mut bus, d) = bus_with_ad(0.0);
        let plan = FaultPlan::seeded(11).with_fault(FaultPoint::RegistryFetch, 1.0);
        bus.set_fault_plan(plan.clone());
        // Discovery uses a different point, so it still works.
        let (found, _) = bus.discover(&d.model, d.offices[0]);
        assert_eq!(found.len(), 1);
        assert_eq!(
            bus.fetch_near(found[0], &d.model, d.offices[0], Timestamp::at(0, 9, 0))
                .unwrap_err(),
            NetError::Lost
        );
        assert_eq!(plan.injected(FaultPoint::RegistryFetch), 1);
        assert_eq!(plan.injected(FaultPoint::RegistryDiscover), 0);
        assert!(bus.stats().lost > 0, "injected drops count as network loss");
    }

    #[test]
    fn fault_budget_allows_later_fetches() {
        let (mut bus, d) = bus_with_ad(0.0);
        let plan = FaultPlan::seeded(11);
        plan.arm_limited(FaultPoint::RegistryFetch, 1.0, 1);
        bus.set_fault_plan(plan);
        let now = Timestamp::at(0, 9, 0);
        assert!(bus
            .fetch_near(RegistryId(0), &d.model, d.offices[0], now)
            .is_err());
        // Budget of one consumed: the next fetch goes through.
        let (ads, _) = bus
            .fetch_near(RegistryId(0), &d.model, d.offices[0], now)
            .unwrap();
        assert_eq!(ads.len(), 1);
    }

    #[test]
    fn clock_skew_fault_ages_out_fresh_ads() {
        let (mut bus, d) = bus_with_ad(0.0);
        let plan = FaultPlan::seeded(0);
        // Registry clock runs two days fast: everything looks stale.
        plan.arm_with_param(FaultPoint::ClockSkew, 1.0, 2 * 86_400);
        bus.set_fault_plan(plan);
        let (ads, _) = bus
            .fetch_near(
                RegistryId(0),
                &d.model,
                d.offices[0],
                Timestamp::at(0, 9, 0),
            )
            .unwrap();
        assert!(ads.is_empty(), "skewed clock hides fresh advertisements");
    }

    #[test]
    fn armed_partition_severs_discovery_links() {
        let (mut bus, d) = bus_with_ad(0.0);
        let plan = FaultPlan::seeded(5);
        plan.arm_with_param(FaultPoint::Partition, 1.0, 0);
        bus.set_fault_plan(plan.clone());
        let (found, _) = bus.discover(&d.model, d.offices[0]);
        assert!(found.is_empty(), "a partition cut hides every registry");
        assert_eq!(
            bus.fetch_near(
                RegistryId(0),
                &d.model,
                d.offices[0],
                Timestamp::at(0, 9, 0)
            )
            .unwrap_err(),
            NetError::Lost
        );
        plan.disarm(FaultPoint::Partition);
        let (found, _) = bus.discover(&d.model, d.offices[0]);
        assert_eq!(found.len(), 1, "healing the partition restores discovery");
    }

    #[test]
    fn net_error_transience() {
        assert!(NetError::Lost.is_transient());
        assert!(NetError::Backpressure(RegistryId(0)).is_transient());
        assert!(!NetError::UnknownRegistry(RegistryId(3)).is_transient());
    }

    #[test]
    fn slow_consumer_pushes_back_and_drains_with_time() {
        let d = dbh();
        let mut bus = DiscoveryBus::new(NetworkConfig {
            fetch_queue_capacity: 3,
            fetch_service_ms: 1000.0,
            ..NetworkConfig::default()
        });
        let irr = bus.add_registry("DBH IRR", d.building);
        bus.registry_mut(irr)
            .unwrap()
            .publish(
                figures::fig2_document(),
                d.building,
                Timestamp::at(0, 8, 0),
                86_400,
            )
            .unwrap();
        let t0 = Timestamp::at(0, 9, 0);
        // Three same-instant fetches fill the mailbox (1s service each);
        // the fourth is refused with explicit backpressure.
        for i in 0..3 {
            let (_, latency) = bus.fetch_near(irr, &d.model, d.offices[0], t0).unwrap();
            assert!(
                latency >= 1000.0 * i as f64,
                "later fetches wait behind earlier ones"
            );
        }
        assert_eq!(
            bus.fetch_near(irr, &d.model, d.offices[0], t0).unwrap_err(),
            NetError::Backpressure(irr)
        );
        assert_eq!(bus.fetch_queue_depth(irr, t0), Some(3));
        assert_eq!(bus.stats().rejected, 1);
        // Advancing virtual time drains the queue: fetches flow again.
        let later = t0 + 10;
        assert!(bus.fetch_near(irr, &d.model, d.offices[0], later).is_ok());
        assert!(bus.fetch_queue_depth(irr, later).unwrap() <= 3);
        let mb = bus.fetch_queue_stats(irr).unwrap();
        assert_eq!(mb.rejected, 1);
        assert_eq!(mb.high_watermark, 3);
    }

    #[test]
    fn unknown_registry_is_a_client_bug() {
        let (bus, d) = bus_with_ad(0.0);
        assert_eq!(
            bus.fetch_near(
                RegistryId(9),
                &d.model,
                d.offices[0],
                Timestamp::at(0, 9, 0)
            )
            .unwrap_err(),
            NetError::UnknownRegistry(RegistryId(9))
        );
    }
}
