//! MUD-style automatic registration.
//!
//! §V.B: "we envision that the setup of IRRs can be automated (e.g. by
//! leveraging Manufacturer Usage Descriptions)". A [`MudProfile`] is the
//! manufacturer's machine-readable statement of what a device class
//! collects and why; [`advertise_device`] instantiates it for a concrete
//! deployed sensor, producing a ready-to-publish [`PolicyDocument`].

use serde::{Deserialize, Serialize};
use tippers_ontology::{ConceptId, Ontology};
use tippers_policy::document::{
    ContextBlock, InfoBlock, LocationBlock, ObservationBlock, PolicyDocument, PurposeSection,
    ResourceBlock, RetentionBlock, SensorBlock, SpatialRef,
};
use tippers_policy::IsoDuration;
use tippers_sensors::SensorDevice;
use tippers_spatial::SpatialModel;

/// A manufacturer usage description for a sensor class.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MudProfile {
    /// Manufacturer name.
    pub manufacturer: String,
    /// The sensor class the profile describes.
    pub sensor_class: ConceptId,
    /// Data category the device emits.
    pub emits: ConceptId,
    /// Default purpose of collection.
    pub purpose_key: String,
    /// Purpose description shown to users.
    pub purpose_description: String,
    /// Manufacturer-recommended retention.
    pub retention: Option<IsoDuration>,
}

impl MudProfile {
    /// Standard profiles for the built-in sensor classes.
    pub fn standard_profiles(ontology: &Ontology) -> Vec<MudProfile> {
        let c = ontology.concepts();
        let mk = |class, emits, purpose_key: &str, desc: &str, ret: Option<&str>| MudProfile {
            manufacturer: "Acme Sensing".to_owned(),
            sensor_class: class,
            emits,
            purpose_key: purpose_key.to_owned(),
            purpose_description: desc.to_owned(),
            retention: ret.map(|r| r.parse().expect("valid duration")),
        };
        vec![
            mk(
                c.wifi_ap,
                c.wifi_association,
                "logging",
                "Association events are logged for connectivity and security",
                Some("P6M"),
            ),
            mk(
                c.ble_beacon,
                c.bluetooth_sighting,
                "providing_service",
                "Beacon sightings power location-based services",
                Some("P30D"),
            ),
            mk(
                c.camera,
                c.image,
                "surveillance",
                "Footage is recorded for building security",
                Some("P90D"),
            ),
            mk(
                c.power_meter,
                c.power_consumption,
                "energy",
                "Outlet-level consumption is metered for energy management",
                Some("P1Y"),
            ),
            mk(
                c.motion_sensor,
                c.occupancy,
                "comfort",
                "Occupancy drives HVAC and lighting automation",
                Some("P7D"),
            ),
            mk(
                c.temperature_sensor,
                c.ambient_temperature,
                "comfort",
                "Ambient temperature drives HVAC automation",
                Some("P7D"),
            ),
            mk(
                c.badge_reader,
                c.person_identity,
                "access-control",
                "Credential verifications are recorded for access control",
                Some("P90D"),
            ),
        ]
    }

    /// The profile matching a device's class, if any.
    pub fn for_device<'a>(
        profiles: &'a [MudProfile],
        device: &SensorDevice,
    ) -> Option<&'a MudProfile> {
        profiles.iter().find(|p| p.sensor_class == device.class)
    }
}

/// Instantiates a MUD profile for one deployed device, producing the
/// advertisement document an IRR can publish without any manual authoring.
pub fn advertise_device(
    profile: &MudProfile,
    device: &SensorDevice,
    ontology: &Ontology,
    model: &SpatialModel,
) -> PolicyDocument {
    let space = model.space(device.space);
    let sensor_label = ontology.sensors.concept(device.class).label().to_owned();
    let data_concept = ontology.data.concept(profile.emits);
    PolicyDocument {
        resources: vec![ResourceBlock {
            info: InfoBlock {
                name: format!("{} at {}", sensor_label, space.name()),
                description: Some(format!(
                    "{} (auto-registered from {} MUD profile)",
                    profile.purpose_description, profile.manufacturer
                )),
            },
            context: Some(ContextBlock {
                location: Some(LocationBlock {
                    spatial: Some(SpatialRef {
                        name: space.name().to_owned(),
                        kind: Some(space.kind().to_string()),
                    }),
                    location_owner: None,
                }),
            }),
            sensor: Some(SensorBlock {
                kind: sensor_label,
                description: Some(format!("subsystem: {}", device.subsystem)),
            }),
            purpose: PurposeSection::single(
                profile.purpose_key.clone(),
                profile.purpose_description.clone(),
            ),
            observations: vec![ObservationBlock {
                name: data_concept.label().to_owned(),
                description: None,
                category: Some(data_concept.key().to_owned()),
                granularity: None,
            }],
            retention: profile
                .retention
                .map(|duration| RetentionBlock { duration }),
            settings: Vec::new(),
            modality: None,
        }],
        lint_allow: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tippers_policy::is_advertisable;
    use tippers_sensors::{deploy, DeploymentConfig};
    use tippers_spatial::fixtures::dbh;

    #[test]
    fn every_deployed_device_gets_an_advertisable_document() {
        let ont = Ontology::standard();
        let d = dbh();
        let registry = deploy(&d, &ont, &DeploymentConfig::default());
        let profiles = MudProfile::standard_profiles(&ont);
        let mut covered = 0;
        for device in registry.iter() {
            if let Some(profile) = MudProfile::for_device(&profiles, device) {
                let doc = advertise_device(profile, device, &ont, &d.model);
                assert!(
                    is_advertisable(&doc),
                    "device {} produced invalid doc",
                    device.id
                );
                covered += 1;
            }
        }
        // Everything except the HVAC actuators has a profile.
        assert!(covered >= registry.len() - 6);
    }

    #[test]
    fn advertisement_names_the_space() {
        let ont = Ontology::standard();
        let d = dbh();
        let registry = deploy(&d, &ont, &DeploymentConfig::default());
        let profiles = MudProfile::standard_profiles(&ont);
        let device = registry.iter().next().unwrap();
        let profile = MudProfile::for_device(&profiles, device).unwrap();
        let doc = advertise_device(profile, device, &ont, &d.model);
        let spatial = doc.resources[0]
            .context
            .as_ref()
            .unwrap()
            .location
            .as_ref()
            .unwrap()
            .spatial
            .as_ref()
            .unwrap();
        assert_eq!(spatial.name, d.model.space(device.space).name());
    }
}
