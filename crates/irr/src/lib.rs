//! IoT Resource Registries (IRRs).
//!
//! The framework's first component: registries "broadcast data collection
//! policies and sharing practices of the IoT technologies with which users
//! interact" (§I). This crate provides:
//!
//! * [`Registry`] — stores [`ResourceAdvertisement`]s (validated policy
//!   documents scoped to spaces, with TTL freshness and versioning) and
//!   answers vicinity queries ("resources close to her location", Figure 1
//!   step 5).
//! * [`DiscoveryBus`] — a simulated broadcast network hosting registries,
//!   with configurable latency and loss (experiment E11 sweeps these).
//! * [`MudProfile`] — MUD-style automatic registration (§V.B): deployed
//!   sensors generate their own advertisements from manufacturer usage
//!   descriptions.
//!
//! # Examples
//!
//! ```
//! use tippers_irr::{DiscoveryBus, NetworkConfig};
//! use tippers_policy::{figures, Timestamp};
//! use tippers_spatial::fixtures::dbh;
//!
//! let building = dbh();
//! let mut bus = DiscoveryBus::new(NetworkConfig::default());
//! let irr = bus.add_registry("DBH IRR", building.building);
//! bus.registry_mut(irr).unwrap().publish(
//!     figures::fig2_document(),
//!     building.building,
//!     Timestamp::at(0, 8, 0),
//!     86_400,
//! )?;
//! let (found, _latency) = bus.discover(&building.model, building.offices[0]);
//! assert_eq!(found, vec![irr]);
//! # Ok::<(), tippers_irr::RegistryError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mud;
mod net;
mod registry;

pub use mud::{advertise_device, MudProfile};
pub use net::{DiscoveryBus, NetError, NetStats, NetworkConfig};
pub use registry::{AdvertisementId, Registry, RegistryError, RegistryId, ResourceAdvertisement};

// The mailbox vocabulary used by [`DiscoveryBus`]'s bounded fetch queues,
// re-exported for downstream convenience.
pub use tippers_resilience::MailboxStats;
