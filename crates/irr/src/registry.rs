use std::fmt;

use serde::{Deserialize, Serialize};
use tippers_policy::{is_advertisable, PolicyDocument, Timestamp};
use tippers_spatial::{SpaceId, SpatialModel};

/// Identifier of an advertisement within one registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AdvertisementId(pub u64);

impl fmt::Display for AdvertisementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ad#{}", self.0)
    }
}

/// Identifier of a registry on the discovery network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RegistryId(pub u32);

impl fmt::Display for RegistryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "irr#{}", self.0)
    }
}

/// Errors produced by registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RegistryError {
    /// The document failed validation and cannot be advertised.
    NotAdvertisable {
        /// Human-readable issue summary.
        issues: String,
    },
    /// No advertisement with that id.
    UnknownAdvertisement(AdvertisementId),
    /// The registry could not be reached (a transient infrastructure
    /// failure; retrying may succeed).
    Unreachable(RegistryId),
    /// The registry's advertisement table is full: publish backpressure.
    /// Transient — withdrawing or expiring advertisements frees slots.
    Overloaded(RegistryId),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::NotAdvertisable { issues } => {
                write!(f, "document is not advertisable: {issues}")
            }
            RegistryError::UnknownAdvertisement(id) => {
                write!(f, "unknown advertisement {id}")
            }
            RegistryError::Unreachable(id) => {
                write!(f, "registry {id} unreachable")
            }
            RegistryError::Overloaded(id) => {
                write!(f, "registry {id} advertisement table full")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

impl RegistryError {
    /// True if retrying could plausibly succeed.
    /// [`RegistryError::Unreachable`] and [`RegistryError::Overloaded`]
    /// are transient: validation failures and bad advertisement ids will
    /// not fix themselves on retry, but infrastructure recovers and full
    /// tables drain.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            RegistryError::Unreachable(_) | RegistryError::Overloaded(_)
        )
    }
}

impl tippers_resilience::Transient for RegistryError {
    fn is_transient(&self) -> bool {
        RegistryError::is_transient(self)
    }
}

/// A published data-practice advertisement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceAdvertisement {
    /// Advertisement id (unique within its registry).
    pub id: AdvertisementId,
    /// The machine-readable policy being advertised.
    pub document: PolicyDocument,
    /// The space the advertised practice pertains to.
    pub space: SpaceId,
    /// Publication time.
    pub published_at: Timestamp,
    /// Freshness horizon, seconds; stale advertisements are not served.
    pub ttl_secs: i64,
    /// Monotonic version, bumped on republish.
    pub version: u32,
}

impl ResourceAdvertisement {
    /// True if the advertisement is still fresh at `now`.
    pub fn is_fresh(&self, now: Timestamp) -> bool {
        now - self.published_at <= self.ttl_secs
    }
}

/// An IoT Resource Registry: it "broadcast\[s] data collection policies and
/// sharing practices of the IoT technologies with which users interact"
/// (§I). One registry covers a space subtree (typically a building).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Registry {
    id: RegistryId,
    name: String,
    coverage: SpaceId,
    ads: Vec<ResourceAdvertisement>,
    next_ad: u64,
    /// Explicit bound on the advertisement table; `None` means the
    /// default ([`Registry::DEFAULT_ADS_CAPACITY`]).
    #[serde(default)]
    ads_capacity: Option<usize>,
}

impl Registry {
    /// Default bound on a registry's advertisement table.
    pub const DEFAULT_ADS_CAPACITY: usize = 4096;

    /// Creates a registry covering `coverage` (and its whole subtree).
    pub fn new(id: RegistryId, name: impl Into<String>, coverage: SpaceId) -> Registry {
        Registry {
            id,
            name: name.into(),
            coverage,
            ads: Vec::new(),
            next_ad: 0,
            ads_capacity: None,
        }
    }

    /// Caps the advertisement table at `capacity` entries (builder form).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_ads_capacity(mut self, capacity: usize) -> Registry {
        assert!(capacity > 0, "ads capacity must be positive");
        self.ads_capacity = Some(capacity);
        self
    }

    /// The advertisement table's bound.
    pub fn ads_capacity(&self) -> usize {
        self.ads_capacity.unwrap_or(Registry::DEFAULT_ADS_CAPACITY)
    }

    /// Registry id.
    pub fn id(&self) -> RegistryId {
        self.id
    }

    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The subtree this registry covers.
    pub fn coverage(&self) -> SpaceId {
        self.coverage
    }

    /// Number of live advertisements.
    pub fn len(&self) -> usize {
        self.ads.len()
    }

    /// True if nothing is advertised.
    pub fn is_empty(&self) -> bool {
        self.ads.is_empty()
    }

    /// Publishes a document about `space`.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::NotAdvertisable`] if the document fails
    /// validation — registries refuse documents IoTAs could not interpret —
    /// and [`RegistryError::Overloaded`] when the (bounded) table is full:
    /// publish backpressure, not silent unbounded growth.
    pub fn publish(
        &mut self,
        document: PolicyDocument,
        space: SpaceId,
        now: Timestamp,
        ttl_secs: i64,
    ) -> Result<AdvertisementId, RegistryError> {
        if self.ads.len() >= self.ads_capacity() {
            return Err(RegistryError::Overloaded(self.id));
        }
        if !is_advertisable(&document) {
            let issues = tippers_policy::validate_document(&document)
                .iter()
                .map(std::string::ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ");
            return Err(RegistryError::NotAdvertisable { issues });
        }
        let id = AdvertisementId(self.next_ad);
        self.next_ad += 1;
        self.ads.push(ResourceAdvertisement {
            id,
            document,
            space,
            published_at: now,
            ttl_secs,
            version: 1,
        });
        Ok(id)
    }

    /// Replaces an advertisement's document, bumping its version and
    /// refreshing its publication time.
    pub fn republish(
        &mut self,
        id: AdvertisementId,
        document: PolicyDocument,
        now: Timestamp,
    ) -> Result<u32, RegistryError> {
        if !is_advertisable(&document) {
            return Err(RegistryError::NotAdvertisable {
                issues: "validation failed".to_owned(),
            });
        }
        let ad = self
            .ads
            .iter_mut()
            .find(|a| a.id == id)
            .ok_or(RegistryError::UnknownAdvertisement(id))?;
        ad.document = document;
        ad.published_at = now;
        ad.version += 1;
        Ok(ad.version)
    }

    /// Withdraws an advertisement.
    pub fn withdraw(&mut self, id: AdvertisementId) -> Result<(), RegistryError> {
        let before = self.ads.len();
        self.ads.retain(|a| a.id != id);
        if self.ads.len() == before {
            Err(RegistryError::UnknownAdvertisement(id))
        } else {
            Ok(())
        }
    }

    /// All fresh advertisements.
    pub fn advertisements(&self, now: Timestamp) -> Vec<&ResourceAdvertisement> {
        self.ads.iter().filter(|a| a.is_fresh(now)).collect()
    }

    /// Fresh advertisements relevant to a user standing in `vicinity`:
    /// those whose subject space contains the user, is contained by the
    /// user's current space, or shares a floor with it — the paper's
    /// "resources close to her location" (step 5 of Figure 1).
    pub fn advertisements_near(
        &self,
        model: &SpatialModel,
        vicinity: SpaceId,
        now: Timestamp,
    ) -> Vec<&ResourceAdvertisement> {
        self.ads
            .iter()
            .filter(|a| a.is_fresh(now))
            .filter(|a| {
                model.overlap(a.space, vicinity)
                    || (model.floor_of(a.space).is_some()
                        && model.floor_of(a.space) == model.floor_of(vicinity))
            })
            .collect()
    }

    /// True if this registry is responsible for a space.
    pub fn covers(&self, model: &SpatialModel, space: SpaceId) -> bool {
        model.contains(self.coverage, space)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tippers_policy::figures;
    use tippers_spatial::fixtures::dbh;

    #[test]
    fn publish_and_query_near() {
        let d = dbh();
        let mut reg = Registry::new(RegistryId(0), "DBH IRR", d.building);
        let now = Timestamp::at(0, 9, 0);
        let ad = reg
            .publish(figures::fig2_document(), d.building, now, 3600)
            .unwrap();
        // A user in any office sees the building-wide advertisement.
        let near = reg.advertisements_near(&d.model, d.offices[0], now);
        assert_eq!(near.len(), 1);
        assert_eq!(near[0].id, ad);
    }

    #[test]
    fn floor_scoped_ads_do_not_leak_across_floors() {
        let d = dbh();
        let mut reg = Registry::new(RegistryId(0), "DBH IRR", d.building);
        let now = Timestamp::at(0, 9, 0);
        reg.publish(figures::fig2_document(), d.floors[2], now, 3600)
            .unwrap();
        let floor2_office = d
            .offices
            .iter()
            .find(|&&o| d.model.floor_of(o) == Some(d.floors[2]))
            .copied()
            .unwrap();
        let floor0_office = d
            .offices
            .iter()
            .find(|&&o| d.model.floor_of(o) == Some(d.floors[0]))
            .copied()
            .unwrap();
        assert_eq!(
            reg.advertisements_near(&d.model, floor2_office, now).len(),
            1
        );
        assert_eq!(
            reg.advertisements_near(&d.model, floor0_office, now).len(),
            0
        );
    }

    #[test]
    fn invalid_documents_are_refused() {
        let d = dbh();
        let mut reg = Registry::new(RegistryId(0), "DBH IRR", d.building);
        let err = reg
            .publish(
                PolicyDocument::default(),
                d.building,
                Timestamp::at(0, 0, 0),
                60,
            )
            .unwrap_err();
        assert!(matches!(err, RegistryError::NotAdvertisable { .. }));
        assert!(reg.is_empty());
    }

    #[test]
    fn stale_ads_are_hidden() {
        let d = dbh();
        let mut reg = Registry::new(RegistryId(0), "DBH IRR", d.building);
        let t0 = Timestamp::at(0, 9, 0);
        reg.publish(figures::fig2_document(), d.building, t0, 600)
            .unwrap();
        assert_eq!(reg.advertisements(t0 + 599).len(), 1);
        assert_eq!(reg.advertisements(t0 + 601).len(), 0);
    }

    #[test]
    fn republish_bumps_version_and_freshness() {
        let d = dbh();
        let mut reg = Registry::new(RegistryId(0), "DBH IRR", d.building);
        let t0 = Timestamp::at(0, 9, 0);
        let ad = reg
            .publish(figures::fig2_document(), d.building, t0, 600)
            .unwrap();
        let v = reg
            .republish(ad, figures::fig2_document(), t0 + 1200)
            .unwrap();
        assert_eq!(v, 2);
        assert_eq!(reg.advertisements(t0 + 1500).len(), 1);
    }

    #[test]
    fn full_table_refuses_publishes_until_withdrawn() {
        let d = dbh();
        let mut reg = Registry::new(RegistryId(0), "DBH IRR", d.building).with_ads_capacity(2);
        let t0 = Timestamp::at(0, 9, 0);
        let first = reg
            .publish(figures::fig2_document(), d.building, t0, 600)
            .unwrap();
        reg.publish(figures::fig2_document(), d.building, t0, 600)
            .unwrap();
        assert_eq!(
            reg.publish(figures::fig2_document(), d.building, t0, 600),
            Err(RegistryError::Overloaded(RegistryId(0)))
        );
        assert!(RegistryError::Overloaded(RegistryId(0)).is_transient());
        // Withdrawal frees a slot: the retry the transient error invites
        // now succeeds.
        reg.withdraw(first).unwrap();
        assert!(reg
            .publish(figures::fig2_document(), d.building, t0, 600)
            .is_ok());
    }

    #[test]
    fn withdraw_removes() {
        let d = dbh();
        let mut reg = Registry::new(RegistryId(0), "DBH IRR", d.building);
        let t0 = Timestamp::at(0, 9, 0);
        let ad = reg
            .publish(figures::fig2_document(), d.building, t0, 600)
            .unwrap();
        reg.withdraw(ad).unwrap();
        assert!(reg.is_empty());
        assert_eq!(
            reg.withdraw(ad),
            Err(RegistryError::UnknownAdvertisement(ad))
        );
    }
}
