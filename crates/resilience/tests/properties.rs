//! Property-based tests for the resilience primitives.

use proptest::prelude::*;
use tippers_resilience::{
    BackoffSchedule, BreakerConfig, BreakerState, CircuitBreaker, RetryPolicy,
};

proptest! {
    /// Backoff delays are monotone non-decreasing, capped, and
    /// seed-deterministic.
    #[test]
    fn backoff_is_monotone_capped_and_deterministic(
        base_ms in 1u64..1_000,
        factor in 1u32..5,
        cap_ms in 1u64..60_000,
        jitter_seed in any::<u64>(),
    ) {
        let schedule = BackoffSchedule { base_ms, factor, cap_ms, jitter_seed };
        let delays: Vec<u64> = (0..16).map(|k| schedule.delay_ms(k)).collect();
        for pair in delays.windows(2) {
            prop_assert!(pair[0] <= pair[1], "delays must never shrink: {delays:?}");
        }
        for &d in &delays {
            prop_assert!(d <= cap_ms.max(1), "delay {d} above cap {cap_ms}");
        }
        // Same schedule, same sequence — byte-for-byte.
        let replay: Vec<u64> = (0..16).map(|k| schedule.delay_ms(k)).collect();
        prop_assert_eq!(&delays, &replay);
        let same_fields = BackoffSchedule { base_ms, factor, cap_ms, jitter_seed };
        prop_assert_eq!(delays, (0..16).map(|k| same_fields.delay_ms(k)).collect::<Vec<_>>());
    }

    /// A retry loop's total virtual-time charge never exceeds the deadline,
    /// and its attempt count never exceeds `max_attempts`, for any failure
    /// pattern.
    #[test]
    fn retry_respects_deadline_and_attempt_budget(
        max_attempts in 1u32..12,
        deadline_ms in 0u64..20_000,
        failures in proptest::collection::vec(any::<bool>(), 0..12),
    ) {
        #[derive(Debug)]
        struct Flaky;
        impl tippers_resilience::Transient for Flaky {
            fn is_transient(&self) -> bool { true }
        }
        let policy = RetryPolicy { max_attempts, deadline_ms, ..RetryPolicy::default() };
        let mut calls = 0u32;
        let result = policy.run(|attempt| {
            calls += 1;
            if failures.get(attempt as usize).copied().unwrap_or(false) {
                Err(Flaky)
            } else {
                Ok(attempt)
            }
        });
        prop_assert!(calls <= max_attempts);
        if let Ok((_, report)) = result {
            prop_assert!(report.elapsed_ms <= deadline_ms);
            prop_assert!(report.attempts <= max_attempts);
        }
    }

    /// The breaker never closes without passing through half-open: for any
    /// event sequence, a Closed state directly after an Open one is
    /// impossible.
    #[test]
    fn breaker_never_skips_half_open(
        failure_threshold in 1u32..5,
        cooldown_secs in 1i64..1_000,
        events in proptest::collection::vec((any::<bool>(), 0i64..100), 1..60),
    ) {
        let mut breaker = CircuitBreaker::new(BreakerConfig { failure_threshold, cooldown_secs });
        let mut now = 0i64;
        let mut states = vec![breaker.state()];
        for (ok, dt) in events {
            now += dt;
            if breaker.admit(now) {
                // Sample between admission and outcome: this is where the
                // half-open probe state must be visible.
                states.push(breaker.state());
                if ok {
                    breaker.record_success();
                } else {
                    breaker.record_failure(now);
                }
            }
            states.push(breaker.state());
        }
        for pair in states.windows(2) {
            prop_assert!(
                !(pair[0] == BreakerState::Open && pair[1] == BreakerState::Closed),
                "breaker closed straight from open: {states:?}"
            );
        }
    }

    /// While open, the breaker admits nothing until the cooldown elapses;
    /// the first admission after it is the half-open probe, and a second
    /// probe is never admitted concurrently.
    #[test]
    fn open_breaker_admits_exactly_one_probe_after_cooldown(
        failure_threshold in 1u32..4,
        cooldown_secs in 2i64..500,
        probe_delay in 0i64..1_000,
    ) {
        let mut breaker = CircuitBreaker::new(BreakerConfig { failure_threshold, cooldown_secs });
        for _ in 0..failure_threshold {
            prop_assert!(breaker.admit(0));
            breaker.record_failure(0);
        }
        prop_assert_eq!(breaker.state(), BreakerState::Open);
        let at = probe_delay;
        let admitted = breaker.admit(at);
        prop_assert_eq!(admitted, at >= cooldown_secs, "admission iff cooldown elapsed");
        if admitted {
            prop_assert_eq!(breaker.state(), BreakerState::HalfOpen);
            // No second concurrent probe, no matter how late.
            prop_assert!(!breaker.admit(at + 10_000));
            // The probe's outcome decides: success closes, failure reopens.
            breaker.record_success();
            prop_assert_eq!(breaker.state(), BreakerState::Closed);
        } else {
            prop_assert_eq!(breaker.state(), BreakerState::Open);
        }
    }
}
