//! The deterministic fault plane.
//!
//! A [`FaultPlan`] is a shared, seeded source of injected failures. Code
//! under test consults it at named [`FaultPoint`]s; the plan decides —
//! reproducibly, from its seed — whether that operation fails this time.
//! A disarmed plan (the default) never injects anything and costs one
//! branch per consultation.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A named place in the system where failures can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultPoint {
    /// A registry's response to a discovery broadcast.
    RegistryDiscover,
    /// An advertisement fetch from a registry.
    RegistryFetch,
    /// The BMS publishing a policy advertisement.
    PolicyPublish,
    /// A write to the observation store.
    StoreWrite,
    /// Decoding a fetched policy document.
    PolicyDecode,
    /// Clock skew applied to freshness checks (uses the rule's parameter
    /// as a shift in seconds).
    ClockSkew,
    /// Rebuilding the enforcement engine.
    EnforcerBuild,
    /// A torn write-ahead-log append: only a prefix of the record's bytes
    /// reaches the log (the rule's parameter, when positive, is the number
    /// of bytes written; otherwise half the record survives).
    WalAppendTorn,
    /// A flipped bit inside an appended write-ahead-log record (the rule's
    /// parameter is the byte offset within the record; the bit within the
    /// byte follows from `offset % 8`).
    WalBitFlip,
    /// A dropped fsync: the append reaches the log file's buffer but is
    /// not made durable, so a crash before the next successful sync loses
    /// it.
    WalSyncDrop,
    /// A failed segment rename during checkpoint publication — the
    /// checkpoint's temporary segment never becomes visible, modeling a
    /// crash between prepare and rename.
    WalSegmentRename,
    /// A replication frame silently lost between the primary and a
    /// replica; the primary sees no acknowledgement and must retransmit.
    ReplFrameDrop,
    /// A replication frame delivered out of order: the link holds the
    /// frame back and delivers it after its successors.
    ReplFrameReorder,
    /// A delayed replication acknowledgement (the rule's parameter is the
    /// delay in virtual milliseconds); the frame arrives but the primary
    /// cannot count it towards the commit quorum until the ack lands.
    ReplAckDelay,
    /// A network partition between replication peers (the rule's
    /// parameter, when positive, identifies the isolated node); while
    /// armed, frames and acks crossing the cut are dropped symmetrically.
    Partition,
    /// A flipped bit inside an archived, sealed audit segment (the rule's
    /// parameter is the byte offset within the archived blob; the bit
    /// within the byte follows from `offset % 8`). Audit-chain
    /// verification must catch it.
    AuditBitFlip,
    /// A crash between a retention sweep's deleted-rows record and its
    /// commit record: the sweep stays uncommitted and recovery must finish
    /// it exactly once.
    SweepCrash,
    /// A dropped disclosure-quota charge: the in-memory counter bumps but
    /// the durable record is lost. The release path must roll back and
    /// fail closed rather than disclose an unaccounted read.
    QuotaCounterDrop,
    /// A torn group-committed ingest batch: only a prefix of the batch's
    /// frames reaches the log before the crash (the rule's parameter, when
    /// positive, is the number of frames that survive; otherwise half the
    /// batch survives). Recovery must keep each surviving record atomic —
    /// a batch is all-in or all-out, never a partial row set.
    IngestBatchTorn,
    /// A sensor link refusing delivery: the downstream ingest mailbox
    /// pushes back and the link must retry (capped) or drop-and-account,
    /// never buffer without bound.
    SensorLinkDrop,
    /// A stalled group-commit fsync: the batch's frames reach the log
    /// file's buffer but the amortized sync never completes, so a crash
    /// loses the whole batch. The capture path must treat the batch as
    /// unadmitted (drop-and-audit), never as stored.
    GroupCommitFsyncStall,
    /// An enforcement shard panicking mid-operation. The crash-isolation
    /// boundary must contain it: the shard is quarantined and rebuilt
    /// from its WAL partition while every other shard keeps serving.
    ShardPanic,
    /// An enforcement shard stalling: its watchdog deadline expires with
    /// the operation unapplied. The supervisor must quarantine the shard
    /// exactly as for a panic — a hung shard never blocks the router.
    ShardStall,
    /// A failed shard restart: the WAL-replay rebuild of a quarantined
    /// shard is lost before it completes. The supervisor must keep the
    /// shard quarantined (answering fail-closed) and retry under capped
    /// backoff, never serve from a half-rebuilt shard.
    ShardRestartLoss,
    /// A shard worker running slow-but-alive: the job is delayed past the
    /// router's real-time watchdog, then runs to completion on the
    /// abandoned engine. Unlike [`FaultPoint::ShardStall`] (which skips
    /// the job), this exercises the dangerous half of a watchdog expiry —
    /// the quarantined worker must be *fenced* from its WAL partition so
    /// its late writes can never interleave with the rebuilt engine's.
    ShardSlowJob,
}

impl FaultPoint {
    /// Every defined injection point.
    pub const ALL: [FaultPoint; 25] = [
        FaultPoint::RegistryDiscover,
        FaultPoint::RegistryFetch,
        FaultPoint::PolicyPublish,
        FaultPoint::StoreWrite,
        FaultPoint::PolicyDecode,
        FaultPoint::ClockSkew,
        FaultPoint::EnforcerBuild,
        FaultPoint::WalAppendTorn,
        FaultPoint::WalBitFlip,
        FaultPoint::WalSyncDrop,
        FaultPoint::WalSegmentRename,
        FaultPoint::ReplFrameDrop,
        FaultPoint::ReplFrameReorder,
        FaultPoint::ReplAckDelay,
        FaultPoint::Partition,
        FaultPoint::AuditBitFlip,
        FaultPoint::SweepCrash,
        FaultPoint::QuotaCounterDrop,
        FaultPoint::IngestBatchTorn,
        FaultPoint::SensorLinkDrop,
        FaultPoint::GroupCommitFsyncStall,
        FaultPoint::ShardPanic,
        FaultPoint::ShardStall,
        FaultPoint::ShardRestartLoss,
        FaultPoint::ShardSlowJob,
    ];
}

impl fmt::Display for FaultPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaultPoint::RegistryDiscover => "registry-discover",
            FaultPoint::RegistryFetch => "registry-fetch",
            FaultPoint::PolicyPublish => "policy-publish",
            FaultPoint::StoreWrite => "store-write",
            FaultPoint::PolicyDecode => "policy-decode",
            FaultPoint::ClockSkew => "clock-skew",
            FaultPoint::EnforcerBuild => "enforcer-build",
            FaultPoint::WalAppendTorn => "wal-append-torn",
            FaultPoint::WalBitFlip => "wal-bit-flip",
            FaultPoint::WalSyncDrop => "wal-sync-drop",
            FaultPoint::WalSegmentRename => "wal-segment-rename",
            FaultPoint::ReplFrameDrop => "repl-frame-drop",
            FaultPoint::ReplFrameReorder => "repl-frame-reorder",
            FaultPoint::ReplAckDelay => "repl-ack-delay",
            FaultPoint::Partition => "partition",
            FaultPoint::AuditBitFlip => "audit-bit-flip",
            FaultPoint::SweepCrash => "sweep-crash",
            FaultPoint::QuotaCounterDrop => "quota-counter-drop",
            FaultPoint::IngestBatchTorn => "ingest-batch-torn",
            FaultPoint::SensorLinkDrop => "sensor-link-drop",
            FaultPoint::GroupCommitFsyncStall => "group-commit-fsync-stall",
            FaultPoint::ShardPanic => "shard-panic",
            FaultPoint::ShardStall => "shard-stall",
            FaultPoint::ShardRestartLoss => "shard-restart-loss",
            FaultPoint::ShardSlowJob => "shard-slow-job",
        };
        f.write_str(name)
    }
}

#[derive(Debug, Clone, Copy)]
struct Rule {
    probability: f64,
    /// Remaining injections before the rule disarms itself (`None` =
    /// unlimited).
    remaining: Option<u32>,
    /// Point-specific magnitude (e.g. clock-skew seconds).
    param: i64,
}

#[derive(Debug, Default)]
struct Inner {
    rng: Mutex<Option<StdRng>>,
    rules: Mutex<HashMap<FaultPoint, Rule>>,
    injected: Mutex<HashMap<FaultPoint, u64>>,
}

/// A shared, seeded fault-injection plan.
///
/// Cloning is cheap and *shares* state: arm a point on one handle and every
/// component holding a clone sees it. [`FaultPlan::default`] is disarmed.
///
/// # Examples
///
/// ```
/// use tippers_resilience::{FaultPlan, FaultPoint};
///
/// let plan = FaultPlan::seeded(42).with_fault(FaultPoint::RegistryFetch, 1.0);
/// assert!(plan.should_fail(FaultPoint::RegistryFetch));
/// assert!(!plan.should_fail(FaultPoint::StoreWrite));
/// assert_eq!(plan.injected(FaultPoint::RegistryFetch), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    inner: Arc<Inner>,
}

impl FaultPlan {
    /// A disarmed plan (never injects).
    pub fn disarmed() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan whose injection decisions derive from `seed`.
    pub fn seeded(seed: u64) -> FaultPlan {
        let plan = FaultPlan::default();
        *plan.inner.rng.lock() = Some(StdRng::seed_from_u64(seed));
        plan
    }

    /// Arms `point` to fail with `probability` (builder form).
    #[must_use]
    pub fn with_fault(self, point: FaultPoint, probability: f64) -> FaultPlan {
        self.arm(point, probability);
        self
    }

    /// Arms `point` to fail with `probability`.
    pub fn arm(&self, point: FaultPoint, probability: f64) {
        self.arm_rule(point, probability, None, 0);
    }

    /// Arms `point` for at most `budget` injections, then self-disarms.
    pub fn arm_limited(&self, point: FaultPoint, probability: f64, budget: u32) {
        self.arm_rule(point, probability, Some(budget), 0);
    }

    /// Arms `point` with a point-specific magnitude (e.g. skew seconds for
    /// [`FaultPoint::ClockSkew`]).
    pub fn arm_with_param(&self, point: FaultPoint, probability: f64, param: i64) {
        self.arm_rule(point, probability, None, param);
    }

    fn arm_rule(&self, point: FaultPoint, probability: f64, remaining: Option<u32>, param: i64) {
        assert!(
            (0.0..=1.0).contains(&probability),
            "fault probability must be in [0, 1]"
        );
        self.inner.rules.lock().insert(
            point,
            Rule {
                probability,
                remaining,
                param,
            },
        );
    }

    /// Disarms `point`.
    pub fn disarm(&self, point: FaultPoint) {
        self.inner.rules.lock().remove(&point);
    }

    /// True if a rule is armed at `point`.
    pub fn is_armed(&self, point: FaultPoint) -> bool {
        self.inner.rules.lock().contains_key(&point)
    }

    /// True if no point is armed (the hot-path fast check).
    pub fn is_disarmed(&self) -> bool {
        self.inner.rules.lock().is_empty()
    }

    /// Consults the plan at `point`: should this operation fail now?
    ///
    /// Deterministic given the seed and the consultation sequence.
    /// Disarmed points (and disarmed plans) always return `false`.
    pub fn should_fail(&self, point: FaultPoint) -> bool {
        let mut rules = self.inner.rules.lock();
        let Some(rule) = rules.get_mut(&point) else {
            return false;
        };
        if rule.remaining == Some(0) {
            return false;
        }
        let hit = if rule.probability >= 1.0 {
            true
        } else if rule.probability <= 0.0 {
            false
        } else {
            let mut rng = self.inner.rng.lock();
            let rng = rng.get_or_insert_with(|| StdRng::seed_from_u64(0));
            rng.gen::<f64>() < rule.probability
        };
        if hit {
            if let Some(n) = &mut rule.remaining {
                *n -= 1;
            }
            *self.inner.injected.lock().entry(point).or_default() += 1;
        }
        hit
    }

    /// The armed parameter at `point` (0 when unarmed or unset).
    pub fn param(&self, point: FaultPoint) -> i64 {
        self.inner.rules.lock().get(&point).map_or(0, |r| r.param)
    }

    /// How many failures have been injected at `point`.
    pub fn injected(&self, point: FaultPoint) -> u64 {
        self.inner.injected.lock().get(&point).copied().unwrap_or(0)
    }

    /// Total injections across all points.
    pub fn total_injected(&self) -> u64 {
        self.inner.injected.lock().values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_plan_never_fires() {
        let plan = FaultPlan::disarmed();
        for point in FaultPoint::ALL {
            for _ in 0..100 {
                assert!(!plan.should_fail(point));
            }
        }
        assert_eq!(plan.total_injected(), 0);
    }

    #[test]
    fn same_seed_same_sequence() {
        let run = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::seeded(seed).with_fault(FaultPoint::RegistryFetch, 0.5);
            (0..64)
                .map(|_| plan.should_fail(FaultPoint::RegistryFetch))
                .collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should diverge");
    }

    #[test]
    fn clones_share_state() {
        let plan = FaultPlan::seeded(1);
        let handle = plan.clone();
        plan.arm(FaultPoint::StoreWrite, 1.0);
        assert!(handle.should_fail(FaultPoint::StoreWrite));
        assert_eq!(plan.injected(FaultPoint::StoreWrite), 1);
    }

    #[test]
    fn budget_exhausts() {
        let plan = FaultPlan::seeded(3);
        plan.arm_limited(FaultPoint::PolicyPublish, 1.0, 2);
        assert!(plan.should_fail(FaultPoint::PolicyPublish));
        assert!(plan.should_fail(FaultPoint::PolicyPublish));
        assert!(!plan.should_fail(FaultPoint::PolicyPublish));
        assert_eq!(plan.injected(FaultPoint::PolicyPublish), 2);
    }

    #[test]
    fn params_are_retrievable() {
        let plan = FaultPlan::seeded(0);
        plan.arm_with_param(FaultPoint::ClockSkew, 1.0, -7200);
        assert_eq!(plan.param(FaultPoint::ClockSkew), -7200);
        assert_eq!(plan.param(FaultPoint::StoreWrite), 0);
    }

    #[test]
    fn disarm_stops_injection() {
        let plan = FaultPlan::seeded(0).with_fault(FaultPoint::RegistryFetch, 1.0);
        assert!(plan.should_fail(FaultPoint::RegistryFetch));
        plan.disarm(FaultPoint::RegistryFetch);
        assert!(!plan.should_fail(FaultPoint::RegistryFetch));
        assert!(plan.is_disarmed());
    }
}
