//! Degraded-mode health tracking.
//!
//! When an internal failure forces the BMS to fail closed (deny because it
//! *cannot* decide, not because policy says no), the [`HealthMonitor`]
//! records why, so operators and tests can distinguish "denied by policy"
//! from "denied because the enforcement engine is broken".

use std::fmt;

/// Coarse component health.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthStatus {
    /// Operating normally.
    Healthy,
    /// An internal failure occurred; the component is failing closed.
    Degraded,
}

impl fmt::Display for HealthStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            HealthStatus::Healthy => "healthy",
            HealthStatus::Degraded => "degraded",
        })
    }
}

/// Tracks a component's health and the reason it last degraded.
#[derive(Debug, Clone, Default)]
pub struct HealthMonitor {
    reason: Option<String>,
    degraded_events: u64,
}

impl HealthMonitor {
    /// A healthy monitor.
    pub fn new() -> HealthMonitor {
        HealthMonitor::default()
    }

    /// Current status.
    pub fn status(&self) -> HealthStatus {
        if self.reason.is_some() {
            HealthStatus::Degraded
        } else {
            HealthStatus::Healthy
        }
    }

    /// True while degraded.
    pub fn is_degraded(&self) -> bool {
        self.reason.is_some()
    }

    /// Why the component is degraded, if it is.
    pub fn reason(&self) -> Option<&str> {
        self.reason.as_deref()
    }

    /// Lifetime count of healthy → degraded transitions.
    pub fn degraded_events(&self) -> u64 {
        self.degraded_events
    }

    /// Marks the component degraded. Counts a new event only on the
    /// healthy → degraded edge; a repeated mark just updates the reason.
    pub fn mark_degraded(&mut self, reason: impl Into<String>) {
        if self.reason.is_none() {
            self.degraded_events += 1;
        }
        self.reason = Some(reason.into());
    }

    /// Marks the component healthy again.
    pub fn mark_recovered(&mut self) {
        self.reason = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_healthy() {
        let m = HealthMonitor::new();
        assert_eq!(m.status(), HealthStatus::Healthy);
        assert!(!m.is_degraded());
        assert_eq!(m.reason(), None);
        assert_eq!(m.degraded_events(), 0);
    }

    #[test]
    fn degrade_and_recover() {
        let mut m = HealthMonitor::new();
        m.mark_degraded("enforcer rebuild failed");
        assert_eq!(m.status(), HealthStatus::Degraded);
        assert_eq!(m.reason(), Some("enforcer rebuild failed"));
        assert_eq!(m.degraded_events(), 1);
        m.mark_recovered();
        assert_eq!(m.status(), HealthStatus::Healthy);
        assert_eq!(m.degraded_events(), 1, "recovery does not count an event");
    }

    #[test]
    fn repeated_marks_count_one_event() {
        let mut m = HealthMonitor::new();
        m.mark_degraded("first");
        m.mark_degraded("second");
        assert_eq!(m.degraded_events(), 1);
        assert_eq!(m.reason(), Some("second"));
        m.mark_recovered();
        m.mark_degraded("third");
        assert_eq!(m.degraded_events(), 2);
    }
}
