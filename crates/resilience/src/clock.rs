//! The shared virtual-time clock.
//!
//! Every resilience primitive in this crate is driven by *explicit* time —
//! the simulation never sleeps and never reads a wall clock, so a scenario
//! replays bit-for-bit from its seed. [`VirtualClock`] is the shared source
//! of that time: cloning is cheap and shares state, so the workload driver
//! advances one clock and every limiter, throttle, and mailbox holding a
//! clone observes the same instant.

use std::sync::Arc;

use parking_lot::Mutex;

/// Milliseconds in one virtual second, the crate's canonical tick unit.
pub const MILLIS_PER_SEC: i64 = 1000;

/// Converts whole virtual seconds (e.g. a `Timestamp`) to clock
/// milliseconds.
pub fn ms_from_secs(secs: i64) -> i64 {
    secs.saturating_mul(MILLIS_PER_SEC)
}

/// A shared, monotone, manually-advanced clock in virtual milliseconds.
///
/// # Examples
///
/// ```
/// use tippers_resilience::VirtualClock;
///
/// let clock = VirtualClock::at_ms(1_000);
/// let handle = clock.clone();
/// clock.advance_ms(250);
/// assert_eq!(handle.now_ms(), 1_250);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now_ms: Arc<Mutex<i64>>,
}

impl VirtualClock {
    /// A clock starting at virtual time zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// A clock starting at `now_ms`.
    pub fn at_ms(now_ms: i64) -> VirtualClock {
        VirtualClock {
            now_ms: Arc::new(Mutex::new(now_ms)),
        }
    }

    /// The current virtual time, milliseconds.
    pub fn now_ms(&self) -> i64 {
        *self.now_ms.lock()
    }

    /// Advances the clock by `delta_ms` (negative deltas are ignored: the
    /// clock is monotone).
    pub fn advance_ms(&self, delta_ms: i64) {
        if delta_ms > 0 {
            *self.now_ms.lock() += delta_ms;
        }
    }

    /// Moves the clock forward to `now_ms` if that is later than the
    /// current time (monotone set).
    pub fn set_ms(&self, now_ms: i64) {
        let mut t = self.now_ms.lock();
        if now_ms > *t {
            *t = now_ms;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_time() {
        let clock = VirtualClock::new();
        let handle = clock.clone();
        clock.advance_ms(42);
        assert_eq!(handle.now_ms(), 42);
        handle.set_ms(100);
        assert_eq!(clock.now_ms(), 100);
    }

    #[test]
    fn clock_is_monotone() {
        let clock = VirtualClock::at_ms(500);
        clock.advance_ms(-10);
        assert_eq!(clock.now_ms(), 500);
        clock.set_ms(400);
        assert_eq!(clock.now_ms(), 500);
    }

    #[test]
    fn seconds_convert() {
        assert_eq!(ms_from_secs(3), 3000);
        assert_eq!(ms_from_secs(i64::MAX), i64::MAX);
    }
}
