//! A per-dependency circuit breaker over logical (simulated) time.
//!
//! States follow the classic closed → open → half-open cycle. The breaker
//! never skips half-open: once open, exactly one probe is admitted after the
//! cooldown, and only that probe's success closes the circuit again.

use std::fmt;

/// Circuit-breaker tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// Logical seconds the breaker stays open before admitting a probe.
    pub cooldown_secs: i64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_secs: 300,
        }
    }
}

/// Where the breaker is in its cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows; failures are being counted.
    Closed,
    /// Traffic is refused until the cooldown elapses.
    Open,
    /// One probe is in flight; its outcome decides the next state.
    HalfOpen,
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

/// A circuit breaker driven by explicit logical timestamps (seconds).
///
/// The caller asks [`CircuitBreaker::admit`] before each operation and
/// reports the outcome with [`CircuitBreaker::record_success`] /
/// [`CircuitBreaker::record_failure`]. No wall-clock time is consulted —
/// `now_secs` is whatever clock the simulation runs on.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: i64,
    trips: u64,
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        CircuitBreaker::new(BreakerConfig::default())
    }
}

impl CircuitBreaker {
    /// A closed breaker with the given config.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: 0,
            trips: 0,
        }
    }

    /// The current state. Note the open → half-open transition happens in
    /// [`CircuitBreaker::admit`], so this reports the state as of the last
    /// admission decision.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// How many times the breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Asks whether an operation may proceed at logical time `now_secs`.
    ///
    /// In `Open` state, the first call at or after `opened_at +
    /// cooldown_secs` transitions to `HalfOpen` and admits a single probe;
    /// further calls are refused until that probe's outcome is recorded.
    pub fn admit(&mut self, now_secs: i64) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => false,
            BreakerState::Open => {
                if now_secs - self.opened_at >= self.config.cooldown_secs {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Reports a successful operation. Closes the circuit only from
    /// `HalfOpen`; in `Closed` it resets the failure streak.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
        }
    }

    /// Reports a failed operation at logical time `now_secs`. A half-open
    /// probe failure reopens immediately; in `Closed`, reaching the failure
    /// threshold trips the breaker open.
    pub fn record_failure(&mut self, now_secs: i64) {
        self.consecutive_failures += 1;
        match self.state {
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open;
                self.opened_at = now_secs;
                self.trips += 1;
            }
            BreakerState::Closed => {
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.state = BreakerState::Open;
                    self.opened_at = now_secs;
                    self.trips += 1;
                }
            }
            BreakerState::Open => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown_secs: 60,
        })
    }

    #[test]
    fn trips_after_threshold_failures() {
        let mut b = breaker();
        for _ in 0..2 {
            assert!(b.admit(0));
            b.record_failure(0);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit(0));
        b.record_failure(0);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.admit(30), "open breaker refuses before cooldown");
    }

    #[test]
    fn half_open_admits_single_probe() {
        let mut b = breaker();
        for _ in 0..3 {
            b.admit(0);
            b.record_failure(0);
        }
        assert!(b.admit(60), "cooldown elapsed → probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.admit(60), "only one probe at a time");
        assert!(!b.admit(1_000), "still only one probe");
    }

    #[test]
    fn probe_success_closes() {
        let mut b = breaker();
        for _ in 0..3 {
            b.admit(0);
            b.record_failure(0);
        }
        assert!(b.admit(60));
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit(61));
    }

    #[test]
    fn probe_failure_reopens() {
        let mut b = breaker();
        for _ in 0..3 {
            b.admit(0);
            b.record_failure(0);
        }
        assert!(b.admit(60));
        b.record_failure(60);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.admit(100), "cooldown restarts from the probe failure");
        assert!(b.admit(120));
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn success_resets_failure_streak() {
        let mut b = breaker();
        b.admit(0);
        b.record_failure(0);
        b.admit(0);
        b.record_failure(0);
        b.record_success();
        b.admit(0);
        b.record_failure(0);
        b.admit(0);
        b.record_failure(0);
        assert_eq!(b.state(), BreakerState::Closed, "streak was reset");
    }
}
