//! Priority-classed admission control and load shedding.
//!
//! The enforcement point classifies every request into a [`Priority`] and
//! runs it through an [`AdmissionController`] that composes the
//! token-bucket rate limiter and the AIMD concurrency limiter, with two
//! invariants the storm harness asserts:
//!
//! * **Emergency is never shed.** Safety-critical traffic (the paper's
//!   Figure 3 emergency-location policy) bypasses every limit; it still
//!   counts as in-flight so the control loop sees its load.
//! * **Sheds fail closed.** A shed request gets a typed refusal
//!   ([`ShedReason`]) the caller must turn into a deny — never a permit.
//!
//! Batch-class traffic is shed first: it only gets tokens the reserve for
//! higher classes does not claim, and the brownout ladder's last rung
//! rejects it outright.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::brownout::BrownoutLevel;
use crate::limiter::{AimdConfig, AimdLimiter, TokenBucket, TokenBucketConfig};

/// Request priority classes, ordered `Batch < Interactive < Emergency`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum Priority {
    /// Throughput-oriented background work (analytics sweeps, audits).
    Batch,
    /// A human is waiting (the default class).
    #[default]
    Interactive,
    /// Safety-critical traffic; never shed.
    Emergency,
}

impl Priority {
    /// All classes, lowest first.
    pub const ALL: [Priority; 3] = [Priority::Batch, Priority::Interactive, Priority::Emergency];

    fn index(self) -> usize {
        match self {
            Priority::Batch => 0,
            Priority::Interactive => 1,
            Priority::Emergency => 2,
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Priority::Batch => "batch",
            Priority::Interactive => "interactive",
            Priority::Emergency => "emergency",
        };
        f.write_str(name)
    }
}

/// Why a request was refused admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedReason {
    /// The token bucket is out of rate budget (for Batch, out of
    /// unreserved budget).
    RateLimited,
    /// The AIMD concurrency limit is full.
    ConcurrencyLimited,
    /// The brownout ladder reached its reject-Batch rung.
    BrownoutRejected,
    /// The request's deadline had already passed.
    DeadlineExpired,
}

impl fmt::Display for ShedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ShedReason::RateLimited => "rate-limited",
            ShedReason::ConcurrencyLimited => "concurrency-limited",
            ShedReason::BrownoutRejected => "brownout-rejected",
            ShedReason::DeadlineExpired => "deadline-expired",
        };
        f.write_str(name)
    }
}

/// [`AdmissionController`] parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Rate limit shared by all classes.
    pub bucket: TokenBucketConfig,
    /// Adaptive concurrency limit.
    pub aimd: AimdConfig,
    /// Fraction of the bucket's capacity Batch traffic may not touch —
    /// the headroom kept for Interactive and Emergency.
    pub batch_reserve: f64,
    /// Virtual service time per admitted request, milliseconds. Observed
    /// latency is modeled as `service_time_ms × in-flight`, a
    /// deterministic queueing-delay signal for the AIMD loop.
    pub service_time_ms: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            bucket: TokenBucketConfig::default(),
            aimd: AimdConfig::default(),
            batch_reserve: 0.25,
            service_time_ms: 5.0,
        }
    }
}

/// Per-class admission counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionStats {
    /// Requests admitted, indexed by [`Priority`] (Batch, Interactive,
    /// Emergency).
    pub admitted: [u64; 3],
    /// Requests shed, same indexing. `shed[2]` staying zero is the
    /// Emergency invariant.
    pub shed: [u64; 3],
}

impl AdmissionStats {
    /// Admissions for one class.
    pub fn admitted_for(&self, priority: Priority) -> u64 {
        self.admitted[priority.index()]
    }

    /// Sheds for one class.
    pub fn shed_for(&self, priority: Priority) -> u64 {
        self.shed[priority.index()]
    }

    /// Total sheds across classes.
    pub fn total_shed(&self) -> u64 {
        self.shed.iter().sum()
    }
}

/// Priority-classed admission at the enforcement point.
///
/// Call [`AdmissionController::admit`] before doing the work and
/// [`AdmissionController::complete`] when it finishes; completion feeds
/// the AIMD control loop its (virtual) latency observation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionController {
    config: AdmissionConfig,
    bucket: TokenBucket,
    aimd: AimdLimiter,
    stats: AdmissionStats,
}

impl AdmissionController {
    /// A controller with a full rate budget as of `now_ms`.
    ///
    /// # Panics
    ///
    /// Panics if `batch_reserve` is outside `[0, 1)` (plus the
    /// constituent limiters' own validation).
    pub fn new(config: AdmissionConfig, now_ms: i64) -> AdmissionController {
        assert!(
            (0.0..1.0).contains(&config.batch_reserve),
            "batch reserve must be in [0, 1)"
        );
        AdmissionController {
            bucket: TokenBucket::new(config.bucket, now_ms),
            aimd: AimdLimiter::new(config.aimd),
            config,
            stats: AdmissionStats::default(),
        }
    }

    /// Decides whether to admit a request of class `priority` at `now_ms`
    /// under brownout level `brownout`.
    ///
    /// # Errors
    ///
    /// A [`ShedReason`] the caller must turn into a fail-closed denial.
    /// Emergency requests never get one.
    pub fn admit(
        &mut self,
        priority: Priority,
        now_ms: i64,
        brownout: BrownoutLevel,
    ) -> Result<(), ShedReason> {
        if priority == Priority::Emergency {
            // Never shed; a best-effort token draw keeps the rate
            // accounting honest without ever being able to refuse.
            let _ = self.bucket.try_acquire(now_ms, 1.0);
            self.aimd.acquire_unchecked();
            self.stats.admitted[priority.index()] += 1;
            return Ok(());
        }
        let refused = if priority == Priority::Batch && brownout >= BrownoutLevel::RejectBatch {
            Some(ShedReason::BrownoutRejected)
        } else if priority == Priority::Batch
            && self.bucket.available(now_ms)
                < self.config.batch_reserve * self.bucket.capacity() + 1.0
        {
            // Batch may not dip into the reserve kept for higher classes.
            Some(ShedReason::RateLimited)
        } else if !self.bucket.try_acquire(now_ms, 1.0) {
            Some(ShedReason::RateLimited)
        } else if !self.aimd.try_acquire() {
            // The token is spent either way; refunding it would let a
            // concurrency-limited caller immediately retry past the rate
            // limiter.
            Some(ShedReason::ConcurrencyLimited)
        } else {
            None
        };
        match refused {
            Some(reason) => {
                self.stats.shed[priority.index()] += 1;
                Err(reason)
            }
            None => {
                self.stats.admitted[priority.index()] += 1;
                Ok(())
            }
        }
    }

    /// Records one shed decided outside the controller (e.g. an expired
    /// deadline caught before admission), keeping per-class counters
    /// complete.
    pub fn record_external_shed(&mut self, priority: Priority) {
        self.stats.shed[priority.index()] += 1;
    }

    /// Completes one admitted request, feeding the AIMD loop a
    /// deterministic latency observation derived from the in-flight count.
    pub fn complete(&mut self, _now_ms: i64) {
        let latency = self.config.service_time_ms * f64::from(self.aimd.in_flight().max(1));
        self.aimd.release(latency);
    }

    /// The load signal for the brownout ladder, in `[0, 1]`: the worse of
    /// concurrency utilization and rate-budget depletion.
    pub fn load(&mut self, now_ms: i64) -> f64 {
        let rate_depletion = 1.0 - self.bucket.available(now_ms) / self.bucket.capacity();
        self.aimd.utilization().min(1.0).max(rate_depletion)
    }

    /// Per-class counters.
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }

    /// The AIMD limiter's current concurrency limit.
    pub fn concurrency_limit(&self) -> u32 {
        self.aimd.limit()
    }

    /// Requests currently in flight.
    pub fn in_flight(&self) -> u32 {
        self.aimd.in_flight()
    }

    /// The per-request virtual service time, milliseconds.
    pub fn service_time_ms(&self) -> f64 {
        self.config.service_time_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight() -> AdmissionController {
        AdmissionController::new(
            AdmissionConfig {
                bucket: TokenBucketConfig {
                    capacity: 4.0,
                    refill_per_sec: 1.0,
                },
                aimd: AimdConfig {
                    min_limit: 1,
                    max_limit: 2,
                    initial_limit: 2,
                    ..AimdConfig::default()
                },
                batch_reserve: 0.5,
                service_time_ms: 5.0,
            },
            0,
        )
    }

    #[test]
    fn emergency_is_never_shed() {
        let mut c = tight();
        for _ in 0..1_000 {
            c.admit(Priority::Emergency, 0, BrownoutLevel::RejectBatch)
                .expect("emergency always admitted");
        }
        assert_eq!(c.stats().shed_for(Priority::Emergency), 0);
        assert_eq!(c.stats().admitted_for(Priority::Emergency), 1_000);
    }

    #[test]
    fn batch_is_shed_before_interactive() {
        let mut c = AdmissionController::new(
            AdmissionConfig {
                bucket: TokenBucketConfig {
                    capacity: 4.0,
                    refill_per_sec: 1.0,
                },
                batch_reserve: 0.5,
                ..AdmissionConfig::default()
            },
            0,
        );
        // Reserve is 50% of a 4-token bucket: Batch stops once taking a
        // token would dip into the reserved half; Interactive drains the
        // bucket all the way.
        assert!(c.admit(Priority::Batch, 0, BrownoutLevel::Normal).is_ok());
        assert!(c.admit(Priority::Batch, 0, BrownoutLevel::Normal).is_ok());
        assert_eq!(
            c.admit(Priority::Batch, 0, BrownoutLevel::Normal),
            Err(ShedReason::RateLimited)
        );
        assert!(c
            .admit(Priority::Interactive, 0, BrownoutLevel::Normal)
            .is_ok());
        assert!(c
            .admit(Priority::Interactive, 0, BrownoutLevel::Normal)
            .is_ok());
        assert_eq!(
            c.admit(Priority::Interactive, 0, BrownoutLevel::Normal),
            Err(ShedReason::RateLimited)
        );
        let stats = c.stats();
        assert_eq!(stats.shed_for(Priority::Batch), 1);
        assert_eq!(stats.shed_for(Priority::Interactive), 1);
    }

    #[test]
    fn reject_batch_rung_sheds_batch_only() {
        let mut c = tight();
        assert_eq!(
            c.admit(Priority::Batch, 0, BrownoutLevel::RejectBatch),
            Err(ShedReason::BrownoutRejected)
        );
        assert!(c
            .admit(Priority::Interactive, 0, BrownoutLevel::RejectBatch)
            .is_ok());
    }

    #[test]
    fn completion_feeds_the_control_loop() {
        let mut c = tight();
        assert!(c
            .admit(Priority::Interactive, 0, BrownoutLevel::Normal)
            .is_ok());
        assert_eq!(c.in_flight(), 1);
        c.complete(10);
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn load_signal_rises_under_pressure() {
        let mut c = tight();
        let idle = c.load(0);
        while c
            .admit(Priority::Interactive, 0, BrownoutLevel::Normal)
            .is_ok()
        {}
        assert!(c.load(0) > idle);
        assert!(c.load(0) <= 1.0 + f64::EPSILON);
    }

    #[test]
    fn external_sheds_are_counted() {
        let mut c = tight();
        c.record_external_shed(Priority::Interactive);
        assert_eq!(c.stats().shed_for(Priority::Interactive), 1);
        assert_eq!(c.stats().total_shed(), 1);
    }
}
