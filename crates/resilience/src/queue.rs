//! Bounded mailboxes with explicit backpressure.
//!
//! Unbounded queues turn overload into unbounded memory growth and
//! unbounded latency; a [`Mailbox`] instead has a hard capacity and tells
//! the producer *now* when it is full ([`PushError::Full`]), so the
//! producer can shed, retry later, or fail closed. Entries may carry a
//! virtual-time deadline; expired entries are dropped at pop time instead
//! of being processed — deadline propagation means late work is abandoned
//! at every stage, not just at admission.

use std::collections::VecDeque;

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError<T> {
    /// The mailbox is at capacity; the rejected item is handed back.
    Full(T),
}

/// Counters a mailbox keeps over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MailboxStats {
    /// Items accepted.
    pub pushed: u64,
    /// Pushes refused because the mailbox was full.
    pub rejected: u64,
    /// Items dropped at pop time because their deadline had passed.
    pub expired: u64,
    /// Items successfully delivered to the consumer.
    pub delivered: u64,
    /// Deepest the queue has ever been.
    pub high_watermark: usize,
}

/// A bounded FIFO mailbox with deadline-aware delivery.
///
/// # Examples
///
/// ```
/// use tippers_resilience::{Mailbox, PushError};
///
/// let mut mb: Mailbox<&str> = Mailbox::new(1);
/// mb.try_push(0, None, "first").unwrap();
/// assert_eq!(mb.try_push(0, None, "second"), Err(PushError::Full("second")));
/// assert_eq!(mb.pop(0), Some("first"));
/// ```
#[derive(Debug, Clone)]
pub struct Mailbox<T> {
    capacity: usize,
    queue: VecDeque<(Option<i64>, T)>,
    stats: MailboxStats,
}

impl<T> Mailbox<T> {
    /// An empty mailbox holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Mailbox<T> {
        assert!(capacity > 0, "mailbox capacity must be positive");
        Mailbox {
            capacity,
            queue: VecDeque::new(),
            stats: MailboxStats::default(),
        }
    }

    /// Enqueues `item` with an optional expiry deadline (virtual
    /// milliseconds).
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] hands the item back when the mailbox is at
    /// capacity — explicit backpressure, never silent dropping.
    pub fn try_push(
        &mut self,
        now_ms: i64,
        deadline_ms: Option<i64>,
        item: T,
    ) -> Result<(), PushError<T>> {
        self.expire(now_ms);
        if self.queue.len() >= self.capacity {
            self.stats.rejected += 1;
            return Err(PushError::Full(item));
        }
        self.queue.push_back((deadline_ms, item));
        self.stats.pushed += 1;
        self.stats.high_watermark = self.stats.high_watermark.max(self.queue.len());
        Ok(())
    }

    /// Delivers the oldest live item, dropping (and counting) any expired
    /// entries ahead of it.
    pub fn pop(&mut self, now_ms: i64) -> Option<T> {
        self.expire(now_ms);
        let (_, item) = self.queue.pop_front()?;
        self.stats.delivered += 1;
        Some(item)
    }

    /// Drops every entry whose deadline has passed.
    fn expire(&mut self, now_ms: i64) {
        while let Some((Some(deadline), _)) = self.queue.front() {
            if *deadline < now_ms {
                self.queue.pop_front();
                self.stats.expired += 1;
            } else {
                break;
            }
        }
        // Expired entries behind a live head still occupy slots until they
        // reach the front; sweep them too so capacity is not wasted.
        let before = self.queue.len();
        self.queue
            .retain(|(deadline, _)| deadline.is_none_or(|d| d >= now_ms));
        self.stats.expired += (before - self.queue.len()) as u64;
    }

    /// Drops expired entries without delivering anything — for observers
    /// that want an up-to-date [`Mailbox::depth`] at `now_ms`.
    pub fn prune(&mut self, now_ms: i64) {
        self.expire(now_ms);
    }

    /// Items currently queued.
    pub fn depth(&self) -> usize {
        self.queue.len()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> MailboxStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_mailbox_pushes_back() {
        let mut mb = Mailbox::new(2);
        mb.try_push(0, None, 1).unwrap();
        mb.try_push(0, None, 2).unwrap();
        assert_eq!(mb.try_push(0, None, 3), Err(PushError::Full(3)));
        let stats = mb.stats();
        assert_eq!((stats.pushed, stats.rejected), (2, 1));
        assert_eq!(stats.high_watermark, 2);
    }

    #[test]
    fn fifo_delivery() {
        let mut mb = Mailbox::new(8);
        for i in 0..3 {
            mb.try_push(0, None, i).unwrap();
        }
        assert_eq!(mb.pop(0), Some(0));
        assert_eq!(mb.pop(0), Some(1));
        assert_eq!(mb.pop(0), Some(2));
        assert_eq!(mb.pop(0), None);
        assert_eq!(mb.stats().delivered, 3);
    }

    #[test]
    fn expired_entries_are_dropped_not_delivered() {
        let mut mb = Mailbox::new(8);
        mb.try_push(0, Some(100), "late").unwrap();
        mb.try_push(0, None, "forever").unwrap();
        mb.try_push(0, Some(500), "fresh").unwrap();
        assert_eq!(mb.pop(200), Some("forever"));
        assert_eq!(mb.pop(200), Some("fresh"));
        assert_eq!(mb.stats().expired, 1);
    }

    #[test]
    fn expiry_frees_capacity_for_new_pushes() {
        let mut mb = Mailbox::new(1);
        mb.try_push(0, Some(10), "stale").unwrap();
        // At t=20 the stale entry is dead, so the slot is reusable.
        mb.try_push(20, None, "live").unwrap();
        assert_eq!(mb.depth(), 1);
        assert_eq!(mb.pop(20), Some("live"));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _: Mailbox<u8> = Mailbox::new(0);
    }
}
