//! Brownout: stepwise, reversible service degradation under load.
//!
//! Instead of falling over, the enforcement point walks down a documented
//! ladder as load rises — and walks back up, with hysteresis, as it falls:
//!
//! 1. [`BrownoutLevel::Normal`] — full service.
//! 2. [`BrownoutLevel::CoarseOnly`] — stop serving fine-granularity
//!    observations (location answers are capped at floor granularity).
//! 3. [`BrownoutLevel::CachedOnly`] — serve cached/coarse answers to
//!    non-emergency traffic instead of querying the store.
//! 4. [`BrownoutLevel::RejectBatch`] — shed Batch-class requests outright.
//!
//! Escalation is immediate (overload hurts *now*); de-escalation requires
//! load to fall below a strictly lower exit threshold *and* a dwell time to
//! pass, so the controller cannot flap across a threshold.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One rung of the degradation ladder, ordered by severity.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum BrownoutLevel {
    /// Full service.
    #[default]
    Normal,
    /// Fine-granularity observations are no longer served.
    CoarseOnly,
    /// Non-emergency traffic is answered from cache, not the store.
    CachedOnly,
    /// Batch-class requests are rejected outright.
    RejectBatch,
}

impl BrownoutLevel {
    /// Severity as a ladder index (`Normal` = 0).
    pub fn severity(self) -> usize {
        match self {
            BrownoutLevel::Normal => 0,
            BrownoutLevel::CoarseOnly => 1,
            BrownoutLevel::CachedOnly => 2,
            BrownoutLevel::RejectBatch => 3,
        }
    }

    fn from_severity(severity: usize) -> BrownoutLevel {
        match severity {
            0 => BrownoutLevel::Normal,
            1 => BrownoutLevel::CoarseOnly,
            2 => BrownoutLevel::CachedOnly,
            _ => BrownoutLevel::RejectBatch,
        }
    }
}

impl fmt::Display for BrownoutLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            BrownoutLevel::Normal => "normal",
            BrownoutLevel::CoarseOnly => "coarse-only",
            BrownoutLevel::CachedOnly => "cached-only",
            BrownoutLevel::RejectBatch => "reject-batch",
        };
        f.write_str(name)
    }
}

/// [`BrownoutController`] thresholds.
///
/// `enter[i]` is the load at which the controller escalates *from* ladder
/// rung `i`; `exit[i]` is the load below which it may de-escalate *to*
/// rung `i`. Each exit threshold must sit strictly below its enter
/// threshold — that gap is the hysteresis band.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BrownoutConfig {
    /// Escalation thresholds for rungs 0→1, 1→2, 2→3.
    pub enter: [f64; 3],
    /// De-escalation thresholds for rungs 1→0, 2→1, 3→2.
    pub exit: [f64; 3],
    /// Minimum virtual time at a level before de-escalating, milliseconds.
    pub dwell_ms: i64,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        BrownoutConfig {
            enter: [0.70, 0.85, 0.95],
            exit: [0.50, 0.65, 0.80],
            dwell_ms: 2_000,
        }
    }
}

/// The hysteretic ladder controller. Feed it a load signal in `[0, 1]`
/// (e.g. concurrency utilization) each tick; it answers with the level the
/// system should serve at.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BrownoutController {
    config: BrownoutConfig,
    level: BrownoutLevel,
    level_since_ms: i64,
    transitions: u64,
}

impl BrownoutController {
    /// A controller at [`BrownoutLevel::Normal`].
    ///
    /// # Panics
    ///
    /// Panics unless every exit threshold sits strictly below its enter
    /// threshold (no hysteresis band means flapping).
    pub fn new(config: BrownoutConfig) -> BrownoutController {
        for i in 0..3 {
            assert!(
                config.exit[i] < config.enter[i],
                "exit threshold {i} must sit strictly below its enter threshold"
            );
        }
        BrownoutController {
            config,
            level: BrownoutLevel::Normal,
            level_since_ms: i64::MIN,
            transitions: 0,
        }
    }

    /// Observes the current load and returns the level to serve at.
    /// Escalates immediately, de-escalates one rung at a time after the
    /// dwell time.
    pub fn observe(&mut self, now_ms: i64, load: f64) -> BrownoutLevel {
        let mut severity = self.level.severity();
        // Escalate as far as the load justifies, immediately.
        while severity < 3 && load >= self.config.enter[severity] {
            severity += 1;
        }
        if severity > self.level.severity() {
            self.set_level(now_ms, BrownoutLevel::from_severity(severity));
            return self.level;
        }
        // De-escalate one rung, only after dwelling and only through the
        // (lower) exit threshold.
        if severity > 0
            && load < self.config.exit[severity - 1]
            && now_ms.saturating_sub(self.level_since_ms) >= self.config.dwell_ms
        {
            self.set_level(now_ms, BrownoutLevel::from_severity(severity - 1));
        }
        self.level
    }

    fn set_level(&mut self, now_ms: i64, level: BrownoutLevel) {
        self.level = level;
        self.level_since_ms = now_ms;
        self.transitions += 1;
    }

    /// The current ladder rung.
    pub fn level(&self) -> BrownoutLevel {
        self.level
    }

    /// How many level changes have happened.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }
}

impl Default for BrownoutController {
    fn default() -> Self {
        BrownoutController::new(BrownoutConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> BrownoutController {
        BrownoutController::new(BrownoutConfig {
            enter: [0.7, 0.85, 0.95],
            exit: [0.5, 0.65, 0.8],
            dwell_ms: 1_000,
        })
    }

    #[test]
    fn escalates_immediately_and_in_steps() {
        let mut c = controller();
        assert_eq!(c.observe(0, 0.5), BrownoutLevel::Normal);
        assert_eq!(c.observe(10, 0.75), BrownoutLevel::CoarseOnly);
        assert_eq!(c.observe(20, 0.99), BrownoutLevel::RejectBatch);
    }

    #[test]
    fn extreme_load_jumps_the_whole_ladder() {
        let mut c = controller();
        assert_eq!(c.observe(0, 1.0), BrownoutLevel::RejectBatch);
        assert_eq!(c.transitions(), 1);
    }

    #[test]
    fn hysteresis_blocks_flapping_at_the_threshold() {
        let mut c = controller();
        assert_eq!(c.observe(0, 0.72), BrownoutLevel::CoarseOnly);
        // Load hovers just under the enter threshold: no recovery, because
        // it has not crossed the exit threshold.
        for t in 1..100 {
            assert_eq!(c.observe(t * 100, 0.68), BrownoutLevel::CoarseOnly);
        }
        assert_eq!(c.transitions(), 1);
    }

    #[test]
    fn recovery_requires_dwell_time() {
        let mut c = controller();
        assert_eq!(c.observe(0, 0.9), BrownoutLevel::CachedOnly);
        // Load collapses, but the dwell time has not passed.
        assert_eq!(c.observe(500, 0.0), BrownoutLevel::CachedOnly);
        // After dwelling, recovery is one rung at a time.
        assert_eq!(c.observe(1_500, 0.0), BrownoutLevel::CoarseOnly);
        assert_eq!(c.observe(1_600, 0.0), BrownoutLevel::CoarseOnly);
        assert_eq!(c.observe(2_600, 0.0), BrownoutLevel::Normal);
    }

    #[test]
    #[should_panic(expected = "strictly below")]
    fn degenerate_hysteresis_band_is_rejected() {
        let _ = BrownoutController::new(BrownoutConfig {
            enter: [0.7, 0.85, 0.95],
            exit: [0.7, 0.65, 0.8],
            dwell_ms: 0,
        });
    }
}
