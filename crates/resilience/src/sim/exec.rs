//! The deterministic simulation executor: cooperative "threads" under a
//! seeded scheduler.
//!
//! # Model
//!
//! A [`SimExecutor`] run is *logically single-threaded*: every task is
//! carried by an OS thread, but a global baton (mutex + condvar) keeps
//! exactly one task running at any instant. A task keeps the baton until
//! it reaches a *scheduling point* — spawning a task, sending on a
//! channel, blocking in `recv`/`recv_timeout`, sleeping, yielding, or
//! exiting — where the scheduler picks the next runnable task. With more
//! than one choice, the pick comes from the schedule's seeded RNG (or
//! its recorded step list on replay), so one `u64` seed fully determines
//! the interleaving and any run replays bit-for-bit.
//!
//! # Virtual time
//!
//! The executor owns a virtual clock in the same millisecond domain as
//! [`crate::VirtualClock`] (it drives a shared clock instance that
//! in-sim code can observe via [`clock`]). Nothing in a simulation
//! touches the wall clock: when no task is runnable, time jumps to the
//! earliest pending deadline (a sleep or a `recv_timeout`) — the
//! discrete-event step every deterministic simulator takes. On top of
//! that, a schedule may enable *preemptive* advances: at a scheduling
//! point with runnable tasks and a pending deadline, the scheduler can
//! choose to advance time anyway, modeling an OS that delays a runnable
//! thread past a watchdog deadline. That choice — recorded as the
//! [`ADVANCE`] step — is what makes watchdog/writer races schedulable
//! from a seed instead of reachable only on a pathological host.
//!
//! # Failure capture
//!
//! A panic escaping any task (an invariant assertion in a workload, a
//! deadlock abort, a step-budget abort) is caught at the task boundary
//! and surfaced as the run's [`SimOutcome::violation`]; the run always
//! completes and joins every carrier thread.

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use crate::clock::VirtualClock;

use super::schedule::Schedule;

/// The recorded scheduling step meaning "advance virtual time to the
/// earliest pending deadline" instead of running a task. Any other step
/// value is an index into the runnable-task list (sorted by task id), so
/// `0` — the shrinker's default — means "run the oldest runnable task".
pub const ADVANCE: u32 = u32::MAX;

const NO_TASK: usize = usize::MAX;

/// What one simulated run did: the recorded schedule trace, how far
/// virtual time got, and the first failure (if any).
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Every recorded scheduling decision, in order: replaying these as
    /// [`Schedule::steps`] reproduces the run exactly.
    pub trace: Vec<u32>,
    /// Total scheduling decisions taken (recorded ones only).
    pub decisions: u64,
    /// Virtual time when the run completed, milliseconds.
    pub end_ms: i64,
    /// The first panic that escaped a task (workload invariant failure,
    /// deadlock, or step-budget abort); `None` for a clean run.
    pub violation: Option<String>,
}

impl SimOutcome {
    /// True when the run surfaced a violation.
    pub fn failed(&self) -> bool {
        self.violation.is_some()
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Status {
    Runnable,
    Running,
    Blocked { deadline_ms: Option<i64> },
    Finished,
}

struct Task {
    status: Status,
    /// Tasks blocked in `join` on this task, woken when it finishes.
    joiners: Vec<usize>,
}

struct State {
    tasks: Vec<Task>,
    running: usize,
    now_ms: i64,
    rng: u64,
    preempt_permille: u32,
    replay: Option<VecDeque<u32>>,
    trace: Vec<u32>,
    decisions: u64,
    step_limit: u64,
    live: usize,
    /// A scheduler-level failure (deadlock, step budget): once set, the
    /// scheduler stops recording and drains every task via panic.
    abort: Option<String>,
    /// The first panic that escaped a task body.
    panic: Option<String>,
    clock: VirtualClock,
    carriers: Vec<thread::JoinHandle<()>>,
}

pub(super) struct Sched {
    state: Mutex<State>,
    cv: Condvar,
}

thread_local! {
    static CONTEXT: RefCell<Option<(Arc<Sched>, usize)>> = const { RefCell::new(None) };
}

fn context() -> Option<(Arc<Sched>, usize)> {
    CONTEXT.with(|c| c.borrow().clone())
}

/// True when the calling thread is a task inside a running simulation.
pub fn in_sim() -> bool {
    context().is_some()
}

/// The running simulation's virtual clock (shares the executor's time),
/// or `None` outside a simulation.
pub fn clock() -> Option<VirtualClock> {
    context().map(|(sched, _)| sched.lock().clock.clone())
}

/// A monotone microsecond reading: virtual time inside a simulation,
/// a process-local `Instant` outside. Only differences are meaningful.
pub fn monotonic_us() -> u64 {
    match context() {
        Some((sched, _)) => u64::try_from(sched.lock().now_ms.max(0)).unwrap_or(0) * 1_000,
        None => {
            static EPOCH: OnceLock<Instant> = OnceLock::new();
            u64::try_from(EPOCH.get_or_init(Instant::now).elapsed().as_micros()).unwrap_or(u64::MAX)
        }
    }
}

/// Sleeps: virtual time inside a simulation (a scheduling point), real
/// time outside.
pub fn sleep_ms(ms: u64) {
    match context() {
        Some((sched, me)) => sched.sleep(me, ms),
        None => thread::sleep(Duration::from_millis(ms)),
    }
}

/// A scheduling point inside a simulation; a no-op outside (matching the
/// threaded runtime, which has no explicit yields today).
pub fn yield_now() {
    if let Some((sched, me)) = context() {
        sched.reschedule(me, Status::Runnable);
    }
}

fn panic_message(payload: Box<dyn Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_owned())
}

impl Sched {
    fn new(schedule: &Schedule) -> Sched {
        // Xorshift state must be non-zero; fold seed 0 onto a fixed
        // odd constant so every seed is usable.
        let rng = if schedule.seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            schedule.seed
        };
        Sched {
            state: Mutex::new(State {
                tasks: Vec::new(),
                running: NO_TASK,
                now_ms: 0,
                rng,
                preempt_permille: schedule.preempt_permille,
                replay: schedule.steps.clone().map(VecDeque::from),
                trace: Vec::new(),
                decisions: 0,
                step_limit: schedule.step_limit,
                live: 0,
                abort: None,
                panic: None,
                clock: VirtualClock::new(),
                carriers: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn draw(g: &mut State) -> u64 {
        let mut x = g.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        g.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Jumps virtual time to `deadline` and wakes every task whose
    /// deadline has arrived.
    fn advance_to(g: &mut State, deadline: i64) {
        if deadline > g.now_ms {
            g.now_ms = deadline;
            g.clock.set_ms(deadline);
        }
        for task in &mut g.tasks {
            if let Status::Blocked {
                deadline_ms: Some(d),
            } = task.status
            {
                if d <= g.now_ms {
                    task.status = Status::Runnable;
                }
            }
        }
    }

    /// The scheduler core: picks the next task to run (or advances
    /// virtual time) and hands it the baton. Called with the previous
    /// holder already moved out of `Running`.
    fn pick(&self, g: &mut State) {
        loop {
            if g.live == 0 {
                g.running = NO_TASK;
                return;
            }
            let runnable: Vec<usize> = g
                .tasks
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status == Status::Runnable)
                .map(|(i, _)| i)
                .collect();
            let timer = g
                .tasks
                .iter()
                .filter_map(|t| match t.status {
                    Status::Blocked {
                        deadline_ms: Some(d),
                    } => Some(d),
                    _ => None,
                })
                .min();
            if runnable.is_empty() {
                match timer {
                    // Nothing runnable: the forced discrete-event time
                    // jump. Not a choice, so never recorded.
                    Some(d) => {
                        Self::advance_to(g, d);
                        continue;
                    }
                    None => {
                        // No runnable task, no pending deadline, tasks
                        // still live: a real deadlock. Abort the run and
                        // wake everything so each task unwinds.
                        if g.abort.is_none() {
                            g.abort = Some(format!(
                                "sim deadlock: {} live tasks, none runnable, no pending \
                                 deadline at t={}ms",
                                g.live, g.now_ms
                            ));
                        }
                        for task in &mut g.tasks {
                            if matches!(task.status, Status::Blocked { .. }) {
                                task.status = Status::Runnable;
                            }
                        }
                        continue;
                    }
                }
            }
            if g.abort.is_some() {
                // Draining after an abort: deterministic but unrecorded.
                g.tasks[runnable[0]].status = Status::Running;
                g.running = runnable[0];
                return;
            }
            let can_advance = timer.is_some() && g.preempt_permille > 0;
            let recorded = runnable.len() > 1 || can_advance;
            let choice: u32 = if !recorded {
                0
            } else {
                g.decisions += 1;
                if g.decisions > g.step_limit {
                    g.abort = Some(format!(
                        "sim step budget exceeded: {} scheduling decisions",
                        g.step_limit
                    ));
                    continue;
                }
                let raw = match g.replay {
                    // A replay past its recorded steps falls back to the
                    // shrinker's default: run the oldest runnable task.
                    Some(ref mut steps) => steps.pop_front().unwrap_or(0),
                    None => {
                        if can_advance && Self::draw(g) % 1_000 < u64::from(g.preempt_permille) {
                            ADVANCE
                        } else {
                            u32::try_from(Self::draw(g) % runnable.len() as u64)
                                .expect("runnable count fits u32")
                        }
                    }
                };
                // Normalize edited replay steps onto the current run so
                // shrunk schedules always stay executable.
                let step = if raw == ADVANCE {
                    if timer.is_some() {
                        ADVANCE
                    } else {
                        0
                    }
                } else if (raw as usize) < runnable.len() {
                    raw
                } else {
                    0
                };
                g.trace.push(step);
                step
            };
            if choice == ADVANCE {
                let d = timer.expect("ADVANCE is only offered with a pending deadline");
                Self::advance_to(g, d);
                continue;
            }
            let id = runnable[choice as usize];
            g.tasks[id].status = Status::Running;
            g.running = id;
            return;
        }
    }

    /// Moves task `w` out of `Blocked` (a message arrived, a sender hung
    /// up, a joined task finished). The waker keeps the baton.
    fn wake(&self, w: usize) {
        let mut g = self.lock();
        if matches!(g.tasks[w].status, Status::Blocked { .. }) {
            g.tasks[w].status = Status::Runnable;
        }
    }

    /// Gives up the baton with the caller in `status`, and returns once
    /// the scheduler hands it back. Panics the task when the run has
    /// aborted, so every task unwinds and the run can complete.
    fn reschedule(&self, me: usize, status: Status) {
        let mut g = self.lock();
        debug_assert_eq!(g.running, me, "only the baton holder can reschedule");
        g.tasks[me].status = status;
        g.running = NO_TASK;
        self.pick(&mut g);
        self.cv.notify_all();
        while !(g.running == me && g.tasks[me].status == Status::Running) {
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
        let abort = g.abort.clone();
        drop(g);
        if let Some(msg) = abort {
            // A task already unwinding (running Drop code that blocks,
            // like joining its workers) must not panic again — a double
            // panic would abort the process instead of ending the run.
            if !thread::panicking() {
                panic!("{msg}");
            }
        }
    }

    /// First baton acquisition of a freshly spawned task.
    fn acquire(&self, me: usize) {
        let mut g = self.lock();
        while !(g.running == me && g.tasks[me].status == Status::Running) {
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Task exit: wake joiners, hand the baton on, never returns the
    /// baton to `me`.
    fn finish(&self, me: usize, panicked: Option<String>) {
        let mut g = self.lock();
        if let Some(msg) = panicked {
            if g.panic.is_none() && g.abort.is_none() {
                g.panic = Some(msg);
            }
        }
        let joiners = std::mem::take(&mut g.tasks[me].joiners);
        for j in joiners {
            if matches!(g.tasks[j].status, Status::Blocked { .. }) {
                g.tasks[j].status = Status::Runnable;
            }
        }
        g.tasks[me].status = Status::Finished;
        g.live -= 1;
        g.running = NO_TASK;
        self.pick(&mut g);
        self.cv.notify_all();
    }

    fn spawn_task(self: &Arc<Self>, name: &str, f: Box<dyn FnOnce() + Send>) -> usize {
        let id = {
            let mut g = self.lock();
            g.tasks.push(Task {
                status: Status::Runnable,
                joiners: Vec::new(),
            });
            g.live += 1;
            g.tasks.len() - 1
        };
        let sched = Arc::clone(self);
        let carrier = thread::Builder::new()
            .name(format!("sim-{name}"))
            .spawn(move || {
                CONTEXT.with(|c| *c.borrow_mut() = Some((Arc::clone(&sched), id)));
                sched.acquire(id);
                let result = catch_unwind(AssertUnwindSafe(f));
                sched.finish(id, result.err().map(panic_message));
            })
            .expect("spawn sim carrier thread");
        self.lock().carriers.push(carrier);
        // Spawning is a scheduling point: the child may run before the
        // parent's next instruction, exactly like a real spawn.
        let me = context().expect("spawn_task runs inside a task").1;
        self.reschedule(me, Status::Runnable);
        id
    }

    fn join_task(&self, target: usize) {
        let me = context().expect("sim join runs inside a task").1;
        let pending = {
            let mut g = self.lock();
            if g.tasks[target].status == Status::Finished {
                false
            } else {
                g.tasks[target].joiners.push(me);
                true
            }
        };
        if pending {
            self.reschedule(me, Status::Blocked { deadline_ms: None });
        }
    }

    fn now_ms(&self) -> i64 {
        self.lock().now_ms
    }

    fn sleep(&self, me: usize, ms: u64) {
        let deadline = self
            .now_ms()
            .saturating_add(i64::try_from(ms).unwrap_or(i64::MAX));
        while self.now_ms() < deadline {
            self.reschedule(
                me,
                Status::Blocked {
                    deadline_ms: Some(deadline),
                },
            );
        }
    }
}

// ---- channels ---------------------------------------------------------------

struct ChanInner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
    /// The (single) task blocked waiting on this channel, if any.
    waiting: Option<usize>,
}

struct SimSender<T> {
    chan: Arc<Mutex<ChanInner<T>>>,
    sched: Arc<Sched>,
}

struct SimReceiver<T> {
    chan: Arc<Mutex<ChanInner<T>>>,
    sched: Arc<Sched>,
}

fn chan_lock<T>(chan: &Mutex<ChanInner<T>>) -> MutexGuard<'_, ChanInner<T>> {
    chan.lock().unwrap_or_else(PoisonError::into_inner)
}

impl<T> SimSender<T> {
    fn send(&self, value: T) -> Result<(), mpsc::SendError<T>> {
        let me = context().expect("sim channels are used inside sim tasks").1;
        {
            let mut c = chan_lock(&self.chan);
            if !c.receiver_alive {
                return Err(mpsc::SendError(value));
            }
            c.queue.push_back(value);
            if let Some(w) = c.waiting.take() {
                self.sched.wake(w);
            }
        }
        // Delivery is a scheduling point: the receiver may observe the
        // message before the sender's next instruction — or arbitrarily
        // later, including after its own timeout.
        self.sched.reschedule(me, Status::Runnable);
        Ok(())
    }
}

impl<T> Clone for SimSender<T> {
    fn clone(&self) -> SimSender<T> {
        chan_lock(&self.chan).senders += 1;
        SimSender {
            chan: Arc::clone(&self.chan),
            sched: Arc::clone(&self.sched),
        }
    }
}

impl<T> Drop for SimSender<T> {
    fn drop(&mut self) {
        let mut c = chan_lock(&self.chan);
        c.senders -= 1;
        if c.senders == 0 {
            if let Some(w) = c.waiting.take() {
                self.sched.wake(w);
            }
        }
    }
}

impl<T> SimReceiver<T> {
    fn recv(&self) -> Result<T, mpsc::RecvError> {
        let me = context().expect("sim channels are used inside sim tasks").1;
        loop {
            {
                let mut c = chan_lock(&self.chan);
                if let Some(v) = c.queue.pop_front() {
                    return Ok(v);
                }
                if c.senders == 0 {
                    return Err(mpsc::RecvError);
                }
                c.waiting = Some(me);
            }
            self.sched
                .reschedule(me, Status::Blocked { deadline_ms: None });
        }
    }

    fn recv_timeout_ms(&self, ms: u64) -> Result<T, mpsc::RecvTimeoutError> {
        let me = context().expect("sim channels are used inside sim tasks").1;
        let deadline = self
            .sched
            .now_ms()
            .saturating_add(i64::try_from(ms).unwrap_or(i64::MAX));
        loop {
            {
                let mut c = chan_lock(&self.chan);
                if let Some(v) = c.queue.pop_front() {
                    return Ok(v);
                }
                if c.senders == 0 {
                    return Err(mpsc::RecvTimeoutError::Disconnected);
                }
            }
            if self.sched.now_ms() >= deadline {
                let mut c = chan_lock(&self.chan);
                if c.waiting == Some(me) {
                    c.waiting = None;
                }
                return Err(mpsc::RecvTimeoutError::Timeout);
            }
            chan_lock(&self.chan).waiting = Some(me);
            self.sched.reschedule(
                me,
                Status::Blocked {
                    deadline_ms: Some(deadline),
                },
            );
        }
    }
}

impl<T> Drop for SimReceiver<T> {
    fn drop(&mut self) {
        chan_lock(&self.chan).receiver_alive = false;
    }
}

// ---- the executor-agnostic facade -------------------------------------------

enum SenderImpl<T> {
    Thread(mpsc::Sender<T>),
    Sim(SimSender<T>),
}

/// The sending half of an executor-agnostic channel: real `mpsc` on OS
/// threads, a scheduler-visible queue inside a simulation.
pub struct Sender<T>(SenderImpl<T>);

impl<T> Sender<T> {
    /// Sends a value; `Err` returns it when the receiver hung up.
    /// Never blocks (both halves are unbounded); inside a simulation,
    /// delivery is a scheduling point.
    pub fn send(&self, value: T) -> Result<(), mpsc::SendError<T>> {
        match &self.0 {
            SenderImpl::Thread(tx) => tx.send(value),
            SenderImpl::Sim(tx) => tx.send(value),
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        Sender(match &self.0 {
            SenderImpl::Thread(tx) => SenderImpl::Thread(tx.clone()),
            SenderImpl::Sim(tx) => SenderImpl::Sim(tx.clone()),
        })
    }
}

enum ReceiverImpl<T> {
    Thread(mpsc::Receiver<T>),
    Sim(SimReceiver<T>),
}

/// The receiving half of an executor-agnostic channel.
pub struct Receiver<T>(ReceiverImpl<T>);

impl<T> Receiver<T> {
    /// Blocks until a value arrives or every sender hung up.
    pub fn recv(&self) -> Result<T, mpsc::RecvError> {
        match &self.0 {
            ReceiverImpl::Thread(rx) => rx.recv(),
            ReceiverImpl::Sim(rx) => rx.recv(),
        }
    }

    /// Blocks until a value arrives, every sender hung up, or `ms`
    /// elapse — real milliseconds on OS threads, *virtual* milliseconds
    /// inside a simulation (the watchdog backstop that never touches the
    /// wall clock in sim).
    pub fn recv_timeout_ms(&self, ms: u64) -> Result<T, mpsc::RecvTimeoutError> {
        match &self.0 {
            ReceiverImpl::Thread(rx) => rx.recv_timeout(Duration::from_millis(ms)),
            ReceiverImpl::Sim(rx) => rx.recv_timeout_ms(ms),
        }
    }
}

/// An executor-agnostic unbounded channel: `std::sync::mpsc` on OS
/// threads, a deterministic scheduler-visible queue when the calling
/// task runs inside a [`SimExecutor`].
pub fn channel<T: Send>() -> (Sender<T>, Receiver<T>) {
    match context() {
        None => {
            let (tx, rx) = mpsc::channel();
            (
                Sender(SenderImpl::Thread(tx)),
                Receiver(ReceiverImpl::Thread(rx)),
            )
        }
        Some((sched, _)) => {
            let chan = Arc::new(Mutex::new(ChanInner {
                queue: VecDeque::new(),
                senders: 1,
                receiver_alive: true,
                waiting: None,
            }));
            (
                Sender(SenderImpl::Sim(SimSender {
                    chan: Arc::clone(&chan),
                    sched: Arc::clone(&sched),
                })),
                Receiver(ReceiverImpl::Sim(SimReceiver { chan, sched })),
            )
        }
    }
}

enum JoinImpl {
    Thread(thread::JoinHandle<()>),
    Sim { sched: Arc<Sched>, id: usize },
}

/// An executor-agnostic join handle for a spawned worker.
pub struct JoinHandle(JoinImpl);

impl JoinHandle {
    /// Waits for the task to finish. A panic inside the task is already
    /// reported through its own boundary, so join itself never fails.
    pub fn join(self) {
        match self.0 {
            JoinImpl::Thread(h) => {
                let _ = h.join();
            }
            JoinImpl::Sim { sched, id } => sched.join_task(id),
        }
    }
}

/// Spawns a worker: an OS thread outside a simulation, a cooperatively
/// scheduled task inside one (spawning is then a scheduling point).
pub fn spawn(name: &str, f: impl FnOnce() + Send + 'static) -> JoinHandle {
    match context() {
        None => {
            let h = thread::Builder::new()
                .name(name.to_owned())
                .spawn(f)
                .expect("spawn worker thread");
            JoinHandle(JoinImpl::Thread(h))
        }
        Some((sched, _)) => {
            let id = sched.spawn_task(name, Box::new(f));
            JoinHandle(JoinImpl::Sim { sched, id })
        }
    }
}

// ---- the executor -----------------------------------------------------------

/// Runs a root closure (and everything it spawns through this module's
/// facade) as a deterministic simulation.
pub struct SimExecutor;

impl SimExecutor {
    /// Runs `root` to completion under `schedule`, returning the
    /// recorded trace and the first violation (a panic escaping any
    /// task), if any. Every carrier thread is joined before returning.
    pub fn run(schedule: &Schedule, root: impl FnOnce() + Send + 'static) -> SimOutcome {
        let sched = Arc::new(Sched::new(schedule));
        {
            let mut g = sched.lock();
            g.tasks.push(Task {
                status: Status::Running,
                joiners: Vec::new(),
            });
            g.live = 1;
            g.running = 0;
        }
        let root_sched = Arc::clone(&sched);
        let boxed: Box<dyn FnOnce() + Send> = Box::new(root);
        let root_carrier = thread::Builder::new()
            .name("sim-root".to_owned())
            .spawn(move || {
                CONTEXT.with(|c| *c.borrow_mut() = Some((Arc::clone(&root_sched), 0)));
                let result = catch_unwind(AssertUnwindSafe(boxed));
                root_sched.finish(0, result.err().map(panic_message));
            })
            .expect("spawn sim root carrier");
        {
            let mut g = sched.lock();
            while g.live > 0 {
                g = sched.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
            }
        }
        let _ = root_carrier.join();
        let carriers = std::mem::take(&mut sched.lock().carriers);
        for c in carriers {
            let _ = c.join();
        }
        let g = sched.lock();
        SimOutcome {
            trace: g.trace.clone(),
            decisions: g.decisions,
            end_ms: g.now_ms,
            violation: g.abort.clone().or_else(|| g.panic.clone()),
        }
    }
}
