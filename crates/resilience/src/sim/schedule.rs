//! Replayable schedules: the artifact a failing simulation leaves
//! behind, plus the seed explorer and the delta-debugging shrinker.
//!
//! A [`Schedule`] is everything that determines one simulated run:
//!
//! * `seed` — drives the scheduler RNG (and, by convention, the
//!   workload's own deterministic choices and fault lattice);
//! * `preempt_permille` — how often the scheduler, at a decision point
//!   with a pending deadline, advances virtual time instead of running
//!   a task (the knob that makes watchdog races reachable);
//! * `steps` — when present, the recorded decision list replays
//!   *verbatim* and the RNG is never consulted: this is what a shrunk
//!   failing schedule pins down. A replay that runs out of steps (or
//!   meets an edited, out-of-range step) falls back to the default
//!   choice — run the oldest runnable task — which is exactly the
//!   direction the shrinker minimizes toward;
//! * `fault_mask` — per-round switches for the workload's fault
//!   lattice, so the shrinker can turn individual fault injections off.
//!
//! The JSON form is the regression artifact checked into
//! `tests/schedules/`: small, diffable, and stable (the seed is encoded
//! as a string so 64-bit values survive any JSON reader).

use serde::{parse_json, write_json, Map, Number, Value};

use super::exec::{SimOutcome, ADVANCE};

const FORMAT_VERSION: u64 = 1;

/// The default scheduling-decision budget per run: generous for any real
/// workload, small enough to turn an accidental livelock into a prompt
/// abort instead of a hung test.
pub const DEFAULT_STEP_LIMIT: u64 = 2_000_000;

/// One fully-determined simulated run: seed, preemption rate, optional
/// pinned decision steps, optional fault-round mask.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Scheduler RNG seed (also, by convention, the workload seed).
    pub seed: u64,
    /// Per-mille probability that a decision point with a pending
    /// deadline advances virtual time instead of running a task.
    pub preempt_permille: u32,
    /// Scheduling-decision budget before the run aborts.
    pub step_limit: u64,
    /// Pinned decisions (indices into the sorted runnable list, or
    /// [`ADVANCE`]); `None` means draw from the seeded RNG.
    pub steps: Option<Vec<u32>>,
    /// Per-round fault switches; `None` (and rounds past the end of the
    /// mask) mean enabled.
    pub fault_mask: Option<Vec<bool>>,
    /// Free-form provenance ("explored", "shrunk from seed 17", …).
    pub note: String,
}

impl Schedule {
    /// A seeded schedule with no pinned steps and every fault enabled.
    pub fn seeded(seed: u64, preempt_permille: u32) -> Schedule {
        Schedule {
            seed,
            preempt_permille,
            step_limit: DEFAULT_STEP_LIMIT,
            steps: None,
            fault_mask: None,
            note: String::new(),
        }
    }

    /// Whether the workload's fault lattice is enabled for `round`.
    pub fn fault_enabled(&self, round: usize) -> bool {
        self.fault_mask
            .as_ref()
            .is_none_or(|m| m.get(round).copied().unwrap_or(true))
    }

    /// Pinned steps that differ from the replay default (non-zero),
    /// i.e. the preemptions a shrunk schedule actually needs.
    pub fn preemptions(&self) -> usize {
        self.steps
            .as_ref()
            .map_or(0, |s| s.iter().filter(|&&v| v != 0).count())
    }

    /// Serializes to the JSON artifact format.
    pub fn to_json(&self) -> String {
        let mut obj = Map::new();
        obj.insert(
            "version".to_owned(),
            Value::Number(Number::U(FORMAT_VERSION)),
        );
        // As a string: 64-bit seeds survive readers that parse all JSON
        // numbers as f64.
        obj.insert("seed".to_owned(), Value::String(self.seed.to_string()));
        obj.insert(
            "preempt_permille".to_owned(),
            Value::Number(Number::U(u64::from(self.preempt_permille))),
        );
        obj.insert(
            "step_limit".to_owned(),
            Value::Number(Number::U(self.step_limit)),
        );
        if let Some(steps) = &self.steps {
            obj.insert(
                "steps".to_owned(),
                Value::Array(
                    steps
                        .iter()
                        .map(|&s| {
                            if s == ADVANCE {
                                // Readable alias for the time-advance step.
                                Value::String("advance".to_owned())
                            } else {
                                Value::Number(Number::U(u64::from(s)))
                            }
                        })
                        .collect(),
                ),
            );
        }
        if let Some(mask) = &self.fault_mask {
            obj.insert(
                "fault_mask".to_owned(),
                Value::Array(mask.iter().map(|&b| Value::Bool(b)).collect()),
            );
        }
        if !self.note.is_empty() {
            obj.insert("note".to_owned(), Value::String(self.note.clone()));
        }
        let mut out = String::new();
        write_json(&Value::Object(obj), &mut out);
        out
    }

    /// Parses the JSON artifact format.
    ///
    /// # Errors
    ///
    /// A human-readable message when the text is not valid JSON or is
    /// missing/mistyping a required field.
    pub fn from_json(text: &str) -> Result<Schedule, String> {
        let value = parse_json(text).map_err(|e| format!("schedule artifact: {e}"))?;
        let uint = |v: &Value, what: &str| -> Result<u64, String> {
            match v {
                Value::Number(Number::U(u)) => Ok(*u),
                Value::Number(Number::I(i)) if *i >= 0 => Ok(*i as u64),
                _ => Err(format!(
                    "schedule artifact: {what} must be an unsigned integer"
                )),
            }
        };
        let seed = match value.get("seed") {
            Some(Value::String(s)) => s
                .parse::<u64>()
                .map_err(|_| format!("schedule artifact: seed {s:?} is not a u64"))?,
            Some(v) => uint(v, "seed")?,
            None => return Err("schedule artifact: missing seed".to_owned()),
        };
        let preempt_permille = match value.get("preempt_permille") {
            Some(v) => u32::try_from(uint(v, "preempt_permille")?)
                .map_err(|_| "schedule artifact: preempt_permille out of range".to_owned())?,
            None => 0,
        };
        let step_limit = match value.get("step_limit") {
            Some(v) => uint(v, "step_limit")?,
            None => DEFAULT_STEP_LIMIT,
        };
        let steps = match value.get("steps") {
            None | Some(Value::Null) => None,
            Some(Value::Array(items)) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    match item {
                        Value::String(s) if s == "advance" => out.push(ADVANCE),
                        v => out.push(
                            u32::try_from(uint(v, "steps entry")?)
                                .map_err(|_| "schedule artifact: step out of range".to_owned())?,
                        ),
                    }
                }
                Some(out)
            }
            Some(_) => return Err("schedule artifact: steps must be an array".to_owned()),
        };
        let fault_mask = match value.get("fault_mask") {
            None | Some(Value::Null) => None,
            Some(Value::Array(items)) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    match item {
                        Value::Bool(b) => out.push(*b),
                        _ => {
                            return Err(
                                "schedule artifact: fault_mask must hold booleans".to_owned()
                            )
                        }
                    }
                }
                Some(out)
            }
            Some(_) => return Err("schedule artifact: fault_mask must be an array".to_owned()),
        };
        let note = match value.get("note") {
            Some(Value::String(s)) => s.clone(),
            _ => String::new(),
        };
        Ok(Schedule {
            seed,
            preempt_permille,
            step_limit,
            steps,
            fault_mask,
            note,
        })
    }
}

/// The first failing schedule an exploration found, with its outcome.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// The seeded schedule that failed.
    pub schedule: Schedule,
    /// Its outcome (the trace is the raw material for shrinking).
    pub outcome: SimOutcome,
    /// Seeds run before (and including) the failing one.
    pub seeds_tried: u64,
}

/// Runs `run` over `seeds` until one fails. `Ok(n)` when all `n` seeds
/// passed; `Err` carries the first failure.
pub fn explore<F>(
    seeds: impl IntoIterator<Item = u64>,
    preempt_permille: u32,
    mut run: F,
) -> Result<u64, Box<Exploration>>
where
    F: FnMut(&Schedule) -> SimOutcome,
{
    let mut tried = 0u64;
    for seed in seeds {
        tried += 1;
        let schedule = Schedule::seeded(seed, preempt_permille);
        let outcome = run(&schedule);
        if outcome.failed() {
            return Err(Box::new(Exploration {
                schedule,
                outcome,
                seeds_tried: tried,
            }));
        }
    }
    Ok(tried)
}

/// What the shrinker did to a failing schedule.
#[derive(Debug, Clone)]
pub struct ShrinkReport {
    /// The minimized, still-failing schedule (pinned steps + fault
    /// mask): the artifact to check into the regression corpus.
    pub schedule: Schedule,
    /// The violation the minimized schedule reproduces.
    pub violation: String,
    /// Candidate runs the shrinker executed.
    pub iterations: u64,
    /// Pinned steps before/after minimization.
    pub initial_steps: usize,
    /// Length of the minimized step list.
    pub final_steps: usize,
    /// Non-default decisions before/after (the preemption points the
    /// failure actually needs).
    pub initial_preemptions: usize,
    /// Non-default decisions the minimized schedule retains.
    pub final_preemptions: usize,
    /// Fault rounds the shrinker proved irrelevant and disabled.
    pub fault_rounds_disabled: usize,
    /// False when pinning the recorded trace did not reproduce the
    /// violation (the schedule is returned unshrunk).
    pub reproduced: bool,
}

/// Delta-debugging shrink: pins the failing run's recorded trace as
/// explicit steps, then (a) disables fault rounds one at a time,
/// (b) truncates the step tail, and (c) zeroes step chunks toward the
/// replay default, keeping each edit only if the violation persists.
/// `fault_rounds` is the workload's total fault-round count.
pub fn shrink<F>(
    failing: &Schedule,
    outcome: &SimOutcome,
    fault_rounds: usize,
    mut run: F,
) -> ShrinkReport
where
    F: FnMut(&Schedule) -> SimOutcome,
{
    let mut iterations = 0u64;
    let mut best = failing.clone();
    best.steps = Some(outcome.trace.clone());
    best.fault_mask = Some(match &failing.fault_mask {
        Some(m) => {
            let mut m = m.clone();
            m.resize(fault_rounds.max(m.len()), true);
            m
        }
        None => vec![true; fault_rounds],
    });
    let initial_steps = outcome.trace.len();
    let initial_preemptions = best.preemptions();

    let mut check = |candidate: &Schedule, iterations: &mut u64| -> Option<String> {
        *iterations += 1;
        run(candidate).violation
    };

    // The pinned trace must reproduce on its own before edits mean
    // anything.
    let Some(mut violation) = check(&best, &mut iterations) else {
        return ShrinkReport {
            schedule: failing.clone(),
            violation: outcome.violation.clone().unwrap_or_default(),
            iterations,
            initial_steps,
            final_steps: initial_steps,
            initial_preemptions,
            final_preemptions: initial_preemptions,
            fault_rounds_disabled: 0,
            reproduced: false,
        };
    };

    // (a) Disable fault rounds one at a time.
    for round in 0..best.fault_mask.as_ref().map_or(0, Vec::len) {
        let mask = best.fault_mask.as_ref().expect("mask installed above");
        if !mask[round] {
            continue;
        }
        let mut candidate = best.clone();
        candidate.fault_mask.as_mut().expect("mask")[round] = false;
        if let Some(v) = check(&candidate, &mut iterations) {
            best = candidate;
            violation = v;
        }
    }

    // (b) Truncate the step tail by halving (replay past the end falls
    // back to the default step, so truncation only removes constraints).
    loop {
        let len = best.steps.as_ref().expect("steps pinned").len();
        if len == 0 {
            break;
        }
        let mut candidate = best.clone();
        candidate.steps.as_mut().expect("steps").truncate(len / 2);
        match check(&candidate, &mut iterations) {
            Some(v) => {
                best = candidate;
                violation = v;
            }
            None => break,
        }
    }

    // (c) Zero step chunks toward the default, halving the chunk size.
    let mut chunk = best.steps.as_ref().expect("steps").len().div_ceil(2);
    while chunk >= 1 {
        let len = best.steps.as_ref().expect("steps").len();
        let mut start = 0;
        while start < len {
            let end = (start + chunk).min(len);
            let already_default = best.steps.as_ref().expect("steps")[start..end]
                .iter()
                .all(|&s| s == 0);
            if !already_default {
                let mut candidate = best.clone();
                for s in &mut candidate.steps.as_mut().expect("steps")[start..end] {
                    *s = 0;
                }
                if let Some(v) = check(&candidate, &mut iterations) {
                    best = candidate;
                    violation = v;
                }
            }
            start = end;
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }

    // Trailing default steps are semantically absent (replay exhaustion
    // yields the same choice): trim them without re-running.
    if let Some(steps) = best.steps.as_mut() {
        while steps.last() == Some(&0) {
            steps.pop();
        }
    }

    let fault_rounds_disabled = best
        .fault_mask
        .as_ref()
        .map_or(0, |m| m.iter().filter(|&&b| !b).count());
    ShrinkReport {
        final_steps: best.steps.as_ref().map_or(0, Vec::len),
        final_preemptions: best.preemptions(),
        schedule: best,
        violation,
        iterations,
        initial_steps,
        initial_preemptions,
        fault_rounds_disabled,
        reproduced: true,
    }
}
