//! FoundationDB-style deterministic simulation for the sharded runtime.
//!
//! The concurrency layer of the sharded BMS (worker threads, a watchdog
//! supervisor, WAL fencing) is exactly the code whose bugs hide in
//! interleavings the OS scheduler rarely produces — the PR 9
//! abandoned-writer WAL race was caught in review, not by the chaos
//! suites. This module makes every interleaving a first-class, seeded,
//! *replayable* input:
//!
//! * [`SimExecutor`] — runs a root closure and everything it spawns
//!   (through this module's [`spawn`]/[`channel`] facade) as
//!   cooperatively scheduled tasks; one [`Schedule`] determines every
//!   scheduling decision and virtual-time advance.
//! * [`Schedule`] — the replayable artifact (`to_json`/`from_json`),
//!   checked into `tests/schedules/` when a failure is found.
//! * [`explore`] — sweeps seeds; [`shrink`] — delta-debugs a failing
//!   schedule down to the preemptions and faults it actually needs.
//!
//! Outside a simulation the facade compiles down to real threads and
//! `std::sync::mpsc` — the production runtime is byte-identical to the
//! pre-facade code path.
//!
//! # Example
//!
//! ```
//! use tippers_resilience::sim::{self, Schedule, SimExecutor};
//!
//! let schedule = Schedule::seeded(42, 0);
//! let outcome = SimExecutor::run(&schedule, || {
//!     let (tx, rx) = sim::channel();
//!     let worker = sim::spawn("echo", move || {
//!         while let Ok(v) = rx.recv() {
//!             assert!(v != 13, "unlucky payload");
//!         }
//!     });
//!     tx.send(7u32).unwrap();
//!     drop(tx);
//!     worker.join();
//! });
//! assert!(outcome.violation.is_none());
//! assert!(!outcome.trace.is_empty(), "spawn/send decisions were recorded");
//!
//! // The same seed replays the identical interleaving.
//! let again = SimExecutor::run(&schedule, || {});
//! assert_eq!(again.end_ms, 0);
//! ```

mod exec;
mod schedule;

pub use exec::{
    channel, clock, in_sim, monotonic_us, sleep_ms, spawn, yield_now, JoinHandle, Receiver, Sender,
    SimExecutor, SimOutcome, ADVANCE,
};
pub use schedule::{explore, shrink, Exploration, Schedule, ShrinkReport, DEFAULT_STEP_LIMIT};

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    use super::*;

    fn ping_pong(seed: u64, preempt: u32) -> (Vec<u64>, SimOutcome) {
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        let record = Arc::clone(&order);
        let schedule = Schedule::seeded(seed, preempt);
        let outcome = SimExecutor::run(&schedule, move || {
            let (tx, rx) = channel::<u64>();
            let log = Arc::clone(&record);
            let worker = spawn("pong", move || {
                while let Ok(v) = rx.recv() {
                    log.lock().unwrap().push(v * 10);
                }
            });
            for i in 0..4 {
                record.lock().unwrap().push(i);
                tx.send(i).unwrap();
            }
            drop(tx);
            worker.join();
        });
        let got = order.lock().unwrap().clone();
        (got, outcome)
    }

    #[test]
    fn same_seed_same_interleaving_different_seed_may_differ() {
        let (a1, o1) = ping_pong(7, 0);
        let (a2, o2) = ping_pong(7, 0);
        assert_eq!(a1, a2, "one seed must fully determine the interleaving");
        assert_eq!(o1.trace, o2.trace);
        // Some seed in a small range interleaves differently; the test
        // is deterministic because every run is.
        let mut saw_different = false;
        for seed in 0..32 {
            let (b, _) = ping_pong(seed, 0);
            if b != a1 {
                saw_different = true;
                break;
            }
        }
        assert!(saw_different, "scheduler never explored a second order");
    }

    #[test]
    fn replaying_a_trace_reproduces_the_run() {
        let (want, outcome) = ping_pong(1234, 200);
        let mut pinned = Schedule::seeded(1234, 200);
        pinned.steps = Some(outcome.trace.clone());
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        let record = Arc::clone(&order);
        let replay = SimExecutor::run(&pinned, move || {
            let (tx, rx) = channel::<u64>();
            let log = Arc::clone(&record);
            let worker = spawn("pong", move || {
                while let Ok(v) = rx.recv() {
                    log.lock().unwrap().push(v * 10);
                }
            });
            for i in 0..4 {
                record.lock().unwrap().push(i);
                tx.send(i).unwrap();
            }
            drop(tx);
            worker.join();
        });
        assert_eq!(*order.lock().unwrap(), want);
        assert_eq!(replay.trace, outcome.trace);
    }

    #[test]
    fn virtual_time_satisfies_timeouts_without_wall_clock() {
        let started = std::time::Instant::now();
        let schedule = Schedule::seeded(5, 0);
        let outcome = SimExecutor::run(&schedule, || {
            let (_tx, rx) = channel::<u8>();
            // An hour of virtual waiting must cost no wall time.
            let err = rx.recv_timeout_ms(3_600_000).unwrap_err();
            assert_eq!(err, std::sync::mpsc::RecvTimeoutError::Timeout);
            sleep_ms(3_600_000);
            assert!(monotonic_us() >= 7_200_000_000);
        });
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
        assert_eq!(outcome.end_ms, 7_200_000);
        assert!(
            started.elapsed().as_secs() < 60,
            "virtual time leaked into wall time"
        );
    }

    #[test]
    fn preemptive_advance_can_defeat_a_racing_reply() {
        // worker: recv job, reply. root: send, recv_timeout. With
        // preemption the scheduler can advance past the deadline while
        // the reply is still unsent; without, the reply always wins.
        let run = |preempt: u32, seed: u64| -> bool {
            let timed_out = Arc::new(AtomicUsize::new(0));
            let saw = Arc::clone(&timed_out);
            let schedule = Schedule::seeded(seed, preempt);
            let outcome = SimExecutor::run(&schedule, move || {
                let (job_tx, job_rx) = channel::<u8>();
                let (reply_tx, reply_rx) = channel::<u8>();
                let worker = spawn("worker", move || {
                    while let Ok(v) = job_rx.recv() {
                        yield_now();
                        let _ = reply_tx.send(v + 1);
                    }
                });
                job_tx.send(1).unwrap();
                if reply_rx.recv_timeout_ms(50).is_err() {
                    saw.fetch_add(1, Ordering::SeqCst);
                }
                drop(job_tx);
                worker.join();
            });
            assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
            timed_out.load(Ordering::SeqCst) > 0
        };
        assert!(
            !(0..16).any(|seed| run(0, seed)),
            "without preemption the in-flight reply must always arrive"
        );
        assert!(
            (0..64).any(|seed| run(500, seed)),
            "preemptive advance never fired the watchdog"
        );
    }

    #[test]
    fn deadlock_aborts_the_run_instead_of_hanging() {
        let schedule = Schedule::seeded(3, 0);
        let outcome = SimExecutor::run(&schedule, || {
            let (tx, rx) = channel::<u8>();
            // Keep a sender alive so recv blocks forever.
            let _held = tx;
            let _ = rx.recv();
        });
        let msg = outcome.violation.expect("deadlock must be reported");
        assert!(msg.contains("deadlock"), "unexpected violation: {msg}");
    }

    #[test]
    fn task_panics_surface_as_violations_and_the_run_completes() {
        let schedule = Schedule::seeded(9, 0);
        let outcome = SimExecutor::run(&schedule, || {
            let worker = spawn("bomb", || panic!("invariant violated: boom"));
            worker.join();
        });
        let msg = outcome.violation.expect("panic must be captured");
        assert!(msg.contains("boom"));
    }

    #[test]
    fn schedule_json_roundtrips() {
        let mut s = Schedule::seeded(u64::MAX - 3, 150);
        s.steps = Some(vec![0, 2, ADVANCE, 1]);
        s.fault_mask = Some(vec![true, false, true]);
        s.note = "shrunk from seed 17".to_owned();
        let json = s.to_json();
        let back = Schedule::from_json(&json).expect("roundtrip parses");
        assert_eq!(back, s);
        assert!(json.contains("\"advance\""));
        assert!(Schedule::from_json("{}").is_err());
        assert!(Schedule::from_json("not json").is_err());
    }

    #[test]
    fn shrinker_minimizes_to_the_needed_preemptions() {
        // Workload: fails iff round-2 "fault" is enabled. The trace is
        // irrelevant, so the shrinker should zero every step and keep
        // exactly one fault round.
        let run = |schedule: &Schedule| -> SimOutcome {
            let enabled = schedule.fault_enabled(2);
            SimExecutor::run(schedule, move || {
                let (tx, rx) = channel::<u8>();
                let worker = spawn("w", move || while rx.recv().is_ok() {});
                for _ in 0..8 {
                    tx.send(0).unwrap();
                }
                drop(tx);
                worker.join();
                assert!(!enabled, "round 2 fault tripped the invariant");
            })
        };
        let failing = Schedule::seeded(11, 300);
        let outcome = run(&failing);
        assert!(outcome.failed());
        let report = shrink(&failing, &outcome, 4, run);
        assert!(report.reproduced);
        assert_eq!(report.final_preemptions, 0, "no preemption was needed");
        assert_eq!(report.fault_rounds_disabled, 3, "only round 2 matters");
        let mask = report.schedule.fault_mask.as_ref().unwrap();
        assert_eq!(mask, &vec![false, false, true, false]);
        assert!(report.schedule.steps.as_ref().unwrap().is_empty());
        // The shrunk schedule still fails, and is replayable from JSON.
        let replay = Schedule::from_json(&report.schedule.to_json()).unwrap();
        assert!(run(&replay).failed());
    }

    #[test]
    fn explore_reports_the_first_failing_seed() {
        let run = |schedule: &Schedule| -> SimOutcome {
            let seed = schedule.seed;
            SimExecutor::run(schedule, move || assert!(seed != 5, "seed 5 fails"))
        };
        assert_eq!(explore(0..3, 0, run).unwrap(), 3);
        let err = explore(0..10, 0, run).unwrap_err();
        assert_eq!(err.schedule.seed, 5);
        assert_eq!(err.seeds_tried, 6);
        assert!(err.outcome.failed());
    }
}
