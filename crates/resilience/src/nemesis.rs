//! A seeded jepsen-style nemesis: a deterministic schedule of partitions,
//! crashes, clock skew, frame loss and ack delay.
//!
//! The nemesis owns no cluster — it *decides* (from its seed) what
//! misfortune happens next, arms the shared [`FaultPlan`] accordingly,
//! advances the shared [`VirtualClock`], and reports the chosen
//! [`NemesisAction`] so the driving harness can apply the parts the
//! plan cannot express (crashing and restarting processes, electing a
//! new primary). Same seed ⇒ same misfortune schedule, every run.

use crate::clock::{VirtualClock, MILLIS_PER_SEC};
use crate::fault::{FaultPlan, FaultPoint};

/// One step of scheduled misfortune.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NemesisAction {
    /// Isolate `node` from every peer (frames, acks and heartbeats
    /// crossing the cut are dropped symmetrically).
    Partition {
        /// The isolated node.
        node: usize,
    },
    /// Heal the current partition, if any.
    HealPartition,
    /// Crash the current primary (volatile state lost, durable log
    /// kept); the harness should elect and promote a successor.
    CrashPrimary,
    /// Restart every crashed node from its durable log.
    RestartCrashed,
    /// Skew the reading node's clock by `secs` (staleness checks run on
    /// the skewed clock).
    SkewClock {
        /// Skew in seconds (may be negative).
        secs: i64,
    },
    /// Silently lose a bounded number of replication frames.
    DropFrames {
        /// How many frames the armed budget may drop.
        budget: u32,
    },
    /// Delay replication acknowledgements by `ms` virtual milliseconds.
    DelayAcks {
        /// Ack delay, virtual milliseconds.
        ms: i64,
    },
    /// Disarm everything and let the cluster breathe.
    Calm,
}

/// One step of capture-path misfortune (the ingest-storm extension):
/// misfortune aimed at the sensor firehose rather than the replication
/// plane. Scheduled by [`Nemesis::storm_step`] on its own deterministic
/// stream so interleaving it never perturbs [`Nemesis::step`] schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StormAction {
    /// Tear the next group-committed ingest batch after `frames` frames.
    TearBatch {
        /// Frames that survive the tear (the armed parameter).
        frames: i64,
    },
    /// Sensor links start refusing delivery for a bounded budget.
    DropSensorLink {
        /// How many deliveries the armed budget may refuse.
        budget: u32,
    },
    /// Stall the amortized group-commit fsync for a bounded budget.
    StallFsync {
        /// How many syncs the armed budget may stall.
        budget: u32,
    },
    /// Disarm every capture-path point and let the firehose drain.
    CalmCapture,
}

/// The deterministic misfortune scheduler.
#[derive(Debug)]
pub struct Nemesis {
    plan: FaultPlan,
    clock: VirtualClock,
    state: u64,
    /// Separate LCG stream for the ingest-storm leg, so storm steps can be
    /// interleaved with replication steps without changing either schedule.
    storm_state: u64,
    nodes: usize,
}

impl Nemesis {
    /// A nemesis over `nodes` replication peers, arming `plan` and
    /// advancing `clock` as it steps; the schedule derives entirely from
    /// `seed`.
    pub fn new(seed: u64, nodes: usize, plan: FaultPlan, clock: VirtualClock) -> Nemesis {
        Nemesis {
            plan,
            clock,
            // Avoid the all-zeros LCG fixpoint without losing seed identity.
            state: seed.wrapping_mul(2) | 1,
            storm_state: (seed.wrapping_mul(2) ^ 0x5701_B0B5) | 1,
            nodes: nodes.max(1),
        }
    }

    fn next_u64(&mut self) -> u64 {
        // Deterministic LCG (Knuth MMIX constants); independent from the
        // fault plan's RNG so arming order never perturbs the schedule.
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state
    }

    fn pick(&mut self, bound: u64) -> u64 {
        (self.next_u64() >> 11) % bound
    }

    fn storm_pick(&mut self, bound: u64) -> u64 {
        self.storm_state = self
            .storm_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.storm_state >> 11) % bound
    }

    /// Decides and arms the next misfortune, advancing virtual time past
    /// it. The harness applies the returned action's process-level parts.
    pub fn step(&mut self) -> NemesisAction {
        let action = match self.pick(8) {
            0 => {
                let node = self.pick(self.nodes as u64) as usize;
                self.plan
                    .arm_with_param(FaultPoint::Partition, 1.0, node as i64);
                NemesisAction::Partition { node }
            }
            1 => {
                self.plan.disarm(FaultPoint::Partition);
                NemesisAction::HealPartition
            }
            2 => NemesisAction::CrashPrimary,
            3 => NemesisAction::RestartCrashed,
            4 => {
                let secs = self.pick(30) as i64 - 15;
                self.plan.arm_with_param(FaultPoint::ClockSkew, 1.0, secs);
                NemesisAction::SkewClock { secs }
            }
            5 => {
                let budget = self.pick(4) as u32 + 1;
                self.plan
                    .arm_limited(FaultPoint::ReplFrameDrop, 0.5, budget);
                NemesisAction::DropFrames { budget }
            }
            6 => {
                let ms = (self.pick(8) as i64 + 1) * 250;
                self.plan.arm_with_param(FaultPoint::ReplAckDelay, 1.0, ms);
                NemesisAction::DelayAcks { ms }
            }
            _ => {
                for point in [
                    FaultPoint::Partition,
                    FaultPoint::ClockSkew,
                    FaultPoint::ReplFrameDrop,
                    FaultPoint::ReplFrameReorder,
                    FaultPoint::ReplAckDelay,
                ] {
                    self.plan.disarm(point);
                }
                NemesisAction::Calm
            }
        };
        // Occasionally shuffle frame order on top of whatever else holds.
        if self.pick(4) == 0 {
            let budget = self.pick(3) as u32 + 1;
            self.plan
                .arm_limited(FaultPoint::ReplFrameReorder, 0.5, budget);
        }
        let dwell_ms = (self.pick(4) as i64 + 1) * MILLIS_PER_SEC;
        self.clock.advance_ms(dwell_ms);
        action
    }

    /// Decides and arms the next capture-path misfortune (the ingest-storm
    /// extension). Runs on its own deterministic stream and does not
    /// advance the clock: the driving harness interleaves storm steps with
    /// its own ingest cadence.
    pub fn storm_step(&mut self) -> StormAction {
        match self.storm_pick(6) {
            0 => {
                let frames = self.storm_pick(3) as i64 + 1;
                self.plan
                    .arm_with_param(FaultPoint::IngestBatchTorn, 1.0, frames);
                StormAction::TearBatch { frames }
            }
            1 | 2 => {
                let budget = self.storm_pick(4) as u32 + 1;
                self.plan
                    .arm_limited(FaultPoint::SensorLinkDrop, 0.5, budget);
                StormAction::DropSensorLink { budget }
            }
            3 => {
                let budget = self.storm_pick(2) as u32 + 1;
                self.plan
                    .arm_limited(FaultPoint::GroupCommitFsyncStall, 0.5, budget);
                StormAction::StallFsync { budget }
            }
            _ => {
                for point in [
                    FaultPoint::IngestBatchTorn,
                    FaultPoint::SensorLinkDrop,
                    FaultPoint::GroupCommitFsyncStall,
                ] {
                    self.plan.disarm(point);
                }
                StormAction::CalmCapture
            }
        }
    }

    /// Disarms every nemesis-owned fault point (end-of-scenario heal).
    pub fn quiesce(&mut self) {
        for point in [
            FaultPoint::Partition,
            FaultPoint::ClockSkew,
            FaultPoint::ReplFrameDrop,
            FaultPoint::ReplFrameReorder,
            FaultPoint::ReplAckDelay,
            FaultPoint::IngestBatchTorn,
            FaultPoint::SensorLinkDrop,
            FaultPoint::GroupCommitFsyncStall,
        ] {
            self.plan.disarm(point);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(seed: u64, steps: usize) -> Vec<NemesisAction> {
        let mut n = Nemesis::new(seed, 3, FaultPlan::seeded(seed), VirtualClock::new());
        (0..steps).map(|_| n.step()).collect()
    }

    #[test]
    fn same_seed_same_schedule() {
        assert_eq!(schedule(7, 64), schedule(7, 64));
        assert_ne!(schedule(7, 64), schedule(8, 64));
    }

    #[test]
    fn actions_arm_the_shared_plan() {
        let plan = FaultPlan::seeded(1);
        let clock = VirtualClock::new();
        let mut n = Nemesis::new(1, 3, plan.clone(), clock.clone());
        let mut saw_partition = false;
        for _ in 0..128 {
            if let NemesisAction::Partition { node } = n.step() {
                saw_partition = true;
                assert!(plan.is_armed(FaultPoint::Partition));
                assert_eq!(plan.param(FaultPoint::Partition), node as i64);
            }
        }
        assert!(saw_partition, "128 steps should partition at least once");
        n.quiesce();
        assert!(!plan.is_armed(FaultPoint::Partition));
        assert!(!plan.is_armed(FaultPoint::ReplFrameReorder));
    }

    #[test]
    fn storm_steps_are_deterministic_and_do_not_perturb_replication() {
        let storm = |seed: u64| -> Vec<StormAction> {
            let mut n = Nemesis::new(seed, 3, FaultPlan::seeded(seed), VirtualClock::new());
            (0..64).map(|_| n.storm_step()).collect()
        };
        assert_eq!(storm(7), storm(7));
        assert_ne!(storm(7), storm(8));
        // Interleaving storm steps leaves the replication schedule intact.
        let plain = schedule(7, 32);
        let mut n = Nemesis::new(7, 3, FaultPlan::seeded(7), VirtualClock::new());
        let interleaved: Vec<NemesisAction> = (0..32)
            .map(|_| {
                n.storm_step();
                n.step()
            })
            .collect();
        assert_eq!(plain, interleaved);
    }

    #[test]
    fn storm_arms_capture_points_and_quiesce_heals() {
        let plan = FaultPlan::seeded(2);
        let mut n = Nemesis::new(2, 3, plan.clone(), VirtualClock::new());
        let mut tore = false;
        for _ in 0..64 {
            if let StormAction::TearBatch { frames } = n.storm_step() {
                tore = true;
                assert!(plan.is_armed(FaultPoint::IngestBatchTorn));
                assert_eq!(plan.param(FaultPoint::IngestBatchTorn), frames);
            }
        }
        assert!(tore, "64 storm steps should tear at least one batch");
        n.quiesce();
        assert!(!plan.is_armed(FaultPoint::IngestBatchTorn));
        assert!(!plan.is_armed(FaultPoint::SensorLinkDrop));
        assert!(!plan.is_armed(FaultPoint::GroupCommitFsyncStall));
    }

    #[test]
    fn stepping_advances_the_shared_clock() {
        let clock = VirtualClock::new();
        let mut n = Nemesis::new(3, 3, FaultPlan::seeded(3), clock.clone());
        let before = clock.now_ms();
        n.step();
        assert!(clock.now_ms() > before);
    }
}
